//! The `gleipnir` command-line tool: analyze, optimize, format, and route
//! GLQ quantum programs from the shell.
//!
//! ```text
//! gleipnir analyze  <file.glq> [--method state|adaptive|worst|lqr] [--width W]
//!                              [--noise SPEC] [--input BITS] [--threads N]
//!                              [--derivation] [--json]
//! gleipnir batch    <a.glq> <b.glq> … [--method M] [--width W] [--noise SPEC]
//!                              [--threads N] [--json]
//! gleipnir worst    <file.glq> [--noise SPEC] [--json]
//! gleipnir compare  <file.glq> [--width W] [--noise SPEC]   # bound before/after optimization
//! gleipnir optimize <file.glq>                              # print the optimized program
//! gleipnir fmt      <file.glq>                              # parse + pretty-print
//! gleipnir route    <file.glq> --device boeblingen|lima --mapping 0,1,2
//!
//! NOISE SPEC: bitflip:P (default bitflip:1e-4) | depolarizing:P1,P2 | none
//! ```
//!
//! All analysis commands run on one long-lived `Engine`, and `--json`
//! switches every report to machine-readable output — the scriptable
//! service-endpoint stand-in. `--threads N` (or the `GLEIPNIR_THREADS`
//! env var; 0/unset = all cores) caps the engine's worker pool, which is
//! shared by a single request's SDP solve stage *and* `batch`'s
//! per-file fan-out. Every batch file gets its own result entry (a broken
//! file never sinks its siblings), and the exit status is non-zero iff
//! any entry failed.

use gleipnir::circuit::{optimize, parse, pretty, route_with_final, Mapping, Program};
use gleipnir::core::{AdaptiveConfig, AnalysisRequest, Engine, EngineOptions, Method, Report};
use gleipnir::noise::{DeviceModel, NoiseModel};
use gleipnir::sim::BasisState;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "analyze" => analyze(&args[1..]),
        "batch" => batch(&args[1..]),
        "compare" => compare(&args[1..]),
        "worst" => worst(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "fmt" => fmt(&args[1..]),
        "route" => cmd_route(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gleipnir <analyze|batch|compare|worst|optimize|fmt|route> <file.glq>… [options]\n\
     options: --method state|adaptive|worst|lqr   --width W   --input 0101   --json\n\
     \x20        --noise bitflip:P|depolarizing:P1,P2|none   --derivation\n\
     \x20        --threads N   (0/unset = GLEIPNIR_THREADS, then all cores)\n\
     \x20        --device boeblingen|lima   --mapping 0,1,2"
        .to_string()
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn program_paths(args: &[String]) -> Vec<&String> {
    // Positional arguments: skip flags and the value slot after a
    // value-taking flag.
    const VALUE_FLAGS: [&str; 7] = [
        "--method",
        "--width",
        "--noise",
        "--input",
        "--threads",
        "--device",
        "--mapping",
    ];
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = VALUE_FLAGS.contains(&a.as_str());
            continue;
        }
        paths.push(a);
    }
    paths
}

fn load_program(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn load_single_program(args: &[String]) -> Result<(String, Program), String> {
    let paths = program_paths(args);
    let path = paths.first().ok_or("missing input file")?;
    Ok(((*path).clone(), load_program(path)?))
}

fn parse_noise(args: &[String]) -> Result<NoiseModel, String> {
    let spec = flag_value(args, "--noise").unwrap_or_else(|| "bitflip:1e-4".into());
    if spec == "none" {
        return Ok(NoiseModel::Noiseless);
    }
    if let Some(p) = spec.strip_prefix("bitflip:") {
        let p: f64 = p
            .parse()
            .map_err(|_| format!("bad probability in `{spec}`"))?;
        return Ok(NoiseModel::uniform_bit_flip(p));
    }
    if let Some(ps) = spec.strip_prefix("depolarizing:") {
        let parts: Vec<&str> = ps.split(',').collect();
        if parts.len() != 2 {
            return Err(format!("depolarizing needs two rates, got `{spec}`"));
        }
        let p1: f64 = parts[0]
            .parse()
            .map_err(|_| format!("bad rate in `{spec}`"))?;
        let p2: f64 = parts[1]
            .parse()
            .map_err(|_| format!("bad rate in `{spec}`"))?;
        return Ok(NoiseModel::uniform_depolarizing(p1, p2));
    }
    Err(format!("unknown noise spec `{spec}`"))
}

fn parse_input(args: &[String], n: usize) -> Result<BasisState, String> {
    match flag_value(args, "--input") {
        None => Ok(BasisState::zeros(n)),
        Some(bits) => {
            if bits.len() != n || !bits.chars().all(|c| c == '0' || c == '1') {
                return Err(format!("--input must be {n} binary digits"));
            }
            Ok(BasisState::from_bits(
                &bits.chars().map(|c| c == '1').collect::<Vec<_>>(),
            ))
        }
    }
}

fn parse_width(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--width") {
        None => Ok(32),
        Some(w) => w.parse().map_err(|_| format!("bad width `{w}`")),
    }
}

/// Builds the long-lived engine, honoring `--threads N` (0 or absent defers
/// to `GLEIPNIR_THREADS`, then to all cores).
fn make_engine(args: &[String]) -> Result<Engine, String> {
    let threads = match flag_value(args, "--threads") {
        None => 0,
        Some(t) => t.parse().map_err(|_| format!("bad thread count `{t}`"))?,
    };
    Ok(Engine::with_options(EngineOptions {
        solver: Default::default(),
        threads,
    }))
}

fn parse_method(args: &[String], width: usize) -> Result<Method, String> {
    match flag_value(args, "--method").as_deref() {
        None | Some("state") => Ok(Method::StateAware { mps_width: width }),
        Some("adaptive") => Ok(Method::Adaptive(AdaptiveConfig {
            max_width: width.max(2),
            ..AdaptiveConfig::default()
        })),
        Some("worst") => Ok(Method::WorstCase),
        Some("lqr") => Ok(Method::LqrFullSim),
        Some(other) => Err(format!(
            "unknown method `{other}` (expected state|adaptive|worst|lqr)"
        )),
    }
}

fn build_request(program: Program, args: &[String]) -> Result<AnalysisRequest, String> {
    let noise = parse_noise(args)?;
    let input = parse_input(args, program.n_qubits())?;
    let width = parse_width(args)?;
    let method = parse_method(args, width)?;
    AnalysisRequest::builder(program)
        .input(&input)
        .noise(noise)
        .method(method)
        .build()
        .map_err(|e| e.to_string())
}

// ---- JSON output (hand-rolled: the report surface is small and the
// container has no serde) ---------------------------------------------

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn report_json(file: &str, program: &Program, report: &Report) -> String {
    let mut fields = vec![
        format!("\"file\":{}", json_str(file)),
        format!("\"method\":{}", json_str(report.method_name())),
        format!("\"qubits\":{}", program.n_qubits()),
        format!("\"gates\":{}", program.gate_count()),
        format!("\"error_bound\":{:e}", report.error_bound()),
        format!("\"sdp_solves\":{}", report.sdp_solves()),
        format!("\"cache_hits\":{}", report.cache_hits()),
        format!("\"inflight_dedup\":{}", report.inflight_dedup()),
        format!("\"elapsed_ms\":{:.3}", report.elapsed().as_secs_f64() * 1e3),
    ];
    if let Some(d) = report.tn_delta() {
        fields.push(format!("\"tn_delta\":{d:e}"));
    }
    if let Some(t) = report.stage_timings() {
        fields.push(format!(
            "\"stages\":{{\"plan_ms\":{:.3},\"solve_ms\":{:.3},\"assemble_ms\":{:.3}}}",
            t.plan.as_secs_f64() * 1e3,
            t.solve.as_secs_f64() * 1e3,
            t.assemble.as_secs_f64() * 1e3
        ));
    }
    if let Some(w) = report.solve_workers() {
        fields.push(format!("\"solve_workers\":{w}"));
    }
    if let Some(r) = report.as_state_aware() {
        fields.push(format!("\"mps_width\":{}", r.mps_width()));
    }
    if let Some(a) = report.as_adaptive() {
        let steps: Vec<String> = a
            .trajectory
            .iter()
            .map(|s| {
                format!(
                    "{{\"width\":{},\"bound\":{:e},\"tn_delta\":{:e},\"sdp_solves\":{},\"cache_hits\":{}}}",
                    s.width, s.bound, s.tn_delta, s.sdp_solves, s.cache_hits
                )
            })
            .collect();
        fields.push(format!("\"trajectory\":[{}]", steps.join(",")));
    }
    if let Some(w) = report.as_worst_case() {
        fields.push(format!("\"gate_count\":{}", w.gate_count));
        fields.push(format!("\"clamped\":{:e}", w.clamped()));
    }
    format!("{{{}}}", fields.join(","))
}

// ---- commands --------------------------------------------------------

fn analyze(args: &[String]) -> Result<(), String> {
    let (path, program) = load_single_program(args)?;
    let json = has_flag(args, "--json");
    let engine = make_engine(args)?;
    let request = build_request(program.clone(), args)?;
    let report = engine.analyze(&request).map_err(|e| e.to_string())?;
    if json {
        println!("{}", report_json(&path, &program, &report));
        return Ok(());
    }
    println!(
        "{} qubits, {} gates, method {}",
        program.n_qubits(),
        program.gate_count(),
        report.method_name()
    );
    println!("error bound: {:.6e}", report.error_bound());
    println!(
        "SDP solves: {}   cache hits: {}   time: {:?}",
        report.sdp_solves(),
        report.cache_hits(),
        report.elapsed()
    );
    if let Some(d) = report.tn_delta() {
        println!("TN delta: {d:.3e}");
    }
    if let Some(steps) = report.trajectory() {
        for s in steps {
            println!(
                "  w = {:>4}: bound {:.6e}  (TN δ = {:.3e}, {} solves, {} cache hits)",
                s.width, s.bound, s.tn_delta, s.sdp_solves, s.cache_hits
            );
        }
    }
    if has_flag(args, "--derivation") {
        if let Some(d) = report.derivation() {
            println!("\n{}", d.pretty());
        }
    }
    Ok(())
}

fn batch(args: &[String]) -> Result<(), String> {
    let paths = program_paths(args);
    if paths.is_empty() {
        return Err("batch needs at least one input file".into());
    }
    let json = has_flag(args, "--json");
    // Per-file isolation starts at load time: a missing or unparseable
    // file becomes that file's error entry, never sinking its siblings.
    let prepared: Vec<Result<(Program, AnalysisRequest), String>> = paths
        .iter()
        .map(|path| {
            let program = load_program(path)?;
            let request = build_request(program.clone(), args)?;
            Ok((program, request))
        })
        .collect();
    let requests: Vec<AnalysisRequest> = prepared
        .iter()
        .filter_map(|p| p.as_ref().ok().map(|(_, r)| r.clone()))
        .collect();
    let engine = make_engine(args)?;
    let outcome = engine.analyze_batch_detailed(&requests);
    // Merge analysis results back into file order around the load errors.
    let mut analyzed = outcome.results.into_iter();
    let merged: Vec<Result<(Program, Report), String>> = prepared
        .into_iter()
        .map(|p| {
            let (program, _) = p?;
            let report = analyzed
                .next()
                .expect("one analysis result per prepared request")
                .map_err(|e| e.to_string())?;
            Ok((program, report))
        })
        .collect();
    if json {
        let results: Vec<String> = merged
            .iter()
            .zip(paths.iter())
            .map(|(result, path)| match result {
                Ok((program, report)) => format!(
                    "{{\"ok\":true,\"report\":{}}}",
                    report_json(path, program, report)
                ),
                Err(e) => format!(
                    "{{\"ok\":false,\"file\":{},\"error\":{}}}",
                    json_str(path),
                    json_str(e)
                ),
            })
            .collect();
        let stats = engine.cache_stats();
        println!(
            "{{\"results\":[{}],\"worker_threads\":{},\"pool_threads\":{},\"elapsed_ms\":{:.3},\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"inflight_dedup\":{}}}}}",
            results.join(","),
            outcome.worker_threads,
            engine.threads(),
            outcome.elapsed.as_secs_f64() * 1e3,
            stats.hits,
            stats.misses,
            stats.entries,
            stats.inflight_dedup
        );
        return batch_exit(&merged.iter().map(|r| r.is_ok()).collect::<Vec<_>>());
    }
    for (result, path) in merged.iter().zip(paths.iter()) {
        match result {
            Ok((_, report)) => println!(
                "{path}: {} bound {:.6e}  ({} solves, {} cache hits, {:?})",
                report.method_name(),
                report.error_bound(),
                report.sdp_solves(),
                report.cache_hits(),
                report.elapsed()
            ),
            Err(e) => println!("{path}: error: {e}"),
        }
    }
    let stats = engine.cache_stats();
    println!(
        "batch: {} files on {} worker threads (pool {}) in {:?}; shared cache {} hits / {} entries / {} in-flight dedups",
        merged.len(),
        outcome.worker_threads,
        engine.threads(),
        outcome.elapsed,
        stats.hits,
        stats.entries,
        stats.inflight_dedup
    );
    batch_exit(&merged.iter().map(|r| r.is_ok()).collect::<Vec<_>>())
}

/// Batch exit contract: every per-file result is always reported, and the
/// process exits non-zero if *any* entry failed — so scripts can gate on
/// status while still getting the full result set.
fn batch_exit(oks: &[bool]) -> Result<(), String> {
    let failed = oks.iter().filter(|ok| !**ok).count();
    if failed > 0 {
        return Err(format!("{failed} of {} batch entries failed", oks.len()));
    }
    Ok(())
}

fn worst(args: &[String]) -> Result<(), String> {
    let (path, program) = load_single_program(args)?;
    let noise = parse_noise(args)?;
    let engine = make_engine(args)?;
    let request = AnalysisRequest::builder(program.clone())
        .noise(noise)
        .method(Method::WorstCase)
        .build()
        .map_err(|e| e.to_string())?;
    let report = engine.analyze(&request).map_err(|e| e.to_string())?;
    if has_flag(args, "--json") {
        println!("{}", report_json(&path, &program, &report));
        return Ok(());
    }
    let w = report.as_worst_case().expect("worst-case report");
    println!(
        "worst-case bound: {:.6e} over {} gates ({} distinct SDPs); clamped: {:.6e}",
        w.total,
        w.gate_count,
        w.sdp_solves,
        w.clamped()
    );
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    let noise = parse_noise(args)?;
    let input = parse_input(args, program.n_qubits())?;
    let width = parse_width(args)?;
    let (optimized, stats) = optimize(&program);

    // One engine: the optimized program re-uses certificates the original
    // already paid for wherever judgments coincide.
    let engine = make_engine(args)?;
    let analyze_one = |p: Program| -> Result<Report, String> {
        let request = AnalysisRequest::builder(p)
            .input(&input)
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: width })
            .build()
            .map_err(|e| e.to_string())?;
        engine.analyze(&request).map_err(|e| e.to_string())
    };
    let before = analyze_one(program.clone())?;
    let after = analyze_one(optimized.clone())?;

    println!(
        "original:  {} gates, bound {:.6e}",
        program.gate_count(),
        before.error_bound()
    );
    println!(
        "optimized: {} gates, bound {:.6e}   ({} cancelled, {} merged, {} identities)",
        optimized.gate_count(),
        after.error_bound(),
        stats.cancellations,
        stats.merges,
        stats.identities_removed
    );
    if before.error_bound() > 0.0 {
        println!(
            "error-mitigation effect: {:.1}% lower bound",
            100.0 * (1.0 - after.error_bound() / before.error_bound())
        );
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    let (optimized, stats) = optimize(&program);
    eprintln!(
        "{} → {} gates ({} cancelled, {} merged, {} identities removed)",
        stats.gates_before,
        stats.gates_after,
        stats.cancellations,
        stats.merges,
        stats.identities_removed
    );
    print!("{}", pretty(&optimized));
    Ok(())
}

fn fmt(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    print!("{}", pretty(&program));
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    let device = match flag_value(args, "--device").as_deref() {
        Some("boeblingen") | None => DeviceModel::boeblingen20(),
        Some("lima") => DeviceModel::lima5(),
        Some(other) => return Err(format!("unknown device `{other}`")),
    };
    let mapping = match flag_value(args, "--mapping") {
        None => Mapping::identity(program.n_qubits()),
        Some(spec) => {
            let placement: Result<Vec<usize>, _> =
                spec.split(',').map(|s| s.trim().parse()).collect();
            Mapping::new(placement.map_err(|_| format!("bad mapping `{spec}`"))?)
        }
    };
    let (routed, final_placement) =
        route_with_final(&program, device.coupling(), &mapping).map_err(|e| e.to_string())?;
    eprintln!(
        "routed onto {}: {} gates ({} two-qubit), final placement {final_placement}",
        device.name(),
        routed.gate_count(),
        routed.two_qubit_gate_count()
    );
    print!("{}", pretty(&routed));
    Ok(())
}
