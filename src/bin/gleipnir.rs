//! The `gleipnir` command-line tool: analyze, optimize, format, and route
//! GLQ quantum programs from the shell.
//!
//! ```text
//! gleipnir analyze  <file.glq> [--method state|adaptive|worst|lqr] [--width W]
//!                              [--noise SPEC] [--input BITS] [--threads N]
//!                              [--tiers exact|fast|closed|warm]
//!                              [--derivation] [--trace] [--anytime] [--json]
//! gleipnir batch    <a.glq> <b.glq> … [--method M] [--width W] [--noise SPEC]
//!                              [--threads N] [--tiers T] [--json]
//! gleipnir diff     <old.glq> <new.glq> [--width W] [--noise SPEC] [--input BITS]
//!                              [--threads N] [--tiers T] [--json]
//! gleipnir worst    <file.glq> [--noise SPEC] [--json]
//! gleipnir serve    [--addr HOST:PORT] [--cache-dir DIR] [--workers N]
//!                              [--queue N] [--threads N] [--tenant-quota N]
//!                              [--read-timeout-ms MS] [--keepalive-timeout-ms MS]
//!                              [--peers HOST:PORT,…] [--peer-interval-ms MS]
//! gleipnir compare  <file.glq> [--width W] [--noise SPEC]   # bound before/after optimization
//! gleipnir optimize <file.glq>                              # print the optimized program
//! gleipnir fmt      <file.glq>                              # parse + pretty-print
//! gleipnir route    <file.glq> --device boeblingen|lima --mapping 0,1,2
//!
//! NOISE SPEC: bitflip:P (default bitflip:1e-4) | depolarizing:P1,P2
//!             | ampdamp:G | none
//! ```
//!
//! All analysis commands run on one long-lived `Engine`, and `--json`
//! switches every report to machine-readable output. `gleipnir serve`
//! exposes the same engine as a real HTTP/1.1 + JSON service (see
//! `gleipnir::server`). `--threads N` (or the `GLEIPNIR_THREADS`
//! env var; 0/unset = all cores) caps the engine's worker pool, which is
//! shared by a single request's SDP solve stage *and* `batch`'s
//! per-file fan-out. Every batch file gets its own result entry (a broken
//! file never sinks its siblings), and the exit status is non-zero iff
//! any entry failed. `--cache-dir DIR` (any analysis command, and
//! `serve`) loads/persists the on-disk certificate store, so a later
//! process starts with every certificate earlier runs paid for.

use gleipnir::circuit::{optimize, parse, pretty, route_with_final, Mapping, Program};
use gleipnir::core::jsonfmt::{diff_report_json, json_f64, json_str, report_json};
use gleipnir::core::{
    AnalysisRequest, CertStore, Engine, EngineOptions, Method, RefineStatus, Report,
};
use gleipnir::noise::{DeviceModel, NoiseModel};
use gleipnir::server::{spec, ServerConfig};
use gleipnir::sim::BasisState;
use gleipnir::telemetry;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "analyze" => analyze(&args[1..]),
        "batch" => batch(&args[1..]),
        "diff" => diff(&args[1..]),
        "compare" => compare(&args[1..]),
        "worst" => worst(&args[1..]),
        "serve" => serve(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "fmt" => fmt(&args[1..]),
        "route" => cmd_route(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gleipnir <analyze|batch|diff|compare|worst|serve|optimize|fmt|route> <file.glq>… [options]\n\
     diff:    gleipnir diff OLD.glq NEW.glq [--json]   (edit-cost re-analysis; reuses the\n\
     \x20        unchanged prefix and reports each gate whose ε changed)\n\
     options: --method state|adaptive|worst|lqr   --width W   --input 0101   --json\n\
     \x20        --noise bitflip:P|depolarizing:P1,P2|ampdamp:G|none   --derivation\n\
     \x20        --trace   (analyze only: print the span tree — plan/solve/assemble,\n\
     \x20        per-obligation pool timing, solver phases — after the report)\n\
     \x20        --tiers exact|fast|closed|warm   (bound-engine tiers; default exact)\n\
     \x20        --anytime   (analyze only: print a certified bound immediately, then\n\
     \x20        the exact refined bound when the background solve lands)\n\
     \x20        --threads N   (0/unset = GLEIPNIR_THREADS, then all cores)\n\
     \x20        --cache-dir DIR   (persistent SDP-certificate store; warm restarts)\n\
     \x20        --device boeblingen|lima   --mapping 0,1,2\n\
     serve:   gleipnir serve --addr 127.0.0.1:8080 --cache-dir .gleipnir-cache\n\
     \x20        [--workers N] [--queue N] [--threads N] [--tenant-quota N]\n\
     \x20        [--read-timeout-ms MS] [--keepalive-timeout-ms MS]\n\
     \x20        [--peers HOST:PORT,…] [--peer-interval-ms MS]  (fleet certificate gossip)"
        .to_string()
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn program_paths(args: &[String]) -> Vec<&String> {
    // Positional arguments: skip flags and the value slot after a
    // value-taking flag.
    const VALUE_FLAGS: [&str; 17] = [
        "--tenant-quota",
        "--method",
        "--width",
        "--noise",
        "--input",
        "--threads",
        "--tiers",
        "--device",
        "--mapping",
        "--cache-dir",
        "--addr",
        "--workers",
        "--queue",
        "--peers",
        "--peer-interval-ms",
        "--read-timeout-ms",
        "--keepalive-timeout-ms",
    ];
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = VALUE_FLAGS.contains(&a.as_str());
            continue;
        }
        paths.push(a);
    }
    paths
}

fn load_program(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn load_single_program(args: &[String]) -> Result<(String, Program), String> {
    let paths = program_paths(args);
    let path = paths.first().ok_or("missing input file")?;
    Ok(((*path).clone(), load_program(path)?))
}

/// Noise spec parsing is shared with the server's wire format
/// (`gleipnir::server::spec`), so the CLI flag and the JSON field can
/// never drift apart.
fn parse_noise(args: &[String]) -> Result<NoiseModel, String> {
    let value = flag_value(args, "--noise").unwrap_or_else(|| spec::DEFAULT_NOISE_SPEC.to_string());
    spec::parse_noise_spec(&value)
}

fn parse_input(args: &[String], n: usize) -> Result<BasisState, String> {
    match flag_value(args, "--input") {
        None => Ok(BasisState::zeros(n)),
        Some(bits) => spec::parse_input_bits(&bits, n).map_err(|e| format!("--input: {e}")),
    }
}

fn parse_width(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--width") {
        None => Ok(spec::DEFAULT_WIDTH),
        Some(w) => w.parse().map_err(|_| format!("bad width `{w}`")),
    }
}

/// Builds the long-lived engine, honoring `--threads N` (0 or absent defers
/// to `GLEIPNIR_THREADS`, then to all cores).
fn make_engine(args: &[String]) -> Result<Engine, String> {
    let threads = match flag_value(args, "--threads") {
        None => 0,
        Some(t) => t.parse().map_err(|_| format!("bad thread count `{t}`"))?,
    };
    Engine::with_options(EngineOptions {
        solver: Default::default(),
        threads,
    })
    .map_err(|e| e.to_string())
}

fn parse_method(args: &[String], width: usize) -> Result<Method, String> {
    spec::parse_method_spec(flag_value(args, "--method").as_deref(), width)
}

/// Opens (and warm-loads) the certificate store when `--cache-dir` is
/// given. Returns the store so the command can persist new certificates
/// after its analyses.
fn open_store(args: &[String], engine: &Engine) -> Result<Option<CertStore>, String> {
    let Some(dir) = flag_value(args, "--cache-dir") else {
        return Ok(None);
    };
    let mut store = CertStore::open(&dir).map_err(|e| format!("--cache-dir {dir}: {e}"))?;
    let stats = store
        .load_into(engine)
        .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
    if stats.loaded > 0 || stats.rejected > 0 {
        eprintln!(
            "certificate store: {} loaded, {} rejected{}",
            stats.loaded,
            stats.rejected,
            if stats.truncated { " (torn tail)" } else { "" }
        );
    }
    Ok(Some(store))
}

/// Appends any new certificates to the store (no-op without `--cache-dir`).
fn persist_store(store: &mut Option<CertStore>, engine: &Engine) -> Result<(), String> {
    if let Some(store) = store {
        store
            .persist_new(engine)
            .map_err(|e| format!("certificate persist failed: {e}"))?;
    }
    Ok(())
}

fn build_request(program: Program, args: &[String]) -> Result<AnalysisRequest, String> {
    let noise = parse_noise(args)?;
    let input = parse_input(args, program.n_qubits())?;
    let width = parse_width(args)?;
    let method = parse_method(args, width)?;
    let tiers = spec::parse_tier_spec(flag_value(args, "--tiers").as_deref())?;
    AnalysisRequest::builder(program)
        .input(&input)
        .noise(noise)
        .method(method)
        .tiering(tiers)
        .build()
        .map_err(|e| e.to_string())
}

// ---- commands --------------------------------------------------------

fn analyze(args: &[String]) -> Result<(), String> {
    let (path, program) = load_single_program(args)?;
    let json = has_flag(args, "--json");
    let engine = make_engine(args)?;
    let mut store = open_store(args, &engine)?;
    let request = build_request(program.clone(), args)?;
    if has_flag(args, "--anytime") {
        return analyze_anytime(&engine, &mut store, &path, &program, &request, json);
    }
    // --trace: run the analysis under an ambient trace context, exactly
    // as the server does for one request, then print the span tree.
    // Telemetry is pure observation — the report is bit-identical with
    // or without it.
    let trace = if has_flag(args, "--trace") {
        let trace_id = telemetry::next_trace_id();
        let root = telemetry::next_span_id();
        Some((trace_id, root, telemetry::now_ns()))
    } else {
        None
    };
    let analyzed = match trace {
        Some((trace_id, root, _)) => telemetry::with_ctx(
            telemetry::TraceCtx {
                trace_id,
                parent: root,
            },
            || engine.analyze(&request),
        ),
        None => engine.analyze(&request),
    };
    let rendered_trace = trace.map(|(trace_id, root, start_ns)| {
        telemetry::record_span(
            telemetry::TraceCtx {
                trace_id,
                parent: 0,
            },
            telemetry::SpanName::Request,
            root,
            start_ns,
            telemetry::now_ns(),
            telemetry::detail::ENDPOINT_ANALYZE,
            0,
            0,
        );
        telemetry::global().finish_trace(trace_id);
        telemetry::global().trace(trace_id)
    });
    let report = analyzed.map_err(|e| e.to_string())?;
    persist_store(&mut store, &engine)?;
    if json {
        println!("{}", report_json(&path, &program, &report));
        // The tree goes to stderr so the stdout JSON document stays pure.
        if let Some(Some(t)) = rendered_trace {
            eprint!("{}", t.render_text());
        }
        return Ok(());
    }
    if let Some(Some(t)) = &rendered_trace {
        print!("{}", t.render_text());
    }
    println!(
        "{} qubits, {} gates, method {}",
        program.n_qubits(),
        program.gate_count(),
        report.method_name()
    );
    println!("error bound: {:.6e}", report.error_bound());
    println!(
        "SDP solves: {}   cache hits: {}   time: {:?}",
        report.sdp_solves(),
        report.cache_hits(),
        report.elapsed()
    );
    let tiers = report.tier_counts();
    if tiers.closed_form + tiers.warm > 0 {
        println!(
            "bound tiers: {} closed form, {} warm-started, {} cold ({} IP iterations)",
            tiers.closed_form,
            tiers.warm,
            tiers.cold,
            report.ip_iterations()
        );
    }
    if let Some(d) = report.tn_delta() {
        println!("TN delta: {d:.3e}");
    }
    if let Some(steps) = report.trajectory() {
        for s in steps {
            println!(
                "  w = {:>4}: bound {:.6e}  (TN δ = {:.3e}, {} solves, {} cache hits)",
                s.width, s.bound, s.tn_delta, s.sdp_solves, s.cache_hits
            );
        }
    }
    if has_flag(args, "--derivation") {
        if let Some(d) = report.derivation() {
            println!("\n{}", d.pretty());
        }
    }
    Ok(())
}

/// `analyze --anytime`: print the instant certified bound, then wait on
/// the refinement token (exactly as an HTTP client would long-poll
/// `GET /refine/<token>`) until the exact bound lands, and print that.
fn analyze_anytime(
    engine: &Engine,
    store: &mut Option<CertStore>,
    path: &str,
    program: &Program,
    request: &AnalysisRequest,
    json: bool,
) -> Result<(), String> {
    let answer = engine.analyze_anytime(request).map_err(|e| e.to_string())?;
    let first_ms = answer.first_elapsed.as_secs_f64() * 1e3;
    if !json {
        println!(
            "anytime first bound: {:.6e}  (token {}, {first_ms:.3} ms; sources: {} cache, {} closed form, {} trivial)",
            answer.first_bound,
            answer.token,
            answer.sources.cache,
            answer.sources.closed_form,
            answer.sources.trivial,
        );
    }
    let report = loop {
        match engine.wait_refinement(answer.token, Duration::from_millis(500)) {
            Some(RefineStatus::Done(report)) => break report,
            Some(RefineStatus::Failed(msg)) => return Err(msg),
            Some(RefineStatus::Pending) => continue,
            None => return Err("refinement token vanished".into()),
        }
    };
    persist_store(store, engine)?;
    if json {
        println!(
            "{{\"anytime\":{{\"token\":{},\"first_error_bound\":{},\"first_elapsed_ms\":{first_ms:.3}}},\"report\":{}}}",
            json_str(&answer.token.to_string()),
            json_f64(answer.first_bound),
            report_json(path, program, &report),
        );
        return Ok(());
    }
    println!(
        "refined bound:       {:.6e}  ({} solves, {} cache hits, {:?})",
        report.error_bound(),
        report.sdp_solves(),
        report.cache_hits(),
        report.elapsed()
    );
    Ok(())
}

fn batch(args: &[String]) -> Result<(), String> {
    let paths = program_paths(args);
    if paths.is_empty() {
        return Err("batch needs at least one input file".into());
    }
    let json = has_flag(args, "--json");
    // Per-file isolation starts at load time: a missing or unparseable
    // file becomes that file's error entry, never sinking its siblings.
    let prepared: Vec<Result<(Program, AnalysisRequest), String>> = paths
        .iter()
        .map(|path| {
            let program = load_program(path)?;
            let request = build_request(program.clone(), args)?;
            Ok((program, request))
        })
        .collect();
    let requests: Vec<AnalysisRequest> = prepared
        .iter()
        .filter_map(|p| p.as_ref().ok().map(|(_, r)| r.clone()))
        .collect();
    let engine = make_engine(args)?;
    let mut store = open_store(args, &engine)?;
    let outcome = engine.analyze_batch_detailed(&requests);
    persist_store(&mut store, &engine)?;
    // Merge analysis results back into file order around the load errors.
    let mut analyzed = outcome.results.into_iter();
    let merged: Vec<Result<(Program, Report), String>> = prepared
        .into_iter()
        .map(|p| {
            let (program, _) = p?;
            let report = analyzed
                .next()
                .expect("one analysis result per prepared request")
                .map_err(|e| e.to_string())?;
            Ok((program, report))
        })
        .collect();
    if json {
        let results: Vec<String> = merged
            .iter()
            .zip(paths.iter())
            .map(|(result, path)| match result {
                Ok((program, report)) => format!(
                    "{{\"ok\":true,\"report\":{}}}",
                    report_json(path, program, report)
                ),
                Err(e) => format!(
                    "{{\"ok\":false,\"file\":{},\"error\":{}}}",
                    json_str(path),
                    json_str(e)
                ),
            })
            .collect();
        let stats = engine.cache_stats();
        println!(
            "{{\"results\":[{}],\"worker_threads\":{},\"pool_threads\":{},\"elapsed_ms\":{:.3},\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"inflight_dedup\":{}}}}}",
            results.join(","),
            outcome.worker_threads,
            engine.threads(),
            outcome.elapsed.as_secs_f64() * 1e3,
            stats.hits,
            stats.misses,
            stats.entries,
            stats.inflight_dedup
        );
        return batch_exit(&merged.iter().map(|r| r.is_ok()).collect::<Vec<_>>());
    }
    for (result, path) in merged.iter().zip(paths.iter()) {
        match result {
            Ok((_, report)) => println!(
                "{path}: {} bound {:.6e}  ({} solves, {} cache hits, {:?})",
                report.method_name(),
                report.error_bound(),
                report.sdp_solves(),
                report.cache_hits(),
                report.elapsed()
            ),
            Err(e) => println!("{path}: error: {e}"),
        }
    }
    let stats = engine.cache_stats();
    println!(
        "batch: {} files on {} worker threads (pool {}) in {:?}; shared cache {} hits / {} entries / {} in-flight dedups",
        merged.len(),
        outcome.worker_threads,
        engine.threads(),
        outcome.elapsed,
        stats.hits,
        stats.entries,
        stats.inflight_dedup
    );
    batch_exit(&merged.iter().map(|r| r.is_ok()).collect::<Vec<_>>())
}

/// Differential analysis: re-bounds `NEW.glq` after an edit to `OLD.glq`,
/// reusing the MPS walk prefix and every certificate the two programs
/// share, and names each gate whose ε changed. The answer is bit-identical
/// to a cold `gleipnir analyze NEW.glq` under the same (exact-tier)
/// configuration — prefix reuse is a latency optimization, never a new
/// bound (docs/SOUNDNESS.md, obligation 7).
fn diff(args: &[String]) -> Result<(), String> {
    let paths = program_paths(args);
    let [old_path, new_path] = paths.as_slice() else {
        return Err("diff needs exactly two input files: OLD.glq NEW.glq".into());
    };
    let json = has_flag(args, "--json");
    let old_program = load_program(old_path)?;
    let new_program = load_program(new_path)?;
    let engine = make_engine(args)?;
    let mut store = open_store(args, &engine)?;
    let old_request = build_request(old_program, args)?;
    let new_request = build_request(new_program, args)?;
    let report = engine
        .analyze_diff(&old_request, &new_request)
        .map_err(|e| e.to_string())?;
    persist_store(&mut store, &engine)?;
    if json {
        println!("{}", diff_report_json(old_path, new_path, &report));
        return Ok(());
    }
    let new = report.new_report();
    println!(
        "old bound: {:.6e}   new bound: {:.6e}",
        report.old_report().error_bound(),
        report.error_bound()
    );
    println!(
        "prefix gates reused: {}   suffix SDP solves: {}   cache hits: {}   time: {:?}",
        report.prefix_gates_reused(),
        new.sdp_solves(),
        new.cache_hits(),
        report.elapsed()
    );
    if report.changes().is_empty() {
        println!("no per-gate ε changes");
        return Ok(());
    }
    println!("changed gates:");
    for c in report.changes() {
        let fmt_eps = |e: Option<f64>| match e {
            Some(e) => format!("{e:.6e}"),
            None => "-".to_string(),
        };
        println!(
            "  {:<24} {:>14} -> {:<14} [{}]",
            c.gate,
            fmt_eps(c.old_epsilon),
            fmt_eps(c.new_epsilon),
            c.reason.name()
        );
    }
    Ok(())
}

/// Batch exit contract: every per-file result is always reported, and the
/// process exits non-zero if *any* entry failed — so scripts can gate on
/// status while still getting the full result set.
fn batch_exit(oks: &[bool]) -> Result<(), String> {
    let failed = oks.iter().filter(|ok| !**ok).count();
    if failed > 0 {
        return Err(format!("{failed} of {} batch entries failed", oks.len()));
    }
    Ok(())
}

fn worst(args: &[String]) -> Result<(), String> {
    let (path, program) = load_single_program(args)?;
    let noise = parse_noise(args)?;
    let engine = make_engine(args)?;
    let mut store = open_store(args, &engine)?;
    let request = AnalysisRequest::builder(program.clone())
        .noise(noise)
        .method(Method::WorstCase)
        .tiering(spec::parse_tier_spec(
            flag_value(args, "--tiers").as_deref(),
        )?)
        .build()
        .map_err(|e| e.to_string())?;
    let report = engine.analyze(&request).map_err(|e| e.to_string())?;
    persist_store(&mut store, &engine)?;
    if has_flag(args, "--json") {
        println!("{}", report_json(&path, &program, &report));
        return Ok(());
    }
    let w = report.as_worst_case().expect("worst-case report");
    println!(
        "worst-case bound: {:.6e} over {} gates ({} distinct SDPs); clamped: {:.6e}",
        w.total,
        w.gate_count,
        w.sdp_solves,
        w.clamped()
    );
    if w.tier_counts.closed_form > 0 {
        println!(
            "bound tiers: {} closed form, {} cold ({} IP iterations)",
            w.tier_counts.closed_form, w.tier_counts.cold, w.ip_iterations
        );
    }
    Ok(())
}

/// Runs the analysis daemon until SIGINT (ctrl-c) or SIGTERM, then drains
/// in-flight analyses and persists the certificate store.
fn serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr;
    }
    if let Some(dir) = flag_value(args, "--cache-dir") {
        config.cache_dir = Some(dir.into());
    }
    if let Some(w) = flag_value(args, "--workers") {
        config.workers = w.parse().map_err(|_| format!("bad worker count `{w}`"))?;
    }
    if let Some(q) = flag_value(args, "--queue") {
        config.queue_capacity = q.parse().map_err(|_| format!("bad queue capacity `{q}`"))?;
    }
    if let Some(t) = flag_value(args, "--threads") {
        config.threads = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
    }
    if let Some(q) = flag_value(args, "--tenant-quota") {
        config.tenant_quota = q.parse().map_err(|_| format!("bad tenant quota `{q}`"))?;
    }
    if let Some(peers) = flag_value(args, "--peers") {
        config.peers = peers
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(String::from)
            .collect();
    }
    if let Some(ms) = flag_value(args, "--peer-interval-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad peer interval `{ms}`"))?;
        config.peer_interval = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = flag_value(args, "--read-timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad read timeout `{ms}`"))?;
        config.read_timeout = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = flag_value(args, "--keepalive-timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad keep-alive timeout `{ms}`"))?;
        config.keepalive_timeout = Duration::from_millis(ms.max(1));
    }
    let shutdown = gleipnir::server::signal::install_shutdown_signals();
    let handle = gleipnir::server::spawn(config).map_err(|e| e.to_string())?;
    println!("gleipnir-server listening on http://{}", handle.addr());
    println!("endpoints: POST /analyze  POST /batch  POST /diff  GET /refine/<token>[?wait_ms=N]  GET /healthz  GET /metrics[?format=prometheus]  GET /trace/<id>  GET /certs/since/<seq>  (ctrl-c / SIGTERM stops)");
    while !shutdown.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("gleipnir-server: shutting down (draining in-flight analyses)");
    handle.join();
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    let noise = parse_noise(args)?;
    let input = parse_input(args, program.n_qubits())?;
    let width = parse_width(args)?;
    let (optimized, stats) = optimize(&program);

    // One engine: the optimized program re-uses certificates the original
    // already paid for wherever judgments coincide.
    let engine = make_engine(args)?;
    let mut store = open_store(args, &engine)?;
    let analyze_one = |p: Program| -> Result<Report, String> {
        let request = AnalysisRequest::builder(p)
            .input(&input)
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: width })
            .build()
            .map_err(|e| e.to_string())?;
        engine.analyze(&request).map_err(|e| e.to_string())
    };
    let before = analyze_one(program.clone())?;
    let after = analyze_one(optimized.clone())?;
    persist_store(&mut store, &engine)?;

    println!(
        "original:  {} gates, bound {:.6e}",
        program.gate_count(),
        before.error_bound()
    );
    println!(
        "optimized: {} gates, bound {:.6e}   ({} cancelled, {} merged, {} identities)",
        optimized.gate_count(),
        after.error_bound(),
        stats.cancellations,
        stats.merges,
        stats.identities_removed
    );
    if before.error_bound() > 0.0 {
        println!(
            "error-mitigation effect: {:.1}% lower bound",
            100.0 * (1.0 - after.error_bound() / before.error_bound())
        );
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    let (optimized, stats) = optimize(&program);
    eprintln!(
        "{} → {} gates ({} cancelled, {} merged, {} identities removed)",
        stats.gates_before,
        stats.gates_after,
        stats.cancellations,
        stats.merges,
        stats.identities_removed
    );
    print!("{}", pretty(&optimized));
    Ok(())
}

fn fmt(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    print!("{}", pretty(&program));
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let (_, program) = load_single_program(args)?;
    let device = match flag_value(args, "--device").as_deref() {
        Some("boeblingen") | None => DeviceModel::boeblingen20(),
        Some("lima") => DeviceModel::lima5(),
        Some(other) => return Err(format!("unknown device `{other}`")),
    };
    let mapping = match flag_value(args, "--mapping") {
        None => Mapping::identity(program.n_qubits()),
        Some(spec) => {
            let placement: Result<Vec<usize>, _> =
                spec.split(',').map(|s| s.trim().parse()).collect();
            Mapping::new(placement.map_err(|_| format!("bad mapping `{spec}`"))?)
        }
    };
    let (routed, final_placement) =
        route_with_final(&program, device.coupling(), &mapping).map_err(|e| e.to_string())?;
    eprintln!(
        "routed onto {}: {} gates ({} two-qubit), final placement {final_placement}",
        device.name(),
        routed.gate_count(),
        routed.two_qubit_gate_count()
    );
    print!("{}", pretty(&routed));
    Ok(())
}
