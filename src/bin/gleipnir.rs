//! The `gleipnir` command-line tool: analyze, optimize, format, and route
//! GLQ quantum programs from the shell.
//!
//! ```text
//! gleipnir analyze  <file.glq> [--width W] [--noise SPEC] [--input BITS] [--derivation]
//! gleipnir worst    <file.glq> [--noise SPEC]
//! gleipnir compare  <file.glq> [--width W] [--noise SPEC]   # bound before/after optimization
//! gleipnir optimize <file.glq>                              # print the optimized program
//! gleipnir fmt      <file.glq>                              # parse + pretty-print
//! gleipnir route    <file.glq> --device boeblingen|lima --mapping 0,1,2
//!
//! NOISE SPEC: bitflip:P (default bitflip:1e-4) | depolarizing:P1,P2 | none
//! ```

use gleipnir::circuit::{optimize, parse, pretty, route_with_final, Mapping, Program};
use gleipnir::core::{worst_case_bound, Analyzer, AnalyzerConfig};
use gleipnir::noise::{DeviceModel, NoiseModel};
use gleipnir::sdp::SolverOptions;
use gleipnir::sim::BasisState;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "analyze" => analyze(&args[1..], false),
        "compare" => compare(&args[1..]),
        "worst" => worst(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "fmt" => fmt(&args[1..]),
        "route" => cmd_route(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gleipnir <analyze|compare|worst|optimize|fmt|route> <file.glq> [options]\n\
     options: --width W   --noise bitflip:P|depolarizing:P1,P2|none   --input 0101\n\
     \x20        --derivation   --device boeblingen|lima   --mapping 0,1,2"
        .to_string()
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load_program(args: &[String]) -> Result<Program, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".glq"))
        .or_else(|| args.iter().find(|a| !a.starts_with("--")))
        .ok_or("missing input file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn parse_noise(args: &[String]) -> Result<NoiseModel, String> {
    let spec = flag_value(args, "--noise").unwrap_or_else(|| "bitflip:1e-4".into());
    if spec == "none" {
        return Ok(NoiseModel::Noiseless);
    }
    if let Some(p) = spec.strip_prefix("bitflip:") {
        let p: f64 = p
            .parse()
            .map_err(|_| format!("bad probability in `{spec}`"))?;
        return Ok(NoiseModel::uniform_bit_flip(p));
    }
    if let Some(ps) = spec.strip_prefix("depolarizing:") {
        let parts: Vec<&str> = ps.split(',').collect();
        if parts.len() != 2 {
            return Err(format!("depolarizing needs two rates, got `{spec}`"));
        }
        let p1: f64 = parts[0]
            .parse()
            .map_err(|_| format!("bad rate in `{spec}`"))?;
        let p2: f64 = parts[1]
            .parse()
            .map_err(|_| format!("bad rate in `{spec}`"))?;
        return Ok(NoiseModel::uniform_depolarizing(p1, p2));
    }
    Err(format!("unknown noise spec `{spec}`"))
}

fn parse_input(args: &[String], n: usize) -> Result<BasisState, String> {
    match flag_value(args, "--input") {
        None => Ok(BasisState::zeros(n)),
        Some(bits) => {
            if bits.len() != n || !bits.chars().all(|c| c == '0' || c == '1') {
                return Err(format!("--input must be {n} binary digits"));
            }
            Ok(BasisState::from_bits(
                &bits.chars().map(|c| c == '1').collect::<Vec<_>>(),
            ))
        }
    }
}

fn parse_width(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--width") {
        None => Ok(32),
        Some(w) => w.parse().map_err(|_| format!("bad width `{w}`")),
    }
}

fn analyze(args: &[String], quiet: bool) -> Result<(), String> {
    let program = load_program(args)?;
    let noise = parse_noise(args)?;
    let input = parse_input(args, program.n_qubits())?;
    let width = parse_width(args)?;
    let analyzer = Analyzer::new(AnalyzerConfig::with_mps_width(width));
    let report = analyzer
        .analyze(&program, &input, &noise)
        .map_err(|e| e.to_string())?;
    if !quiet {
        println!(
            "{} qubits, {} gates, input {input}, MPS width {width}",
            program.n_qubits(),
            program.gate_count()
        );
    }
    println!("error bound: {:.6e}", report.error_bound());
    println!(
        "TN delta: {:.3e}   SDP solves: {}   cache hits: {}   time: {:?}",
        report.tn_delta(),
        report.sdp_solves(),
        report.cache_hits(),
        report.elapsed()
    );
    if args.iter().any(|a| a == "--derivation") {
        println!("\n{}", report.derivation().pretty());
    }
    Ok(())
}

fn worst(args: &[String]) -> Result<(), String> {
    let program = load_program(args)?;
    let noise = parse_noise(args)?;
    let report =
        worst_case_bound(&program, &noise, &SolverOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "worst-case bound: {:.6e} over {} gates ({} distinct SDPs); clamped: {:.6e}",
        report.total,
        report.gate_count,
        report.sdp_solves,
        report.clamped()
    );
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let program = load_program(args)?;
    let noise = parse_noise(args)?;
    let input = parse_input(args, program.n_qubits())?;
    let width = parse_width(args)?;
    let (optimized, stats) = optimize(&program);

    let analyzer = Analyzer::new(AnalyzerConfig::with_mps_width(width));
    let before = analyzer
        .analyze(&program, &input, &noise)
        .map_err(|e| e.to_string())?;
    let after = analyzer
        .analyze(&optimized, &input, &noise)
        .map_err(|e| e.to_string())?;

    println!(
        "original:  {} gates, bound {:.6e}",
        program.gate_count(),
        before.error_bound()
    );
    println!(
        "optimized: {} gates, bound {:.6e}   ({} cancelled, {} merged, {} identities)",
        optimized.gate_count(),
        after.error_bound(),
        stats.cancellations,
        stats.merges,
        stats.identities_removed
    );
    if before.error_bound() > 0.0 {
        println!(
            "error-mitigation effect: {:.1}% lower bound",
            100.0 * (1.0 - after.error_bound() / before.error_bound())
        );
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let program = load_program(args)?;
    let (optimized, stats) = optimize(&program);
    eprintln!(
        "{} → {} gates ({} cancelled, {} merged, {} identities removed)",
        stats.gates_before,
        stats.gates_after,
        stats.cancellations,
        stats.merges,
        stats.identities_removed
    );
    print!("{}", pretty(&optimized));
    Ok(())
}

fn fmt(args: &[String]) -> Result<(), String> {
    let program = load_program(args)?;
    print!("{}", pretty(&program));
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let program = load_program(args)?;
    let device = match flag_value(args, "--device").as_deref() {
        Some("boeblingen") | None => DeviceModel::boeblingen20(),
        Some("lima") => DeviceModel::lima5(),
        Some(other) => return Err(format!("unknown device `{other}`")),
    };
    let mapping = match flag_value(args, "--mapping") {
        None => Mapping::identity(program.n_qubits()),
        Some(spec) => {
            let placement: Result<Vec<usize>, _> =
                spec.split(',').map(|s| s.trim().parse()).collect();
            Mapping::new(placement.map_err(|_| format!("bad mapping `{spec}`"))?)
        }
    };
    let (routed, final_placement) =
        route_with_final(&program, device.coupling(), &mapping).map_err(|e| e.to_string())?;
    eprintln!(
        "routed onto {}: {} gates ({} two-qubit), final placement {final_placement}",
        device.name(),
        routed.gate_count(),
        routed.two_qubit_gate_count()
    );
    print!("{}", pretty(&routed));
    Ok(())
}
