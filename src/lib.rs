//! # Gleipnir
//!
//! A from-scratch Rust reproduction of *Gleipnir: Toward Practical Error
//! Analysis for Quantum Programs* (PLDI 2021).
//!
//! Gleipnir computes **verified error bounds** for noisy quantum programs.
//! Instead of the worst-case (unconstrained) diamond norm, it uses the
//! state-aware `(ρ̂, δ)`-diamond norm: the approximate program state `ρ̂` is
//! computed adaptively with a Matrix Product State (MPS) tensor network, its
//! distance to the ideal state is soundly over-approximated by `δ`, and a
//! lightweight program logic combines per-gate SDP-certified bounds into a
//! whole-program bound.
//!
//! This facade crate re-exports the entire workspace:
//!
//! * [`linalg`] — dense complex/real linear algebra (eigen, SVD, QR, Cholesky)
//! * [`circuit`] — quantum program IR, parser, and coupling-map transpiler
//! * [`sim`] — dense state-vector and density-matrix simulators
//! * [`noise`] — noise channels, gate noise models, device models
//! * [`mps`] — the MPS tensor-network approximator `TN(ρ₀, P) = (ρ̂, δ)`
//! * [`sdp`] — a small dense semidefinite-programming solver
//! * [`core`] — the analysis [`Engine`](core::Engine), diamond norms, and
//!   the quantum error logic (the paper's contribution)
//! * [`server`] — the HTTP/1.1 + JSON analysis daemon (`gleipnir serve`)
//!   with the persistent certificate store
//! * [`telemetry`] — tracing spans, latency histograms, and Prometheus
//!   exposition for the fleet
//! * [`workloads`] — QAOA / Ising / GHZ benchmark generators
//!
//! ## Quickstart
//!
//! All analyses go through a long-lived [`Engine`](core::Engine): build an
//! [`AnalysisRequest`](core::AnalysisRequest) (program + input + noise +
//! [`Method`](core::Method)) and run it. The engine keeps every per-gate
//! SDP certificate it solves in a shared cache, so later requests — other
//! methods, other MPS widths, batch siblings — get them for free.
//!
//! ```
//! use gleipnir::prelude::*;
//!
//! // The 2-qubit GHZ circuit from the paper's running example.
//! let mut b = ProgramBuilder::new(2);
//! b.h(0).cnot(0, 1);
//! let program = b.build();
//!
//! // Per-gate bit-flip noise with probability 1e-4 (the paper's Section 7 model).
//! let noise = NoiseModel::uniform_bit_flip(1e-4);
//!
//! // One engine, any number of analyses. MPS width 8 is plenty for 2 qubits.
//! let engine = Engine::new();
//! let request = AnalysisRequest::builder(program)
//!     .noise(noise)
//!     .method(Method::StateAware { mps_width: 8 })
//!     .build()?;
//! let report = engine.analyze(&request)?;
//!
//! assert!(report.error_bound() > 0.0);
//! assert!(report.error_bound() < 3e-4); // two noisy gates, each ≤ 1e-4 + slack
//! # Ok::<(), gleipnir::core::AnalysisError>(())
//! ```

pub use gleipnir_circuit as circuit;
pub use gleipnir_core as core;
pub use gleipnir_linalg as linalg;
pub use gleipnir_mps as mps;
pub use gleipnir_noise as noise;
pub use gleipnir_sdp as sdp;
pub use gleipnir_server as server;
pub use gleipnir_sim as sim;
pub use gleipnir_telemetry as telemetry;
pub use gleipnir_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use gleipnir_circuit::{Gate, Program, ProgramBuilder, Qubit};
    pub use gleipnir_core::{
        AdaptiveConfig, AnalysisError, AnalysisRequest, BatchOutcome, BoundTier, CacheStats,
        ChangeReason, Derivation, DiffReport, Engine, EngineOptions, GateChange, InputState,
        Method, Report, StageTimings, StateAwareReport, TierCounts, TierPolicy, TierStats,
    };
    pub use gleipnir_linalg::{CMat, CVec, C64};
    pub use gleipnir_mps::{Mps, MpsConfig};
    pub use gleipnir_noise::{Channel, DeviceModel, NoiseModel};
    pub use gleipnir_sim::{BasisState, DensityMatrix, StateVector};
}
