//! Quickstart: the paper's running example (§3).
//!
//! Builds the 2-qubit GHZ circuit `H(q0); CNOT(q0, q1)`, analyzes it under
//! the paper's bit-flip noise model, and prints the certified error bound
//! together with the derivation tree the error logic produced.
//!
//! Run with: `cargo run --release --example quickstart`

use gleipnir::core::worst_case_bound;
use gleipnir::prelude::*;
use gleipnir::sdp::SolverOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The program: H(q0); CNOT(q0, q1).
    let mut b = ProgramBuilder::new(2);
    b.h(0).cnot(0, 1);
    let program = b.build();

    // The noise model ω: every gate suffers a bit flip with p = 1e-4
    // (2-qubit gates on their first operand qubit) — §7.1's model.
    let noise = NoiseModel::uniform_bit_flip(1e-4);

    // Step (1)-(3) of Fig. 4: MPS approximation, per-gate (ρ̂, δ)-diamond
    // norms, and the error logic.
    let analyzer = Analyzer::new(AnalyzerConfig::with_mps_width(8));
    let report = analyzer.analyze(&program, &BasisState::zeros(2), &noise)?;

    println!("program:\n{program}");
    println!(
        "judgment:  (|00⟩⟨00|, 0) ⊢ P̃_ω ≤ {:.6e}",
        report.error_bound()
    );
    println!();
    println!("derivation:");
    println!("{}", report.derivation().pretty());

    // Compare with the worst-case (unconstrained diamond norm) analysis.
    let worst = worst_case_bound(&program, &noise, &SolverOptions::default())?;
    println!("worst-case bound: {:.6e}", worst.total);
    println!(
        "Gleipnir is {:.1}% of worst case (the H gate's bit flip is invisible on |+⟩)",
        100.0 * report.error_bound() / worst.total
    );

    // The derivation is a checkable artifact: replay it independently.
    report
        .replay(&noise, &SolverOptions::default(), 1e-6)
        .expect("derivation must replay");
    println!("derivation replayed and verified ✓");
    Ok(())
}
