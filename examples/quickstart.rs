//! Quickstart: the paper's running example (§3), on the `Engine` API.
//!
//! Builds the 2-qubit GHZ circuit `H(q0); CNOT(q0, q1)`, analyzes it under
//! the paper's bit-flip noise model, and prints the certified error bound
//! together with the derivation tree the error logic produced.
//!
//! Run with: `cargo run --release --example quickstart`

use gleipnir::prelude::*;
use gleipnir::sdp::SolverOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The program: H(q0); CNOT(q0, q1).
    let mut b = ProgramBuilder::new(2);
    b.h(0).cnot(0, 1);
    let program = b.build();

    // The noise model ω: every gate suffers a bit flip with p = 1e-4
    // (2-qubit gates on their first operand qubit) — §7.1's model.
    let noise = NoiseModel::uniform_bit_flip(1e-4);

    // One long-lived engine serves every analysis; its SDP-certificate
    // cache is shared across requests and methods.
    let engine = Engine::new();

    // Step (1)-(3) of Fig. 4: MPS approximation, per-gate (ρ̂, δ)-diamond
    // norms, and the error logic.
    let request = AnalysisRequest::builder(program.clone())
        .noise(noise.clone())
        .method(Method::StateAware { mps_width: 8 })
        .build()?;
    let report = engine.analyze(&request)?;

    println!("program:\n{program}");
    println!(
        "judgment:  (|00⟩⟨00|, 0) ⊢ P̃_ω ≤ {:.6e}",
        report.error_bound()
    );
    println!();
    println!("derivation:");
    println!("{}", report.derivation().expect("state-aware run").pretty());

    // Compare with the worst-case (unconstrained diamond norm) analysis —
    // same engine, different method.
    let worst = engine.analyze(
        &AnalysisRequest::builder(program)
            .noise(noise.clone())
            .method(Method::WorstCase)
            .build()?,
    )?;
    println!("worst-case bound: {:.6e}", worst.error_bound());
    println!(
        "Gleipnir is {:.1}% of worst case (the H gate's bit flip is invisible on |+⟩)",
        100.0 * report.error_bound() / worst.error_bound()
    );

    // The derivation is a checkable artifact: replay it independently.
    report
        .as_state_aware()
        .expect("state-aware run")
        .replay(&noise, &SolverOptions::default(), 1e-6)
        .expect("derivation must replay");
    println!("derivation replayed and verified ✓");
    Ok(())
}
