//! Parsing the GLQ text format and analyzing a branching program.
//!
//! Demonstrates the measurement (`if q == 0`) syntax of §2.2, the parser /
//! pretty-printer round trip, and the Meas rule of the error logic on a
//! quantum-teleportation-style circuit.
//!
//! Run with: `cargo run --release --example parse_and_analyze`

use gleipnir::circuit::{parse, pretty};
use gleipnir::prelude::*;

const SOURCE: &str = "
qubits 3;
// Prepare the payload on q0 and a Bell pair on (q1, q2).
ry(pi/5) q0;
h q1;
cnot q1, q2;
// Bell measurement of (q0, q1) with classically controlled corrections.
cnot q0, q1;
h q0;
if q1 == 0 {
  skip;
} else {
  x q2;
}
if q0 == 0 {
  skip;
} else {
  z q2;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(SOURCE)?;
    println!(
        "parsed {} gates, {} measurements",
        program.gate_count(),
        program.measure_count()
    );

    // Round trip through the pretty-printer.
    let reprinted = pretty(&program);
    assert_eq!(parse(&reprinted)?, program);
    println!("\npretty-printed form:\n{reprinted}");

    let engine = Engine::new();
    let request = AnalysisRequest::builder(program)
        .noise(NoiseModel::uniform_depolarizing(1e-4, 1e-3))
        .method(Method::StateAware { mps_width: 8 })
        .build()?;
    let report = engine.analyze(&request)?;

    println!(
        "error bound under depolarizing noise: ε ≤ {:.4e}",
        report.error_bound()
    );
    println!("\nderivation (note the [Meas] nodes):");
    println!("{}", report.derivation().expect("state-aware run").pretty());
    Ok(())
}
