//! Noise-adaptive qubit mapping (the paper's §7.2 case study, on the Lima
//! device model).
//!
//! Evaluates every injective placement of a GHZ-3 circuit onto the 5-qubit
//! Lima topology, ranks them by Gleipnir's error bound, and verifies the
//! ranking against exact noisy simulation — exactly how the paper proposes
//! compilers should pick mappings. All 60 placements run on one engine,
//! so routed circuits that share (gate, ρ′, δ) judgments reuse each
//! other's SDP certificates.
//!
//! Run with: `cargo run --release --example qubit_mapping`

use gleipnir::core::Engine;
use gleipnir::noise::DeviceModel;
use gleipnir_bench::run_mapping_experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceModel::lima5();
    println!("device: {}", device.name());
    println!("coupling edges: {:?}\n", device.coupling().edges());

    // All injective 3-qubit placements on 5 physical qubits, one engine.
    let engine = Engine::new();
    let mut rows = Vec::new();
    for a in 0..5 {
        for b in 0..5 {
            for c in 0..5 {
                if a == b || b == c || a == c {
                    continue;
                }
                let row = run_mapping_experiment(&engine, &device, 3, &[a, b, c])?;
                rows.push(row);
            }
        }
    }

    rows.sort_by(|x, y| x.gleipnir_bound.partial_cmp(&y.gleipnir_bound).unwrap());
    println!(
        "{:<10} {:>15} {:>15} {:>9}",
        "mapping", "Gleipnir bound", "measured error", "2q gates"
    );
    for r in rows.iter().take(5) {
        println!(
            "{:<10} {:>15.3} {:>15.3} {:>9}",
            r.mapping, r.gleipnir_bound, r.measured, r.routed_2q_gates
        );
    }
    println!("… ({} mappings evaluated)", rows.len());

    let best = &rows[0];
    let truly_best = rows
        .iter()
        .min_by(|x, y| x.measured.partial_cmp(&y.measured).unwrap())
        .expect("non-empty");
    println!(
        "\nbest by bound: {}   best by measurement: {}",
        best.mapping, truly_best.mapping
    );
    let sound = rows.iter().all(|r| r.gleipnir_bound >= r.measured);
    println!(
        "bound ≥ measured for every mapping: {}",
        if sound { "yes ✓" } else { "NO" }
    );
    let stats = engine.cache_stats();
    println!(
        "shared SDP cache across all mappings: {} entries, {} hits",
        stats.entries, stats.hits
    );
    Ok(())
}
