//! The precision–cost trade-off of the MPS width (a miniature Figure 14).
//!
//! Sweeps the MPS size `w` on a Trotterized Ising chain and prints how the
//! error bound tightens (and the runtime grows) with `w` — Gleipnir's
//! adaptivity knob. The whole sweep runs on **one engine**, so judgments
//! the narrow MPS already certified (early gates, where nothing has been
//! truncated yet) come back as cache hits at the wider sizes — watch the
//! `hits` column.
//!
//! Run with: `cargo run --release --example ising_mps_width`

use gleipnir::prelude::*;
use gleipnir::workloads::ising_chain;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let program = ising_chain(n, 12, 1.0, 1.0, 0.1);
    let noise = NoiseModel::uniform_bit_flip(1e-4);
    let worst = program.gate_count() as f64 * 1e-4;

    println!(
        "Ising chain: {n} qubits, {} gates; worst case = {:.1}e-4\n",
        program.gate_count(),
        worst * 1e4
    );
    println!(
        "{:>4} {:>14} {:>12} {:>8} {:>8} {:>10}",
        "w", "bound(×1e-4)", "TN δ", "solves", "hits", "time(s)"
    );

    let engine = Engine::new();
    for w in [1usize, 2, 4, 8, 16, 32] {
        let t = Instant::now();
        let request = AnalysisRequest::builder(program.clone())
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: w })
            .build()?;
        let report = engine.analyze(&request)?;
        println!(
            "{w:>4} {:>14.2} {:>12.4} {:>8} {:>8} {:>10.2}",
            report.error_bound() * 1e4,
            report.tn_delta().expect("state-aware run"),
            report.sdp_solves(),
            report.cache_hits(),
            t.elapsed().as_secs_f64()
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\nengine cache after the sweep: {} entries, {} hits, {} misses",
        stats.entries, stats.hits, stats.misses
    );
    println!(
        "Small w: large truncation δ makes the state constraint vacuous and \
         the bound approaches the worst case.\nLarge w: δ → 0 and the bound \
         converges to the full-precision state-aware value."
    );
    Ok(())
}
