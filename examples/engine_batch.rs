//! Batch analysis: one engine, many requests, shared certificates.
//!
//! Builds a small fleet of analysis requests — different workloads,
//! methods, and input states — and fans them out across worker threads
//! with `Engine::analyze_batch_detailed`. The requests share the engine's
//! content-addressed SDP cache, so overlapping judgments (the GHZ prefix
//! repeated across requests, the adaptive sweep's widths) are solved once
//! for the whole batch. One request is deliberately broken to show that a
//! failing request reports its own error without sinking its siblings.
//!
//! Run with: `cargo run --release --example engine_batch`

use gleipnir::core::AdaptiveConfig;
use gleipnir::prelude::*;
use gleipnir::workloads::{ghz, ising_chain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let noise = NoiseModel::uniform_bit_flip(1e-4);
    let ghz6 = ghz(6);
    let ising = ising_chain(6, 4, 1.0, 1.0, 0.1);

    // A branching program: the LQR baseline rejects it at run time — the
    // deliberately failing sibling.
    let mut b = ProgramBuilder::new(2);
    b.h(0).if_measure(
        0,
        |z| {
            z.x(1);
        },
        |o| {
            o.z(1);
        },
    );
    let branching = b.build();

    let requests = vec![
        AnalysisRequest::builder(ghz6.clone())
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: 8 })
            .build()?,
        AnalysisRequest::builder(ghz6.clone())
            .noise(noise.clone())
            .method(Method::WorstCase)
            .build()?,
        AnalysisRequest::builder(ising.clone())
            .noise(noise.clone())
            .method(Method::Adaptive(AdaptiveConfig {
                start_width: 2,
                max_width: 8,
                min_relative_improvement: 0.01,
            }))
            .build()?,
        AnalysisRequest::builder(branching)
            .noise(noise.clone())
            .method(Method::LqrFullSim)
            .build()?,
        // Same GHZ program again, from the |+…+⟩ product input this time.
        AnalysisRequest::builder(ghz6)
            .input(InputState::plus(6))
            .noise(noise)
            .method(Method::StateAware { mps_width: 8 })
            .build()?,
    ];

    let engine = Engine::new();
    let outcome = engine.analyze_batch_detailed(&requests);

    for (i, result) in outcome.results.iter().enumerate() {
        match result {
            Ok(report) => println!(
                "request {i}: {:<12} ε ≤ {:.4e}  ({} solves, {} cache hits, {:?})",
                report.method_name(),
                report.error_bound(),
                report.sdp_solves(),
                report.cache_hits(),
                report.elapsed()
            ),
            Err(e) => println!("request {i}: failed as intended — {e}"),
        }
    }

    let stats = engine.cache_stats();
    println!(
        "\nbatch of {} served by {} worker threads in {:?}",
        outcome.results.len(),
        outcome.worker_threads,
        outcome.elapsed
    );
    println!(
        "shared SDP cache: {} entries, {} hits, {} misses",
        stats.entries, stats.hits, stats.misses
    );
    assert!(outcome.results[3].is_err(), "the LQR sibling must fail");
    assert_eq!(outcome.results.iter().filter(|r| r.is_ok()).count(), 4);
    Ok(())
}
