//! QAOA error analysis: the paper's §7.1 workload class in miniature.
//!
//! Generates a QAOA max-cut circuit for a small random 4-regular graph,
//! then compares three analyses:
//!
//! * Gleipnir's adaptive `(ρ̂, δ)`-diamond norm bound,
//! * the LQR-with-full-simulation baseline (exact predicates, exponential
//!   cost), and
//! * the unconstrained worst case (`gate count × p`).
//!
//! Run with: `cargo run --release --example qaoa_error_analysis`

use gleipnir::core::{lqr_full_sim_bound, worst_case_bound, Analyzer, AnalyzerConfig};
use gleipnir::noise::NoiseModel;
use gleipnir::sdp::SolverOptions;
use gleipnir::sim::BasisState;
use gleipnir::workloads::{qaoa_maxcut, Graph};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Graph::random_regular(8, 4, 7).expect("4-regular graph on 8 vertices");
    let program = qaoa_maxcut(&graph, &[0.35], &[0.62]);
    let noise = NoiseModel::uniform_bit_flip(1e-4);
    let input = BasisState::zeros(program.n_qubits());

    println!(
        "QAOA max-cut: {} qubits, {} edges, {} gates",
        program.n_qubits(),
        graph.n_edges(),
        program.gate_count()
    );

    let t = Instant::now();
    let report =
        Analyzer::new(AnalyzerConfig::with_mps_width(32)).analyze(&program, &input, &noise)?;
    println!(
        "Gleipnir (w = 32):   ε ≤ {:.3}e-4   [{:.2}s, {} SDP solves, {} cache hits, TN δ = {:.2e}]",
        report.error_bound() * 1e4,
        t.elapsed().as_secs_f64(),
        report.sdp_solves(),
        report.cache_hits(),
        report.tn_delta()
    );

    let t = Instant::now();
    let lqr = lqr_full_sim_bound(&program, &input, &noise, &SolverOptions::default())?;
    println!(
        "LQR full simulation: ε ≤ {:.3}e-4   [{:.2}s — exponential in qubits]",
        lqr * 1e4,
        t.elapsed().as_secs_f64()
    );

    let worst = worst_case_bound(&program, &noise, &SolverOptions::default())?;
    println!(
        "worst case:          ε ≤ {:.3}e-4   [state-agnostic]",
        worst.total * 1e4
    );

    println!(
        "\nGleipnir tightens the worst case by {:.0}% on this circuit.",
        100.0 * (1.0 - report.error_bound() / worst.total)
    );
    Ok(())
}
