//! QAOA error analysis: the paper's §7.1 workload class in miniature.
//!
//! Generates a QAOA max-cut circuit for a small random 4-regular graph,
//! then compares three analyses, all served by one engine:
//!
//! * Gleipnir's adaptive `(ρ̂, δ)`-diamond norm bound (`Method::Adaptive`),
//! * the LQR-with-full-simulation baseline (exact predicates, exponential
//!   cost), and
//! * the unconstrained worst case (`gate count × p`).
//!
//! Run with: `cargo run --release --example qaoa_error_analysis`

use gleipnir::core::AdaptiveConfig;
use gleipnir::prelude::*;
use gleipnir::workloads::{qaoa_maxcut, Graph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Graph::random_regular(8, 4, 7).expect("4-regular graph on 8 vertices");
    let program = qaoa_maxcut(&graph, &[0.35], &[0.62]);
    let noise = NoiseModel::uniform_bit_flip(1e-4);

    println!(
        "QAOA max-cut: {} qubits, {} edges, {} gates",
        program.n_qubits(),
        graph.n_edges(),
        program.gate_count()
    );

    let engine = Engine::new();
    let request = |method: Method| {
        AnalysisRequest::builder(program.clone())
            .noise(noise.clone())
            .method(method)
            .build()
    };

    let adaptive = engine.analyze(&request(Method::Adaptive(AdaptiveConfig {
        start_width: 4,
        max_width: 32,
        min_relative_improvement: 0.02,
    }))?)?;
    let best = adaptive.as_adaptive().expect("adaptive run");
    println!(
        "Gleipnir (adaptive → w = {}): ε ≤ {:.3}e-4   [{:.2}s, {} SDP solves, {} cache hits, TN δ = {:.2e}]",
        best.width,
        adaptive.error_bound() * 1e4,
        adaptive.elapsed().as_secs_f64(),
        adaptive.sdp_solves(),
        adaptive.cache_hits(),
        adaptive.tn_delta().expect("adaptive run")
    );

    let lqr = engine.analyze(&request(Method::LqrFullSim)?)?;
    println!(
        "LQR full simulation: ε ≤ {:.3}e-4   [{:.2}s — exponential in qubits]",
        lqr.error_bound() * 1e4,
        lqr.elapsed().as_secs_f64()
    );

    let worst = engine.analyze(&request(Method::WorstCase)?)?;
    println!(
        "worst case:          ε ≤ {:.3}e-4   [state-agnostic]",
        worst.error_bound() * 1e4
    );

    println!(
        "\nGleipnir tightens the worst case by {:.0}% on this circuit.",
        100.0 * (1.0 - adaptive.error_bound() / worst.error_bound())
    );
    Ok(())
}
