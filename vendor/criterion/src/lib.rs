//! Minimal offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! implementing the API subset this workspace's `[[bench]]` targets use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and
//! [`black_box`].
//!
//! Instead of criterion's statistical sampling it times a fixed warm-up
//! plus a short measurement loop and prints `min/mean` wall-clock times —
//! enough to compare ablation variants in one run. Passing `--test` (as
//! `cargo test --benches` does) runs each benchmark body exactly once as a
//! smoke test. The container this workspace builds in has no network access
//! to crates.io; swap the path dependency for `criterion = "0.5"` to use
//! the real harness.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the stand-in treats every
/// variant identically (one setup per measured call).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// `(min, mean)` over measured iterations, filled in by `iter*`.
    result: Option<(Duration, Duration)>,
    smoke_test: bool,
}

impl Bencher {
    fn measure<F: FnMut()>(&mut self, mut once: F) {
        if self.smoke_test {
            once();
            self.result = Some((Duration::ZERO, Duration::ZERO));
            return;
        }
        // Warm up, then measure until ~200ms or 30 iterations, whichever
        // comes first (at least 3 iterations).
        once();
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut n = 0u32;
        while n < 3 || (started.elapsed() < budget && n < 30) {
            let t0 = Instant::now();
            once();
            let dt = t0.elapsed();
            min = min.min(dt);
            total += dt;
            n += 1;
        }
        self.result = Some((min, total / n));
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            black_box(routine());
        });
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup time is
    /// excluded from criterion's measurement; the stand-in includes it,
    /// which is fine for the coarse comparisons these benches make).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            black_box(routine(input));
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample-count knob; accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion's per-sample time knob; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut b = Bencher {
            result: None,
            smoke_test: self.criterion.smoke_test,
        };
        f(&mut b);
        match b.result {
            Some((min, mean)) if !self.criterion.smoke_test => {
                println!(
                    "bench {}/{id:<40} min {:>12.3?}  mean {:>12.3?}",
                    self.name, min, mean
                );
            }
            _ => println!("bench {}/{id:<40} ok (smoke test)", self.name),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(id, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run_one(&id, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark-harness entry point handed to `criterion_group!` targets.
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` / `cargo bench -- --test` pass `--test`:
        // run each body once instead of timing it.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { smoke_test }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.run_one(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
