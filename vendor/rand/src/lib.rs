//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing just the API subset this workspace uses:
//!
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]
//! * [`thread_rng`] / [`rngs::ThreadRng`]
//!
//! The generator is SplitMix64 — statistically fine for tests and workload
//! generation, **not** cryptographically secure. The container this
//! workspace builds in has no network access to crates.io, so the real
//! `rand` cannot be vendored; this crate keeps call sites source-compatible
//! (swap the path dependency for `rand = "0.8"` to use the real thing).

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s; the base trait every generator implements.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that [`Rng::gen`] can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the tiny spans used here.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the stand-in for `rand`'s `StdRng`. Deterministic for a
    /// given seed, which is all the workspace's tests rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The generator returned by [`thread_rng`](super::thread_rng); seeded
    /// per call from a process-wide counter and the wall clock.
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a cheaply constructed, uniquely seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nonce = COUNTER.fetch_add(1, Ordering::Relaxed);
    let clock = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    rngs::ThreadRng(SeedableRng::seed_from_u64(
        clock ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{thread_rng, Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn thread_rng_works() {
        let mut rng = thread_rng();
        let _ = rng.gen::<f64>();
        let _ = rng.gen_range(0..10);
    }
}
