//! Minimal offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, implementing the
//! API subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `pattern in strategy` arguments,
//! * [`Strategy`](strategy::Strategy) with `prop_map`, range strategies
//!   over `f64`/integers, tuple strategies, and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`], and
//!   [`ProptestConfig::with_cases`](test_runner::Config::with_cases).
//!
//! Unlike the real proptest there is **no shrinking** and no persisted
//! failure seeds: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test name) and panics on the first failure. The
//! container this workspace builds in has no network access to crates.io;
//! swap the path dependency for `proptest = "1"` to use the real crate.

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;

    /// A strategy producing `Vec`s of a fixed length (the real proptest
    /// accepts a size range; this workspace only uses exact lengths).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-execution configuration.

    /// Mirror of proptest's `Config`: only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of pseudo-random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// FNV-1a, used to derive a deterministic per-test seed from its name.
#[doc(hidden)]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut __pt_rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::seed_from_name(stringify!($name)),
                );
                for __pt_case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    )+
                    { $body }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Asserts a property holds; panics with the formatted message otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts two values are equal, as [`prop_assert!`] does for conditions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -2.0..2.0f64, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn mapped_vec_has_len(v in crate::collection::vec((0.0..1.0f64).prop_map(|x| x * 2.0), 5)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|x| (0.0..2.0).contains(x)));
        }
    }
}
