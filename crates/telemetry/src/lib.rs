//! # gleipnir-telemetry
//!
//! The observability substrate for the analysis fleet: end-to-end request
//! tracing plus low-overhead latency histograms, std-only and dependency
//! free (the container is offline).
//!
//! Three pieces, designed so the analysis pipeline stays bit-deterministic
//! with telemetry enabled:
//!
//! * **Spans** ([`Span`], [`SpanName`], [`TraceCtx`]) — recorded into
//!   per-thread lock-free ring buffers (single-writer
//!   seqlock slots, relaxed atomics, no allocation at record time). A
//!   request's spans are collected into a bounded in-memory [`TraceStore`]
//!   when the request completes, and served as a span tree ([`Trace`]).
//! * **Histograms** ([`Histogram`]) — fixed-boundary log-scale buckets
//!   (4 per decade, 1 µs … 100 s) with `p50`/`p95`/`p99` estimation and
//!   Prometheus `_bucket`/`_sum`/`_count` exposition.
//! * **Exposition** ([`prom`]) — the Prometheus text format v0.0.4
//!   (label escaping, non-finite policy mirroring `jsonfmt`: NaN/±Inf
//!   never leak into the output).
//!
//! Telemetry is *passive*: nothing here feeds back into any computation,
//! every counter is a relaxed atomic, and span recording off the hot path
//! costs a handful of relaxed stores. Tracing is scoped: spans are only
//! recorded while a [`TraceCtx`] is active (ambient via [`with_ctx`], or
//! captured explicitly by worker closures), so a library user who never
//! starts a trace pays only the dormant thread-local check.

#![warn(missing_docs)]

mod hist;
pub mod prom;
mod span;
mod trace;

pub use hist::{Histogram, HistogramSnapshot, LATENCY_BOUNDS_MS};
pub use span::{detail, SpanName, SpanRecord};
pub use trace::{SpanNode, Trace, TraceStore};

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic nanoseconds since the process-wide telemetry epoch (the first
/// call). All span timestamps share this timebase.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Mints a fresh process-unique span id (never 0; 0 means "no parent").
pub fn next_span_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Mints a fresh trace id: well-mixed 64-bit ids seeded from the wall
/// clock at first use, so ids from successive server runs don't collide
/// in dashboards. Never 0.
pub fn next_trace_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15)
    });
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    // splitmix64: every output is distinct for distinct inputs.
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    let id = z ^ (z >> 31);
    if id == 0 {
        1
    } else {
        id
    }
}

/// The ambient tracing context: which trace spans belong to and which
/// span is the current parent. `Copy` so worker closures can capture it
/// by value at dispatch time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace every span recorded under this context belongs to.
    pub trace_id: u64,
    /// The span id new child spans are parented under (0 = root).
    pub parent: u32,
}

thread_local! {
    static ACTIVE: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The ambient [`TraceCtx`] on this thread, if a trace is in progress.
pub fn active() -> Option<TraceCtx> {
    ACTIVE.with(|a| a.get())
}

/// Runs `f` with `ctx` as the ambient tracing context, restoring the
/// previous context afterwards (contexts nest).
pub fn with_ctx<R>(ctx: TraceCtx, f: impl FnOnce() -> R) -> R {
    let prev = ACTIVE.with(|a| a.replace(Some(ctx)));
    struct Restore(Option<TraceCtx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Low-level span record: writes one completed span into this thread's
/// ring. `id` must come from [`next_span_id`]. No allocation.
#[allow(clippy::too_many_arguments)]
pub fn record_span(
    ctx: TraceCtx,
    name: SpanName,
    id: u32,
    start_ns: u64,
    end_ns: u64,
    detail: u32,
    value: u64,
    value2: u64,
) {
    span::record(&SpanRecord {
        trace_id: ctx.trace_id,
        id,
        parent: ctx.parent,
        name,
        detail,
        value,
        value2,
        start_ns,
        end_ns,
    });
}

/// An in-progress span: stack-allocated, records itself into the
/// thread-local ring on [`Span::end`].
#[derive(Debug)]
pub struct Span {
    ctx: TraceCtx,
    name: SpanName,
    id: u32,
    detail: u32,
    value: u64,
    value2: u64,
    start_ns: u64,
}

impl Span {
    /// Starts a span under `ctx` (the span's parent is `ctx.parent`).
    pub fn start(ctx: TraceCtx, name: SpanName) -> Span {
        Span {
            ctx,
            name,
            id: next_span_id(),
            detail: 0,
            value: 0,
            value2: 0,
            start_ns: now_ns(),
        }
    }

    /// This span's id — pass as `parent` in a child [`TraceCtx`].
    pub fn id(&self) -> u32 {
        self.id
    }

    /// A child context parented under this span.
    pub fn child_ctx(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.ctx.trace_id,
            parent: self.id,
        }
    }

    /// Sets the name-specific detail code (see [`SpanName`] docs).
    pub fn set_detail(&mut self, detail: u32) {
        self.detail = detail;
    }

    /// Sets the name-specific primary value (e.g. queue-wait ns).
    pub fn set_value(&mut self, value: u64) {
        self.value = value;
    }

    /// Sets the name-specific secondary value (e.g. IP iterations).
    pub fn set_value2(&mut self, value2: u64) {
        self.value2 = value2;
    }

    /// Completes the span and records it.
    pub fn end(self) {
        record_span(
            self.ctx,
            self.name,
            self.id,
            self.start_ns,
            now_ns(),
            self.detail,
            self.value,
            self.value2,
        );
    }
}

/// Process-global telemetry state: the trace store plus the histograms the
/// analysis pipeline records into regardless of which front end (server,
/// CLI, bench) is driving it.
pub struct Telemetry {
    traces: TraceStore,
    /// Plan-stage wall time per state-aware analysis (ms).
    pub plan_ms: Histogram,
    /// Solve-stage wall time per state-aware analysis (ms).
    pub solve_ms: Histogram,
    /// Assemble-stage wall time per state-aware analysis (ms).
    pub assemble_ms: Histogram,
    /// Interior-point solve wall time per lead SDP solve (ms).
    pub ip_solve_ms: Histogram,
    /// Anytime refinement latency: first answer to refined ε (ms).
    pub refine_ms: Histogram,
}

impl Telemetry {
    fn new() -> Telemetry {
        Telemetry {
            traces: TraceStore::new(256),
            plan_ms: Histogram::latency(),
            solve_ms: Histogram::latency(),
            assemble_ms: Histogram::latency(),
            ip_solve_ms: Histogram::latency(),
            refine_ms: Histogram::latency(),
        }
    }

    /// Collects every span recorded for `trace_id` (across all thread
    /// rings) into the bounded trace store. Call once, when the request
    /// completes; spans recorded afterwards are not picked up.
    pub fn finish_trace(&self, trace_id: u64) {
        let spans = span::collect(trace_id);
        self.traces.push(trace_id, spans);
    }

    /// Looks up a completed trace by id (most recent ~256 kept).
    pub fn trace(&self, trace_id: u64) -> Option<Trace> {
        self.traces.get(trace_id)
    }
}

/// The process-global [`Telemetry`] instance.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Formats a trace id the way the server's `X-Trace-Id` header and
/// `/trace/<id>` route spell it: 16 lowercase hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a trace id in the [`format_trace_id`] spelling.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_round_trip() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(parse_trace_id(&format_trace_id(a)), Some(a));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("00000000000000000"), None); // 17 digits
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        assert_eq!(active(), None);
        let outer = TraceCtx {
            trace_id: 7,
            parent: 1,
        };
        let inner = TraceCtx {
            trace_id: 7,
            parent: 2,
        };
        with_ctx(outer, || {
            assert_eq!(active(), Some(outer));
            with_ctx(inner, || assert_eq!(active(), Some(inner)));
            assert_eq!(active(), Some(outer));
        });
        assert_eq!(active(), None);
    }

    #[test]
    fn spans_round_trip_through_the_store() {
        let trace_id = next_trace_id();
        let ctx = TraceCtx {
            trace_id,
            parent: 0,
        };
        let mut root = Span::start(ctx, SpanName::Request);
        root.set_detail(crate::span::detail::ENDPOINT_ANALYZE);
        let child_ctx = root.child_ctx();
        let child = Span::start(child_ctx, SpanName::Plan);
        child.end();
        root.end();
        global().finish_trace(trace_id);
        let trace = global().trace(trace_id).expect("trace stored");
        assert_eq!(trace.trace_id, trace_id);
        assert_eq!(trace.spans.len(), 2);
        let roots = trace.tree();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].record.name, SpanName::Request);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].record.name, SpanName::Plan);
    }
}
