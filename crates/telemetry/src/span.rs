//! Per-thread lock-free span rings.
//!
//! Each thread that records spans owns one fixed-size [`SpanRing`]: an
//! array of seqlock slots written only by the owning thread and snapshotted
//! by whoever collects a finished trace. Recording is a handful of relaxed
//! atomic stores — no locks, no allocation — so it is safe on the solver
//! worker hot path. Collection walks every registered ring and keeps the
//! records whose trace id matches; a torn read (writer lapped the reader
//! mid-slot) is detected by the slot's sequence stamp and skipped, which
//! can only ever lose a span from a *trace*, never perturb an analysis.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What a span measures. The `detail`/`value`/`value2` fields of a
/// [`SpanRecord`] are interpreted per name (see [`detail`]):
///
/// * `Request` — one HTTP request end to end; `detail` = endpoint code.
/// * `HttpParse` — the reactor parse that produced the request.
/// * `QueueWait` — job queue residence (reactor push → worker pop).
/// * `Handler` — the worker's route/handler call.
/// * `Mps` / `Plan` / `Solve` / `Assemble` — pipeline stages.
/// * `Obligation` — one proof-obligation unit on a pool worker; `detail`
///   = outcome code, `value` = pool queue-wait ns, `value2` = IP
///   iterations.
/// * `Phase*` — the seven `SolverProfile` phases, re-emitted as children
///   of their obligation span after the solve returns (the solver itself
///   records nothing).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum SpanName {
    /// One HTTP request, reactor parse to response framing.
    Request = 1,
    /// HTTP request parsing in the reactor.
    HttpParse = 2,
    /// Job-queue wait between reactor and worker.
    QueueWait = 3,
    /// The worker-side handler (routing + endpoint logic).
    Handler = 4,
    /// MPS tensor-network approximation of the program state.
    Mps = 5,
    /// The plan stage (obligation skeleton construction).
    Plan = 6,
    /// The solve stage (parallel SDP certification).
    Solve = 7,
    /// The assemble stage (derivation + report construction).
    Assemble = 8,
    /// One proof-obligation unit executed on a pool worker.
    Obligation = 9,
    /// Interior-point phase: problem setup.
    PhaseSetup = 10,
    /// Interior-point phase: residual evaluation.
    PhaseResidual = 11,
    /// Interior-point phase: Schur complement formation.
    PhaseSchur = 12,
    /// Interior-point phase: factorization.
    PhaseFactor = 13,
    /// Interior-point phase: search-direction solve.
    PhaseDirection = 14,
    /// Interior-point phase: step-length line search.
    PhaseStep = 15,
    /// Interior-point phase: soundness certificate extraction.
    PhaseCert = 16,
}

impl SpanName {
    /// The stable wire spelling used in trace JSON and CLI trees.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanName::Request => "request",
            SpanName::HttpParse => "http_parse",
            SpanName::QueueWait => "queue_wait",
            SpanName::Handler => "handler",
            SpanName::Mps => "mps",
            SpanName::Plan => "plan",
            SpanName::Solve => "solve",
            SpanName::Assemble => "assemble",
            SpanName::Obligation => "obligation",
            SpanName::PhaseSetup => "phase_setup",
            SpanName::PhaseResidual => "phase_residual",
            SpanName::PhaseSchur => "phase_schur",
            SpanName::PhaseFactor => "phase_factor",
            SpanName::PhaseDirection => "phase_direction",
            SpanName::PhaseStep => "phase_step",
            SpanName::PhaseCert => "phase_cert",
        }
    }

    /// The span name for `SolverProfile` phase `index` (0..7, in the
    /// solver's phase order: setup, residual, schur, factor, direction,
    /// step, cert).
    pub fn phase(index: usize) -> SpanName {
        match index {
            0 => SpanName::PhaseSetup,
            1 => SpanName::PhaseResidual,
            2 => SpanName::PhaseSchur,
            3 => SpanName::PhaseFactor,
            4 => SpanName::PhaseDirection,
            5 => SpanName::PhaseStep,
            _ => SpanName::PhaseCert,
        }
    }

    fn from_u16(v: u16) -> Option<SpanName> {
        Some(match v {
            1 => SpanName::Request,
            2 => SpanName::HttpParse,
            3 => SpanName::QueueWait,
            4 => SpanName::Handler,
            5 => SpanName::Mps,
            6 => SpanName::Plan,
            7 => SpanName::Solve,
            8 => SpanName::Assemble,
            9 => SpanName::Obligation,
            10 => SpanName::PhaseSetup,
            11 => SpanName::PhaseResidual,
            12 => SpanName::PhaseSchur,
            13 => SpanName::PhaseFactor,
            14 => SpanName::PhaseDirection,
            15 => SpanName::PhaseStep,
            16 => SpanName::PhaseCert,
            _ => return None,
        })
    }
}

/// `detail` codes, interpreted per [`SpanName`].
pub mod detail {
    /// `Request` span: `POST /analyze`.
    pub const ENDPOINT_ANALYZE: u32 = 1;
    /// `Request` span: `POST /batch`.
    pub const ENDPOINT_BATCH: u32 = 2;
    /// `Request` span: `POST /diff`.
    pub const ENDPOINT_DIFF: u32 = 3;
    /// `Request` span: `GET /healthz`.
    pub const ENDPOINT_HEALTHZ: u32 = 4;
    /// `Request` span: `GET /metrics`.
    pub const ENDPOINT_METRICS: u32 = 5;
    /// `Request` span: `GET /certs/since/<seq>`.
    pub const ENDPOINT_CERTS: u32 = 6;
    /// `Request` span: `GET /trace/<id>`.
    pub const ENDPOINT_TRACE: u32 = 7;
    /// `Request` span: `GET /refine/<token>`.
    pub const ENDPOINT_REFINE: u32 = 8;
    /// `Request` span: anything else (404/405 surface).
    pub const ENDPOINT_OTHER: u32 = 0;

    /// `Obligation` span: answered by the closed-form Tier-0 bound.
    pub const OBLIGATION_CLOSED_FORM: u32 = 1;
    /// `Obligation` span: answered analytically (no SDP key).
    pub const OBLIGATION_ANALYTIC: u32 = 2;
    /// `Obligation` span: SDP cache hit.
    pub const OBLIGATION_CACHE_HIT: u32 = 3;
    /// `Obligation` span: joined another request's in-flight solve.
    pub const OBLIGATION_JOINED: u32 = 4;
    /// `Obligation` span: lead solve, warm-started from a donor dual.
    pub const OBLIGATION_LEAD_WARM: u32 = 5;
    /// `Obligation` span: lead solve, cold start.
    pub const OBLIGATION_LEAD_COLD: u32 = 6;
    /// `Obligation` span: uncached direct solve (cache bypassed).
    pub const OBLIGATION_BYPASS: u32 = 7;
    /// `Obligation` span: exact (unconstrained) diamond-norm unit.
    pub const OBLIGATION_EXACT: u32 = 8;

    /// The stable wire spelling of a detail code under a given name.
    pub fn as_str(name: super::SpanName, detail: u32) -> Option<&'static str> {
        use super::SpanName;
        match name {
            SpanName::Request => Some(match detail {
                ENDPOINT_ANALYZE => "analyze",
                ENDPOINT_BATCH => "batch",
                ENDPOINT_DIFF => "diff",
                ENDPOINT_HEALTHZ => "healthz",
                ENDPOINT_METRICS => "metrics",
                ENDPOINT_CERTS => "certs",
                ENDPOINT_TRACE => "trace",
                ENDPOINT_REFINE => "refine",
                _ => "other",
            }),
            SpanName::Obligation => Some(match detail {
                OBLIGATION_CLOSED_FORM => "closed_form",
                OBLIGATION_ANALYTIC => "analytic",
                OBLIGATION_CACHE_HIT => "cache_hit",
                OBLIGATION_JOINED => "inflight_join",
                OBLIGATION_LEAD_WARM => "lead_warm",
                OBLIGATION_LEAD_COLD => "lead_cold",
                OBLIGATION_BYPASS => "bypass",
                OBLIGATION_EXACT => "exact",
                _ => "unknown",
            }),
            _ => None,
        }
    }
}

/// One completed span, decoded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (process-unique, from [`crate::next_span_id`]).
    pub id: u32,
    /// The parent span's id (0 = a trace root).
    pub parent: u32,
    /// What the span measures.
    pub name: SpanName,
    /// Name-specific detail code (see [`detail`]).
    pub detail: u32,
    /// Name-specific value (e.g. pool queue-wait ns for obligations).
    pub value: u64,
    /// Name-specific secondary value (e.g. IP iterations).
    pub value2: u64,
    /// Start, ns since the telemetry epoch ([`crate::now_ns`]).
    pub start_ns: u64,
    /// End, ns since the telemetry epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 / 1e6
    }
}

const WORDS: usize = 7;
/// Per-thread ring capacity (slots). Must be a power of two. 1024 spans
/// comfortably covers the per-trace span count of a large analysis while
/// keeping the per-thread footprint at 64 KiB.
const RING_SLOTS: usize = 1024;

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A single-writer, multi-reader span ring (one per recording thread).
pub(crate) struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl SpanRing {
    fn new() -> SpanRing {
        SpanRing {
            slots: (0..RING_SLOTS).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn encode(rec: &SpanRecord) -> [u64; WORDS] {
        [
            rec.trace_id,
            (u64::from(rec.id) << 32) | u64::from(rec.parent),
            (u64::from(rec.name as u16) << 32) | u64::from(rec.detail),
            rec.value,
            rec.value2,
            rec.start_ns,
            rec.end_ns,
        ]
    }

    fn decode(words: &[u64; WORDS]) -> Option<SpanRecord> {
        let name = SpanName::from_u16((words[2] >> 32) as u16)?;
        Some(SpanRecord {
            trace_id: words[0],
            id: (words[1] >> 32) as u32,
            parent: words[1] as u32,
            name,
            detail: words[2] as u32,
            value: words[3],
            value2: words[4],
            start_ns: words[5],
            end_ns: words[6],
        })
    }

    /// Writes one record. Only the owning thread calls this (the ring is
    /// reached through a thread-local), which makes the slot a
    /// single-writer seqlock: odd stamp while writing, even when stable.
    fn push(&self, rec: &SpanRecord) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (RING_SLOTS - 1)];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(Self::encode(rec)) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        self.head.store(head.wrapping_add(1), Ordering::Relaxed);
    }

    /// Snapshots every stable slot whose trace id matches, skipping slots
    /// the writer is mid-update on (odd stamp, or stamp moved during the
    /// read).
    fn collect_into(&self, trace_id: u64, out: &mut Vec<SpanRecord>) {
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let mut words = [0u64; WORDS];
            for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue;
            }
            if words[0] != trace_id {
                continue;
            }
            if let Some(rec) = Self::decode(&words) {
                out.push(rec);
            }
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<SpanRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<SpanRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<SpanRing>> = const { std::cell::OnceCell::new() };
}

/// Records a span into this thread's ring (registering the ring on first
/// use; that one-time registration is the only lock this path can take).
pub(crate) fn record(rec: &SpanRecord) {
    LOCAL.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(SpanRing::new());
            registry()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        ring.push(rec);
    });
}

/// Collects every span recorded for `trace_id` across all thread rings,
/// sorted by start time (parents before children on ties).
pub(crate) fn collect(trace_id: u64) -> Vec<SpanRecord> {
    let rings: Vec<Arc<SpanRing>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = Vec::new();
    for ring in &rings {
        ring.collect_into(trace_id, &mut out);
    }
    out.sort_by_key(|r| (r.start_ns, r.id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64, id: u32, start_ns: u64) -> SpanRecord {
        SpanRecord {
            trace_id,
            id,
            parent: 0,
            name: SpanName::Plan,
            detail: 0,
            value: 0,
            value2: 0,
            start_ns,
            end_ns: start_ns + 10,
        }
    }

    #[test]
    fn ring_keeps_only_matching_traces() {
        let ring = SpanRing::new();
        ring.push(&rec(1, 10, 100));
        ring.push(&rec(2, 11, 200));
        ring.push(&rec(1, 12, 300));
        let mut out = Vec::new();
        ring.collect_into(1, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.trace_id == 1));
    }

    #[test]
    fn ring_wraps_and_overwrites_oldest() {
        let ring = SpanRing::new();
        for i in 0..(RING_SLOTS as u32 + 8) {
            ring.push(&rec(9, i, u64::from(i)));
        }
        let mut out = Vec::new();
        ring.collect_into(9, &mut out);
        assert_eq!(out.len(), RING_SLOTS);
        // The first 8 records were overwritten by the wrap.
        assert!(out.iter().all(|r| r.id >= 8));
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = SpanRecord {
            trace_id: 0xDEAD_BEEF_0123,
            id: 42,
            parent: 7,
            name: SpanName::Obligation,
            detail: detail::OBLIGATION_LEAD_WARM,
            value: 12345,
            value2: 678,
            start_ns: 1_000_000,
            end_ns: 2_500_000,
        };
        assert_eq!(SpanRing::decode(&SpanRing::encode(&r)), Some(r));
        assert!((r.wall_ms() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn collect_is_sorted_by_start() {
        let t = crate::next_trace_id();
        record(&rec(t, 2, 500));
        record(&rec(t, 1, 100));
        let got = collect(t);
        assert_eq!(got.len(), 2);
        assert!(got[0].start_ns <= got[1].start_ns);
    }
}
