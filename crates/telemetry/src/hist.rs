//! Fixed-boundary log-scale latency histograms.
//!
//! Boundaries are compiled in (4 per decade, 1 µs … 100 s), so recording
//! is a binary search plus three relaxed atomic adds — no locks, no
//! allocation, and safe to call from solver worker threads. Quantiles are
//! estimated by linear interpolation inside the target bucket, which makes
//! them exact to within one bucket boundary (≤ 78% relative error bound
//! from the 10^(1/4) bucket ratio; in practice much tighter).

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds in **milliseconds**: four per decade
/// (1, 10^0.25 ≈ 1.778, 10^0.5 ≈ 3.162, 10^0.75 ≈ 5.623) from 1 µs to
/// 100 s. Strictly increasing; an implicit +Inf bucket follows the last.
pub const LATENCY_BOUNDS_MS: &[f64] = &[
    0.001, 0.0017783, 0.0031623, 0.0056234, // 1 µs decade
    0.01, 0.017783, 0.031623, 0.056234, // 10 µs decade
    0.1, 0.17783, 0.31623, 0.56234, // 100 µs decade
    1.0, 1.7783, 3.1623, 5.6234, // 1 ms decade
    10.0, 17.783, 31.623, 56.234, // 10 ms decade
    100.0, 177.83, 316.23, 562.34, // 100 ms decade
    1000.0, 1778.3, 3162.3, 5623.4, // 1 s decade
    10000.0, 17783.0, 31623.0, 56234.0,  // 10 s decade
    100000.0, // 100 s
];

/// A concurrent fixed-boundary histogram. All mutation is relaxed-atomic;
/// reads are snapshots (each counter individually consistent, the set
/// approximately so — fine for monitoring, never fed back into analysis).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: Box<[AtomicU64]>,
    /// Sum of observed values in nanoseconds (ms × 1e6), so `_sum` stays
    /// an exact integer accumulator.
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over [`LATENCY_BOUNDS_MS`].
    pub fn latency() -> Histogram {
        Histogram::with_bounds(LATENCY_BOUNDS_MS)
    }

    /// A histogram over caller-provided strictly increasing upper bounds
    /// (milliseconds).
    pub fn with_bounds(bounds: &'static [f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket upper bounds (ms); the final +Inf bucket is implicit.
    pub fn bounds_ms(&self) -> &'static [f64] {
        self.bounds
    }

    /// Records one observation in milliseconds. Negative and non-finite
    /// values are clamped to 0 (they land in the first bucket and add
    /// nothing to the sum) so NaN/Inf can never leak into exposition.
    pub fn observe_ms(&self, ms: f64) {
        let ms = if ms.is_finite() && ms > 0.0 { ms } else { 0.0 };
        let idx = self.bounds.partition_point(|b| *b < ms);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add((ms * 1e6) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation from a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe_ms(d.as_secs_f64() * 1e3);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// A point-in-time copy of the per-bucket counts (non-cumulative),
    /// sum, and count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_ms: self.sum_ms(),
            count: self.count(),
        }
    }

    /// Estimated `q`-quantile (0 ≤ q ≤ 1) in milliseconds: linear
    /// interpolation inside the bucket holding the target rank. Returns
    /// 0.0 for an empty histogram.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.snapshot().quantile_ms(q)
    }
}

/// A point-in-time histogram copy, for rendering and quantile estimation.
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ms); the final +Inf bucket is implicit.
    pub bounds: &'static [f64],
    /// Per-bucket counts, `bounds.len() + 1` entries (last = +Inf).
    pub buckets: Vec<u64>,
    /// Sum of observations (ms).
    pub sum_ms: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile_ms`].
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                // The +Inf bucket has no upper bound: report its lower
                // boundary (conservative; nothing finite to interpolate
                // toward).
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    return lo;
                };
                let into = (rank - cum as f64) / n as f64;
                return lo + (hi - lo) * into.clamp(0.0, 1.0);
            }
            cum = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing() {
        assert!(LATENCY_BOUNDS_MS.windows(2).all(|w| w[0] < w[1]));
        // Log-scale: each decade boundary is present.
        for d in [0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0] {
            assert!(LATENCY_BOUNDS_MS.contains(&d), "missing decade {d}");
        }
    }

    #[test]
    fn sum_and_count_are_consistent() {
        let h = Histogram::latency();
        let values = [0.002, 0.5, 0.5, 3.0, 42.0, 950.0];
        for v in values {
            h.observe_ms(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        let exact: f64 = values.iter().sum();
        assert!(
            (h.sum_ms() - exact).abs() < 1e-3,
            "sum {} vs exact {exact}",
            h.sum_ms()
        );
        // Bucket counts add up to the observation count.
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn non_finite_and_negative_observations_cannot_poison() {
        let h = Histogram::latency();
        h.observe_ms(f64::NAN);
        h.observe_ms(f64::INFINITY);
        h.observe_ms(f64::NEG_INFINITY);
        h.observe_ms(-5.0);
        assert_eq!(h.count(), 4);
        assert!(h.sum_ms().is_finite());
        assert_eq!(h.sum_ms(), 0.0);
        assert!(h.quantile_ms(0.99).is_finite());
    }

    /// Quantile estimates land within one bucket boundary of the exact
    /// order statistic on seeded data.
    #[test]
    fn quantiles_are_within_one_bucket_of_exact() {
        // Deterministic pseudo-random-ish spread over four decades.
        let mut values: Vec<f64> = (1..=500)
            .map(|i| {
                let x = f64::from(i);
                0.01 * (1.0 + (x * 0.7919).fract() * 9.0) * 10f64.powi((i % 4) as i32)
            })
            .collect();
        let h = Histogram::latency();
        for &v in &values {
            h.observe_ms(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.95, 0.99] {
            let est = h.quantile_ms(q);
            let exact = values[(((values.len() - 1) as f64) * q).round() as usize];
            // The estimate must fall within the bucket adjacent to the
            // bucket containing the exact value.
            let idx_exact = LATENCY_BOUNDS_MS.partition_point(|b| *b < exact);
            let lo = if idx_exact == 0 {
                0.0
            } else {
                LATENCY_BOUNDS_MS[idx_exact - 1]
            };
            let hi = LATENCY_BOUNDS_MS
                .get(idx_exact + 1)
                .copied()
                .unwrap_or(f64::INFINITY);
            assert!(
                est >= lo && est <= hi,
                "q={q}: estimate {est} outside [{lo}, {hi}] around exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::latency().quantile_ms(0.5), 0.0);
    }
}
