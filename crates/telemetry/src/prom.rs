//! Prometheus text exposition, format v0.0.4.
//!
//! Tiny append-style renderer used by the server's
//! `GET /metrics?format=prometheus`. Follows the format rules that
//! matter for scrapers: one `# HELP`/`# TYPE` pair per metric family,
//! backslash-escaped label values, cumulative monotone histogram
//! `_bucket` series ending in `le="+Inf"`, and — mirroring the repo's
//! `jsonfmt` policy for JSON — NaN/±Inf never leak into a sample value
//! (non-finite renders as 0).

use crate::hist::HistogramSnapshot;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a sample value. Finite values use the shortest round-trip
/// float spelling; non-finite values render as `0` (the `jsonfmt`
/// non-finite policy, adapted: JSON gets `null`, exposition gets a
/// harmless zero because the format has no null).
pub fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders one counter family with any number of labeled series.
pub fn counter(out: &mut String, name: &str, help: &str, series: &[(&[(&str, &str)], u64)]) {
    header(out, name, help, "counter");
    for (labels, v) in series {
        out.push_str(&format!("{name}{} {v}\n", fmt_labels(labels)));
    }
}

/// Renders one gauge family with any number of labeled series.
pub fn gauge(out: &mut String, name: &str, help: &str, series: &[(&[(&str, &str)], f64)]) {
    header(out, name, help, "gauge");
    for (labels, v) in series {
        out.push_str(&format!("{name}{} {}\n", fmt_labels(labels), fmt_value(*v)));
    }
}

/// Renders one histogram family. Bucket bounds are converted from the
/// snapshot's milliseconds to **seconds** (the Prometheus base unit);
/// `_bucket` counts are cumulative and end with the `le="+Inf"` total.
pub fn histogram(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(&[(&str, &str)], HistogramSnapshot)],
) {
    header(out, name, help, "histogram");
    for (labels, snap) in series {
        let mut cum = 0u64;
        for (i, n) in snap.buckets.iter().enumerate() {
            cum += n;
            let le = match snap.bounds.get(i) {
                Some(b) => fmt_value(b / 1e3),
                None => "+Inf".to_string(),
            };
            let mut all = labels.to_vec();
            all.push(("le", le.as_str()));
            out.push_str(&format!("{name}_bucket{} {cum}\n", fmt_labels(&all)));
        }
        let base = fmt_labels(labels);
        out.push_str(&format!(
            "{name}_sum{base} {}\n",
            fmt_value(snap.sum_ms / 1e3)
        ));
        out.push_str(&format!("{name}_count{base} {}\n", snap.count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn label_escaping_covers_the_specials() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn non_finite_values_never_leak() {
        assert_eq!(fmt_value(f64::NAN), "0");
        assert_eq!(fmt_value(f64::INFINITY), "0");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "0");
        assert_eq!(fmt_value(1.5), "1.5");
        let mut out = String::new();
        gauge(&mut out, "g", "help", &[(&[], f64::NAN)]);
        assert!(out.contains("g 0\n"));
        assert!(!out.contains("NaN") && !out.to_lowercase().contains("inf"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_and_end_at_inf() {
        let h = Histogram::latency();
        for v in [0.002, 0.5, 0.5, 3.0, 42.0, 950.0, 1e9] {
            h.observe_ms(v);
        }
        let mut out = String::new();
        histogram(
            &mut out,
            "req_seconds",
            "request latency",
            &[(&[("endpoint", "analyze")], h.snapshot())],
        );
        let mut prev = 0u64;
        let mut saw_inf = false;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= prev, "non-monotone bucket line: {line}");
            prev = count;
            if line.contains("le=\"+Inf\"") {
                saw_inf = true;
                assert_eq!(count, h.count());
            }
        }
        assert!(saw_inf, "missing +Inf bucket: {out}");
        assert!(out.contains("req_seconds_count{endpoint=\"analyze\"} 7"));
        assert!(out.contains("# TYPE req_seconds histogram"));
    }

    #[test]
    fn counter_and_gauge_render_labeled_series() {
        let mut out = String::new();
        counter(
            &mut out,
            "requests_total",
            "total",
            &[
                (&[("endpoint", "analyze")], 3),
                (&[("endpoint", "diff")], 1),
            ],
        );
        gauge(&mut out, "up", "1 if up", &[(&[], 1.0)]);
        assert!(out.contains("requests_total{endpoint=\"analyze\"} 3"));
        assert!(out.contains("requests_total{endpoint=\"diff\"} 1"));
        assert!(out.contains("\nup 1\n"));
    }
}
