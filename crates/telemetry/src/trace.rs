//! Completed traces: a bounded in-memory store plus span-tree rendering
//! (JSON for `GET /trace/<id>`, indented text for `gleipnir analyze
//! --trace`).

use crate::span::{detail, SpanName, SpanRecord};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One completed trace: every span collected for a trace id, sorted by
/// start time.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The trace id (also the `X-Trace-Id` the response carried).
    pub trace_id: u64,
    /// All spans, sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
}

/// One node of the rendered span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span at this node.
    pub record: SpanRecord,
    /// Child spans (those whose `parent` is this span's id), in start
    /// order.
    pub children: Vec<SpanNode>,
}

impl Trace {
    /// Wall time of the whole trace in ms: earliest start to latest end.
    pub fn wall_ms(&self) -> f64 {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        end.saturating_sub(start) as f64 / 1e6
    }

    /// Builds the span tree. Spans whose parent was not collected (e.g.
    /// overwritten in a ring) surface as additional roots rather than
    /// disappearing.
    pub fn tree(&self) -> Vec<SpanNode> {
        // Two passes over the start-sorted spans: index children per
        // parent id, then emit roots recursively.
        fn build(spans: &[SpanRecord], parent: u32, ids: &[u32]) -> Vec<SpanNode> {
            spans
                .iter()
                .filter(|s| s.parent == parent || (parent == 0 && !ids.contains(&s.parent)))
                .map(|s| SpanNode {
                    record: *s,
                    children: build(spans, s.id, ids),
                })
                .collect()
        }
        let ids: Vec<u32> = self.spans.iter().map(|s| s.id).collect();
        build(&self.spans, 0, &ids)
    }

    /// The trace as the `/trace/<id>` JSON document:
    ///
    /// ```json
    /// {"trace_id":"…16 hex…","wall_ms":12.345,"spans":[
    ///   {"name":"request","id":1,"start_ms":0.0,"wall_ms":12.3,
    ///    "detail":"analyze","children":[…]}]}
    /// ```
    ///
    /// `start_ms` is relative to the trace start. Obligation spans add
    /// `"wait_ms"` (pool queue wait) and `"iterations"`.
    pub fn to_json(&self) -> String {
        let t0 = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        fn node_json(n: &SpanNode, t0: u64) -> String {
            let r = &n.record;
            let mut fields = vec![
                format!("\"name\":\"{}\"", r.name.as_str()),
                format!("\"id\":{}", r.id),
                format!(
                    "\"start_ms\":{:.3}",
                    r.start_ns.saturating_sub(t0) as f64 / 1e6
                ),
                format!("\"wall_ms\":{:.3}", r.wall_ms()),
            ];
            if let Some(d) = detail::as_str(r.name, r.detail) {
                fields.push(format!("\"detail\":\"{d}\""));
            }
            if r.name == SpanName::Obligation {
                fields.push(format!("\"wait_ms\":{:.3}", r.value as f64 / 1e6));
                fields.push(format!("\"iterations\":{}", r.value2));
            }
            let children: Vec<String> = n.children.iter().map(|c| node_json(c, t0)).collect();
            fields.push(format!("\"children\":[{}]", children.join(",")));
            format!("{{{}}}", fields.join(","))
        }
        let roots: Vec<String> = self.tree().iter().map(|n| node_json(n, t0)).collect();
        format!(
            "{{\"trace_id\":\"{}\",\"wall_ms\":{:.3},\"spans\":[{}]}}",
            crate::format_trace_id(self.trace_id),
            self.wall_ms(),
            roots.join(",")
        )
    }

    /// The trace as an indented text tree for the CLI.
    pub fn render_text(&self) -> String {
        fn node_text(out: &mut String, n: &SpanNode, depth: usize) {
            let r = &n.record;
            let indent = "  ".repeat(depth);
            let detail = detail::as_str(r.name, r.detail)
                .map(|d| format!(" [{d}]"))
                .unwrap_or_default();
            let extra = if r.name == SpanName::Obligation {
                format!(
                    " (wait {:.3} ms, {} iterations)",
                    r.value as f64 / 1e6,
                    r.value2
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{indent}{}{detail}  {:.3} ms{extra}\n",
                r.name.as_str(),
                r.wall_ms()
            ));
            for c in &n.children {
                node_text(out, c, depth + 1);
            }
        }
        let mut out = format!(
            "trace {}  ({:.3} ms, {} spans)\n",
            crate::format_trace_id(self.trace_id),
            self.wall_ms(),
            self.spans.len()
        );
        for root in &self.tree() {
            node_text(&mut out, root, 1);
        }
        out
    }
}

/// A bounded ring of recently completed traces, oldest evicted first.
pub struct TraceStore {
    capacity: usize,
    traces: Mutex<VecDeque<Trace>>,
}

impl TraceStore {
    /// A store keeping the most recent `capacity` traces.
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity: capacity.max(1),
            traces: Mutex::new(VecDeque::new()),
        }
    }

    /// Stores a completed trace (evicting the oldest when full). Empty
    /// span sets are stored too, so `/trace/<id>` can distinguish "no
    /// spans survived" from "unknown id".
    pub fn push(&self, trace_id: u64, spans: Vec<SpanRecord>) {
        let mut traces = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        if traces.len() == self.capacity {
            traces.pop_front();
        }
        traces.push_back(Trace { trace_id, spans });
    }

    /// Looks up a stored trace by id.
    pub fn get(&self, trace_id: u64) -> Option<Trace> {
        self.traces
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, parent: u32, name: SpanName, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 1,
            id,
            parent,
            name,
            detail: 0,
            value: 0,
            value2: 0,
            start_ns,
            end_ns,
        }
    }

    fn sample() -> Trace {
        Trace {
            trace_id: 0xabc,
            spans: vec![
                rec(1, 0, SpanName::Request, 0, 10_000_000),
                rec(2, 1, SpanName::QueueWait, 0, 1_000_000),
                rec(3, 1, SpanName::Handler, 1_000_000, 10_000_000),
                rec(4, 3, SpanName::Plan, 1_000_000, 2_000_000),
            ],
        }
    }

    #[test]
    fn tree_nests_by_parent_ids() {
        let t = sample();
        let roots = t.tree();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 2);
        assert_eq!(roots[0].children[1].children.len(), 1);
        assert_eq!(roots[0].children[1].children[0].record.name, SpanName::Plan);
    }

    #[test]
    fn orphaned_spans_surface_as_roots() {
        let mut t = sample();
        t.spans.push(rec(9, 999, SpanName::Solve, 5, 6));
        assert_eq!(t.tree().len(), 2);
    }

    #[test]
    fn json_has_ids_walls_and_nesting() {
        let json = sample().to_json();
        assert!(json.contains("\"trace_id\":\"0000000000000abc\""));
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"wall_ms\":10.000"));
        assert!(json.contains("\"children\":[")); // nested, not flat
    }

    #[test]
    fn text_tree_indents_children() {
        let text = sample().render_text();
        assert!(text.contains("trace 0000000000000abc"));
        assert!(text.contains("\n  request"));
        assert!(text.contains("\n      plan"));
    }

    #[test]
    fn store_is_bounded_and_keeps_latest() {
        let store = TraceStore::new(2);
        store.push(1, Vec::new());
        store.push(2, Vec::new());
        store.push(3, Vec::new());
        assert!(store.get(1).is_none(), "oldest evicted");
        assert!(store.get(2).is_some() && store.get(3).is_some());
    }
}
