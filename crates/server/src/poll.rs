//! Readiness polling for the reactor, without any external crates.
//!
//! `std` exposes non-blocking sockets but no readiness API, so on Unix we
//! declare libc's classic `poll(2)` ourselves (the C library is already
//! linked — same trick as `signal.rs`). The reactor hands us every socket
//! it cares about, we sleep in the kernel until one is readable/writable
//! or the timeout elapses, and it then services exactly the ready ones.
//!
//! On non-Unix platforms there is no readiness source, so [`wait`]
//! degrades to a bounded sleep and reports *everything* ready — all
//! reactor I/O is non-blocking, so the cost is wasted `WouldBlock` probes
//! (latency and CPU, never correctness).

/// One socket's poll registration: which events the reactor wants, and
/// (after [`wait`]) which fired.
#[derive(Clone, Copy, Debug, Default)]
pub struct Interest {
    /// Wait for readability.
    pub read: bool,
    /// Wait for writability.
    pub write: bool,
    /// Out: the socket is readable (or has pending error/hangup — reads
    /// will observe it).
    pub readable: bool,
    /// Out: the socket is writable.
    pub writable: bool,
}

impl Interest {
    /// An interest set asking for read readiness.
    pub fn read() -> Interest {
        Interest {
            read: true,
            ..Interest::default()
        }
    }
}

/// What [`wait`] identifies a socket by: a raw fd on Unix, nothing on the
/// sleep-based fallback.
#[cfg(unix)]
pub type Token = std::os::unix::io::RawFd;
/// Fallback token (no readiness source to hand an fd to).
#[cfg(not(unix))]
pub type Token = ();

/// The poll token of a stream.
#[cfg(unix)]
pub fn stream_token(s: &std::net::TcpStream) -> Token {
    std::os::unix::io::AsRawFd::as_raw_fd(s)
}
/// The poll token of a listener.
#[cfg(unix)]
pub fn listener_token(l: &std::net::TcpListener) -> Token {
    std::os::unix::io::AsRawFd::as_raw_fd(l)
}
/// Fallback stream token.
#[cfg(not(unix))]
pub fn stream_token(_s: &std::net::TcpStream) -> Token {}
/// Fallback listener token.
#[cfg(not(unix))]
pub fn listener_token(_l: &std::net::TcpListener) -> Token {}

#[cfg(unix)]
mod sys {
    use super::Interest;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Kernel-backed wait; fills the `readable`/`writable` outputs.
    pub fn wait(fds: &[RawFd], interests: &mut [Interest], timeout_ms: u64) {
        debug_assert_eq!(fds.len(), interests.len());
        let mut pollfds: Vec<PollFd> = fds
            .iter()
            .zip(interests.iter())
            .map(|(&fd, i)| PollFd {
                fd,
                events: if i.read { POLLIN } else { 0 } | if i.write { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let timeout = timeout_ms.min(i32::MAX as u64) as c_int;
        let rc = if pollfds.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms));
            0
        } else {
            unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as c_ulong, timeout) }
        };
        if rc <= 0 {
            // Timeout or EINTR: nothing ready; the reactor's own clock
            // handles deadlines.
            return;
        }
        for (pfd, interest) in pollfds.iter().zip(interests.iter_mut()) {
            // Error/hangup conditions surface as readability so the next
            // read observes EOF or the error and the connection is reaped.
            interest.readable = pfd.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0;
            interest.writable = pfd.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0;
        }
    }
}

#[cfg(unix)]
pub use sys::wait;

/// Fallback for platforms without `poll(2)`: bounded sleep, then claim
/// everything ready and let the non-blocking I/O sort it out.
#[cfg(not(unix))]
pub fn wait(_fds: &[Token], interests: &mut [Interest], timeout_ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(timeout_ms.min(5)));
    for interest in interests.iter_mut() {
        interest.readable = interest.read;
        interest.writable = interest.write;
    }
}
