//! A minimal, dependency-free JSON parser for request bodies.
//!
//! The workspace builds offline (no serde), and the server's wire surface
//! is a handful of flat objects, so a small recursive-descent parser is the
//! whole story. It accepts RFC 8259 JSON (objects, arrays, strings with
//! escapes incl. `\uXXXX` surrogate pairs, numbers, booleans, null) with a
//! nesting-depth cap so adversarial bodies cannot blow the stack.
//!
//! Output formatting lives in [`gleipnir_core::jsonfmt`] — this module is
//! the input half.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum object/array nesting depth accepted from the wire.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic; duplicate keys
    /// keep the last occurrence (matching common parsers).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` for other variants or absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the offending byte offset.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if width == 0 || end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_analyze_body() {
        let v = parse(r#"{"source":"qubits 1;\nh q0;","width":8,"cache":true}"#).unwrap();
        assert_eq!(v.get("source").unwrap().as_str(), Some("qubits 1;\nh q0;"));
        assert_eq!(v.get("width").unwrap().as_usize(), Some(8));
        assert_eq!(v.get("cache").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_arrays_numbers_null() {
        let v = parse(r#"[1, -2.5e-3, null, [true, "x"]]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5e-3));
        assert_eq!(items[2], Json::Null);
        assert_eq!(items[3].as_array().unwrap()[1].as_str(), Some("x"));
    }

    #[test]
    fn decodes_escapes_and_surrogates() {
        let v = parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "01x",
            "\"\\q\"",
            "\"raw\u{1}control\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn depth_cap_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }
}
