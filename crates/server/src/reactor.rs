//! The event-driven transport: one non-blocking reactor thread owning
//! every connection, feeding parsed requests to the worker pool.
//!
//! ## Dataflow
//!
//! ```text
//!            poll(2) readiness
//!                  │
//!   accept ──► Conn {read buf ── parse ──► JobQueue ──► workers}
//!                  ▲                                      │
//!                  └── write buf ◄── Completion ◄── Waker ┘
//! ```
//!
//! The reactor never blocks on a socket: reads, writes, and accepts are
//! all non-blocking, and the loop sleeps in `poll(2)` until something is
//! ready or the nearest deadline expires. A slow or malicious client
//! therefore costs one connection slot and some buffer space — never a
//! thread. Workers never touch sockets: they pop a fully parsed request,
//! run the handler, and hand the fully framed response bytes back through
//! the completion bin (plus a waker nudge so the reactor picks them up
//! immediately).
//!
//! ## Connection state machine
//!
//! * **reading** — accumulate bytes; a whole-request deadline (armed at
//!   accept for the first request, re-armed when the next pipelined
//!   request starts) maps a stall to `408`. Oversized heads/bodies map to
//!   `413`, unparseable bytes to `400`.
//! * **inflight** — exactly one request per connection is ever dispatched
//!   at a time (pipelined successors wait in the buffer, preserving
//!   response order by construction — responses can never interleave, so
//!   none is ever torn).
//! * **flushing** — response bytes drain through the write buffer as the
//!   socket accepts them.
//! * **draining** — after a close-worthy response is flushed, the read
//!   side is consumed (bounded by a grace period) before the socket
//!   drops, so the response is never RST'd out of the client's receive
//!   buffer by unread request bytes.
//!
//! Load shedding happens at accept: past the configured serving capacity
//! (`workers + queue_capacity`) a new connection gets a pre-framed `429`
//! and is never read from; past [`MAX_SHED_CONNS`] concurrent sheds it is
//! dropped outright (hard shed — bounded, honest backpressure).

use crate::http::{self, HttpRequest, Parse, ParseError};
use crate::poll::{self, Interest};
use crate::server::Shared;
use crate::wire;
use gleipnir_core::{PriorityClass, QuotaPermit, SchedulerDepths};
use gleipnir_telemetry as telemetry;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Concurrent `429` responders kept alive at once; beyond this, overflow
/// connections are dropped without a response (a hard shed). Bounds both
/// fd count and memory under an accept storm.
const MAX_SHED_CONNS: usize = 64;

/// Cap on a connection's unparsed request backlog. A pipelining client
/// past this stops being read (TCP backpressure) until responses drain
/// the buffer — bounded memory per connection.
const PIPELINE_BUF_CAP: usize = 256 * 1024;

/// Per-read scratch size.
const READ_CHUNK: usize = 16 * 1024;

/// How long a closed connection's unread input is drained before the
/// socket drops (prevents the response being RST'd away).
const DRAIN_GRACE: Duration = Duration::from_millis(500);

/// Hard cap on the graceful-shutdown drain (in-flight analyses may run
/// long; this only bounds the *socket* tail once workers are done).
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Longest the reactor sleeps in `poll(2)` with nothing to do.
const POLL_MAX_MS: u64 = 50;

/// A parsed request waiting for (or being served by) a worker.
pub(crate) struct Job {
    /// Which connection the response belongs to.
    pub conn: u64,
    /// The parsed request.
    pub request: HttpRequest,
    /// The scheduling class this request is queued under (`/batch` is
    /// batch traffic; everything else is interactive).
    pub class: PriorityClass,
    /// The tenant's quota slot for this request; never read — held so
    /// that dropping the job (after the response is framed) releases it.
    #[allow(dead_code)]
    pub permit: Option<QuotaPermit>,
    /// Whether the response should keep the connection open.
    pub keep_alive: bool,
    /// Trace id minted at parse time (echoed as `X-Trace-Id`).
    pub trace_id: u64,
    /// The root request-span id; the parse span is already recorded under
    /// it, the worker adds queue-wait and handler children.
    pub root_span: u32,
    /// When the reactor started parsing this request — the root span's
    /// start ([`gleipnir_telemetry::now_ns`] timebase).
    pub parse_start_ns: u64,
    /// When the job entered the queue (queue-wait span start).
    pub enqueued_ns: u64,
}

/// Deque index of a priority class (drain order: interactive first).
fn class_index(class: PriorityClass) -> usize {
    match class {
        PriorityClass::Interactive => 0,
        PriorityClass::Refinement => 1,
        PriorityClass::Batch => 2,
    }
}

/// The reactor → workers request queue: one FIFO per priority class,
/// drained interactive > refinement > batch — a saturating batch tenant
/// queues behind *every* waiting interactive request, not in front of it.
/// Unbounded as a data structure — admission control happens at accept
/// (connection cap) plus per-tenant quotas, and each connection
/// contributes at most one in-flight job, so the queue is bounded by the
/// connection cap by construction.
pub(crate) struct JobQueue {
    inner: Mutex<[VecDeque<Job>; 3]>,
    ready: Condvar,
}

impl JobQueue {
    pub(crate) fn new() -> Self {
        JobQueue {
            inner: Mutex::new([VecDeque::new(), VecDeque::new(), VecDeque::new()]),
            ready: Condvar::new(),
        }
    }

    pub(crate) fn push(&self, job: Job) {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        q[class_index(job.class)].push_back(job);
        drop(q);
        self.ready.notify_one();
    }

    /// Current total depth (for `/metrics` and `/healthz`).
    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(VecDeque::len)
            .sum()
    }

    /// Current per-class depths (the `queue_depth{class=…}` gauges).
    pub(crate) fn depths(&self) -> SchedulerDepths {
        let q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        SchedulerDepths {
            interactive: q[0].len(),
            refinement: q[1].len(),
            batch: q[2].len(),
        }
    }

    /// Pops the highest-priority waiting job; `None` once shutdown is
    /// requested **and** the queue is drained (already-parsed requests
    /// still get served).
    pub(crate) fn pop(&self, shutdown: &std::sync::atomic::AtomicBool) -> Option<Job> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = q.iter_mut().find_map(VecDeque::pop_front) {
                return Some(job);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    pub(crate) fn notify_all(&self) {
        self.ready.notify_all();
    }
}

/// A worker's finished response, headed back to the reactor.
pub(crate) struct Completion {
    /// Destination connection.
    pub conn: u64,
    /// Fully framed response bytes.
    pub bytes: Vec<u8>,
    /// Close after flushing (the request asked for it, or shutdown).
    pub close: bool,
}

/// Wakes the reactor out of `poll(2)`: a loopback socket pair acting as a
/// self-pipe (std has no portable pipe). Non-blocking on both ends — a
/// full wake buffer just means wakeups are already pending.
pub(crate) struct Waker {
    tx: TcpStream,
}

impl Waker {
    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

/// Builds the waker pair: the send half for workers/handles, the receive
/// half for the reactor's poll set.
pub(crate) fn waker_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// One connection's reactor-side state.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Pending response bytes (`out_pos` already written).
    out: Vec<u8>,
    out_pos: usize,
    /// A request from this connection sits in the job queue or a worker.
    inflight: bool,
    /// Responses completed on this connection (keep-alive reuse count).
    served: usize,
    /// Whole-request read deadline → `408`.
    deadline: Option<Instant>,
    /// Keep-alive idle deadline → silent close (only after ≥ 1 response).
    idle_deadline: Option<Instant>,
    /// Post-close input drain deadline.
    draining_until: Option<Instant>,
    /// No more requests will be parsed (error answered, shed, or closing).
    reading_dead: bool,
    /// Close the socket once the write buffer flushes.
    close_after_flush: bool,
    /// The peer half-closed its send side.
    eof: bool,
    /// This connection was shed with a `429` at accept.
    shed: bool,
    /// Remove at end of tick.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            inflight: false,
            served: 0,
            deadline: None,
            idle_deadline: None,
            draining_until: None,
            reading_dead: false,
            close_after_flush: false,
            eof: false,
            shed: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    /// Whether the poll set should watch this socket for readability.
    fn wants_read(&self) -> bool {
        if self.dead || self.eof {
            return false;
        }
        if self.draining_until.is_some() {
            return true;
        }
        !self.reading_dead && self.buf.len() < PIPELINE_BUF_CAP
    }

    /// Queues a terminal JSON response: answer, then close (with drain).
    fn enqueue_close_response(&mut self, status: u16, message: &str) {
        self.out.extend_from_slice(&http::json_response(
            status,
            &wire::error_json(message),
            false,
        ));
        self.reading_dead = true;
        self.close_after_flush = true;
        self.deadline = None;
        self.idle_deadline = None;
        self.buf.clear();
    }
}

/// The reactor: runs on its own thread until shutdown completes.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    listener: TcpListener,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_id: u64,
}

/// What a poll-set slot refers to.
enum Slot {
    Listener,
    Waker,
    Conn(u64),
}

impl Reactor {
    pub(crate) fn new(shared: Arc<Shared>, listener: TcpListener, wake_rx: TcpStream) -> Reactor {
        let _ = listener.set_nonblocking(true);
        Reactor {
            shared,
            listener,
            wake_rx,
            conns: HashMap::new(),
            next_id: 0,
        }
    }

    /// The event loop. Returns once shutdown was requested and every
    /// connection has drained (or the shutdown grace period expired).
    pub(crate) fn run(mut self) {
        let mut shutdown_grace: Option<Instant> = None;
        loop {
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            if shutting_down && shutdown_grace.is_none() {
                shutdown_grace = Some(Instant::now() + SHUTDOWN_GRACE);
            }
            if shutting_down
                && (self.conns.is_empty() || shutdown_grace.is_some_and(|t| Instant::now() >= t))
            {
                return;
            }
            self.tick(shutting_down);
        }
    }

    fn tick(&mut self, shutting_down: bool) {
        self.apply_completions();
        if shutting_down {
            // Idle connections (nothing in flight, nothing to flush) are
            // closed; in-flight analyses finish and flush first.
            for conn in self.conns.values_mut() {
                if !conn.inflight && conn.flushed() {
                    conn.dead = true;
                }
            }
        }
        self.reap();

        // Build the poll set.
        let mut fds: Vec<poll::Token> = Vec::with_capacity(self.conns.len() + 2);
        let mut interests: Vec<Interest> = Vec::with_capacity(self.conns.len() + 2);
        let mut slots: Vec<Slot> = Vec::with_capacity(self.conns.len() + 2);
        if !shutting_down {
            fds.push(poll::listener_token(&self.listener));
            interests.push(Interest::read());
            slots.push(Slot::Listener);
        }
        fds.push(poll::stream_token(&self.wake_rx));
        interests.push(Interest::read());
        slots.push(Slot::Waker);
        for (&id, conn) in &self.conns {
            let interest = Interest {
                read: conn.wants_read(),
                write: !conn.flushed(),
                ..Interest::default()
            };
            if interest.read || interest.write {
                fds.push(poll::stream_token(&conn.stream));
                interests.push(interest);
                slots.push(Slot::Conn(id));
            }
        }

        poll::wait(&fds, &mut interests, self.poll_timeout());

        for (slot, interest) in slots.into_iter().zip(interests.iter()) {
            match slot {
                Slot::Listener if interest.readable => self.accept_ready(),
                Slot::Waker if interest.readable => self.drain_waker(),
                Slot::Conn(id) => {
                    if interest.readable {
                        self.handle_read(id);
                    }
                    if interest.writable {
                        self.handle_write(id);
                    }
                }
                _ => {}
            }
        }

        self.check_deadlines();
        self.reap();
    }

    /// Nearest deadline across all connections, bounded to
    /// [`POLL_MAX_MS`] so shutdown and completions are always noticed.
    fn poll_timeout(&self) -> u64 {
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        let mut fold = |t: Option<Instant>| {
            if let Some(t) = t {
                next = Some(match next {
                    Some(n) => n.min(t),
                    None => t,
                });
            }
        };
        for conn in self.conns.values() {
            fold(conn.deadline);
            fold(conn.idle_deadline);
            fold(conn.draining_until);
        }
        match next {
            Some(t) => (t.saturating_duration_since(now).as_millis() as u64).min(POLL_MAX_MS),
            None => POLL_MAX_MS,
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => return, // waker hung up (only during teardown)
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared
                        .metrics
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let serving = self.conns.values().filter(|c| !c.shed && !c.dead).count();
                    if serving >= self.shared.max_serving_conns() {
                        self.shared
                            .metrics
                            .shed_total
                            .fetch_add(1, Ordering::Relaxed);
                        let shed = self.conns.values().filter(|c| c.shed && !c.dead).count();
                        if shed >= MAX_SHED_CONNS {
                            // Hard shed: drop without a response. Under this
                            // much pressure a closed socket is still bounded,
                            // honest backpressure.
                            continue;
                        }
                        // Unified accounting: the 429 is a response the
                        // server generated, so it counts as a request and
                        // an error — overload is visible in dashboard
                        // rates, not just in `shed_total`. (Hard sheds
                        // above produce no response and count in
                        // `shed_total` only.)
                        self.shared
                            .metrics
                            .requests_total
                            .fetch_add(1, Ordering::Relaxed);
                        self.shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
                        let mut conn = Conn::new(stream);
                        conn.shed = true;
                        conn.enqueue_close_response(
                            429,
                            "server overloaded: accept queue full, retry later",
                        );
                        let id = self.insert(conn);
                        self.handle_write(id);
                    } else {
                        let mut conn = Conn::new(stream);
                        // The whole-request deadline for the first request
                        // starts at accept — a client that connects and
                        // stalls (or trickles) is cut off at exactly
                        // `read_timeout`, same as a mid-request stall.
                        conn.deadline = Some(Instant::now() + self.shared.config.read_timeout);
                        self.insert(conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (EMFILE, …): stop for this tick
                // instead of spinning; poll will offer the listener again.
                Err(_) => return,
            }
        }
    }

    fn insert(&mut self, conn: Conn) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.conns.insert(id, conn);
        id
    }

    fn apply_completions(&mut self) {
        let completions: Vec<Completion> = {
            let mut bin = self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *bin)
        };
        for completion in completions {
            let Some(conn) = self.conns.get_mut(&completion.conn) else {
                continue; // connection died while the worker ran
            };
            conn.out.extend_from_slice(&completion.bytes);
            conn.inflight = false;
            conn.served += 1;
            conn.deadline = None;
            if completion.close {
                conn.reading_dead = true;
                conn.close_after_flush = true;
            }
            let id = completion.conn;
            if !completion.close {
                // Pipelining: the next request may already be buffered.
                self.advance(id);
            }
            self.handle_write(id);
        }
    }

    fn handle_read(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.reading_dead || conn.draining_until.is_some() {
                        // Draining: consume and discard (bounded by the
                        // drain deadline).
                        continue;
                    }
                    conn.buf.extend_from_slice(&chunk[..n]);
                    if conn.buf.len() >= PIPELINE_BUF_CAP {
                        break; // backpressure: stop reading until drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    self.shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        if conn.draining_until.is_some() && conn.eof {
            conn.dead = true;
            return;
        }
        self.advance(id);
    }

    /// Parses and dispatches whatever complete requests sit at the front
    /// of the buffer (one in flight at a time; successors wait).
    fn advance(&mut self, id: u64) {
        let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.dead || conn.reading_dead {
            return;
        }
        while !conn.inflight {
            if conn.buf.is_empty() {
                if conn.eof {
                    // Clean end of a connection (possibly after its last
                    // response is still flushing).
                    if conn.flushed() {
                        conn.dead = true;
                    } else {
                        conn.close_after_flush = true;
                    }
                } else if conn.served > 0 && conn.idle_deadline.is_none() {
                    // Keep-alive idle: close silently if unused too long.
                    conn.idle_deadline =
                        Some(Instant::now() + self.shared.config.keepalive_timeout);
                }
                return;
            }
            conn.idle_deadline = None;
            let parse_t0 = telemetry::now_ns();
            match http::parse_request(&conn.buf, self.shared.config.max_body_bytes) {
                Parse::Incomplete => {
                    if conn.deadline.is_none() {
                        conn.deadline = Some(Instant::now() + self.shared.config.read_timeout);
                    }
                    if conn.eof {
                        // Mid-request disconnect: nobody left to answer.
                        self.shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
                        conn.dead = true;
                    }
                    return;
                }
                Parse::Request {
                    request,
                    consumed,
                    keep_alive,
                } => {
                    conn.buf.drain(..consumed);
                    conn.deadline = None;
                    // Batch bodies are the heavy, deprioritizable traffic;
                    // everything else (analyze, refine polls, metrics)
                    // rides the interactive class.
                    let class = if request.path.starts_with("/batch") {
                        PriorityClass::Batch
                    } else {
                        PriorityClass::Interactive
                    };
                    // Per-tenant admission: a tenant past its quota for
                    // this class gets an immediate 429 (keep-alive
                    // preserved — `framed` adds `Retry-After`) and the
                    // connection moves on to its next pipelined request.
                    let tenant = request.tenant.clone().unwrap_or_default();
                    let permit = match self.shared.quotas.try_admit(&tenant, class) {
                        Some(permit) => permit,
                        None => {
                            self.shared
                                .metrics
                                .requests_total
                                .fetch_add(1, Ordering::Relaxed);
                            self.shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
                            self.shared
                                .metrics
                                .quota_rejections
                                .fetch_add(1, Ordering::Relaxed);
                            conn.out.extend_from_slice(&http::json_response(
                                429,
                                &wire::error_json(&format!(
                                    "tenant `{tenant}` is over its {} queue quota, retry later",
                                    class.name()
                                )),
                                keep_alive && !shutting_down,
                            ));
                            if !(keep_alive && !shutting_down) {
                                conn.reading_dead = true;
                                conn.close_after_flush = true;
                                return;
                            }
                            continue;
                        }
                    };
                    conn.inflight = true;
                    self.shared
                        .metrics
                        .requests_total
                        .fetch_add(1, Ordering::Relaxed);
                    // Every request gets a trace: the root span opens at
                    // parse start, the parse itself is its first child,
                    // and the worker closes the root at response framing.
                    let trace_id = telemetry::next_trace_id();
                    let root_span = telemetry::next_span_id();
                    let enqueued_ns = telemetry::now_ns();
                    telemetry::record_span(
                        telemetry::TraceCtx {
                            trace_id,
                            parent: root_span,
                        },
                        telemetry::SpanName::HttpParse,
                        telemetry::next_span_id(),
                        parse_t0,
                        enqueued_ns,
                        0,
                        0,
                        0,
                    );
                    self.shared.jobs.push(Job {
                        conn: id,
                        request,
                        class,
                        permit: Some(permit),
                        keep_alive: keep_alive && !shutting_down,
                        trace_id,
                        root_span,
                        parse_start_ns: parse_t0,
                        enqueued_ns,
                    });
                }
                Parse::Error(e) => {
                    let (status, msg) = match e {
                        ParseError::TooLarge => (413, "request too large".to_string()),
                        ParseError::Malformed(m) => (400, format!("malformed request: {m}")),
                    };
                    // Unified accounting: every response the server
                    // generates counts in `requests_total`, so dashboard
                    // rates don't undercount under protocol abuse.
                    self.shared
                        .metrics
                        .requests_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
                    conn.enqueue_close_response(status, &msg);
                    let id = id;
                    self.handle_write(id);
                    return;
                }
            }
        }
    }

    fn handle_write(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while !conn.flushed() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Client went away mid-response: not a server problem,
                    // but the connection is done.
                    conn.dead = true;
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_flush && conn.draining_until.is_none() {
            let _ = conn.stream.shutdown(Shutdown::Write);
            if conn.eof {
                conn.dead = true;
            } else {
                // Drain unread input before dropping the socket so the
                // response cannot be RST'd out of the client's receive
                // buffer.
                conn.reading_dead = true;
                conn.buf.clear();
                conn.draining_until = Some(Instant::now() + DRAIN_GRACE);
            }
        }
    }

    fn check_deadlines(&mut self) {
        let now = Instant::now();
        let mut timed_out: Vec<u64> = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            if conn.dead {
                continue;
            }
            if let Some(t) = conn.draining_until {
                if now >= t {
                    conn.dead = true;
                }
                continue;
            }
            if let Some(t) = conn.idle_deadline {
                if now >= t && !conn.inflight && conn.flushed() && conn.buf.is_empty() {
                    conn.dead = true; // silent keep-alive close
                    continue;
                }
            }
            if let Some(t) = conn.deadline {
                if now >= t && !conn.inflight && !conn.reading_dead {
                    // Unified accounting: a 408 is a generated response,
                    // so it counts in `requests_total` too.
                    self.shared
                        .metrics
                        .requests_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
                    conn.enqueue_close_response(408, "request read timed out");
                    timed_out.push(id);
                }
            }
        }
        for id in timed_out {
            self.handle_write(id);
        }
    }

    fn reap(&mut self) {
        self.conns.retain(|_, conn| !conn.dead);
    }
}
