//! Wire types: JSON request bodies → validated [`AnalysisRequest`]s, and
//! the response envelopes.
//!
//! `POST /analyze` body (only `source` is required):
//!
//! ```json
//! {
//!   "source": "qubits 2;\nh q0;\ncnot q0, q1;",
//!   "name": "ghz2",
//!   "method": "state",          // state | adaptive | worst | lqr
//!   "width": 32,
//!   "noise": "bitflip:1e-4",    // bitflip:P | depolarizing:P1,P2 | ampdamp:G | none
//!   "input": "00",              // basis bits, defaults to all zeros
//!   "cache": true,
//!   "tiers": "exact"            // exact | fast | closed | warm
//! }
//! ```
//!
//! `POST /batch` body: `{"programs":[<analyze body>, …]}`. Each entry
//! fails or succeeds on its own, mirroring `Engine::analyze_batch`.
//!
//! `POST /diff` body: `old_source` and `new_source` are required; every
//! other field is the `/analyze` vocabulary and applies to **both**
//! programs (a diff against a different width, noise, or tier policy is a
//! config change, not an edit — run two `/analyze` calls instead):
//!
//! ```json
//! {
//!   "old_source": "qubits 2;\nh q0;\ncnot q0, q1;",
//!   "new_source": "qubits 2;\nh q0;\ncnot q0, q1;\nx q1;",
//!   "name": "ghz2-edit",
//!   "width": 32, "noise": "bitflip:1e-4", "input": "00",
//!   "cache": true, "tiers": "exact"
//! }
//! ```

use crate::json::Json;
use crate::spec;
use gleipnir_circuit::{parse as parse_glq, Program};
use gleipnir_core::jsonfmt::{diff_report_json, json_str, report_json};
use gleipnir_core::{AnalysisRequest, DiffReport, Report};

/// A fully validated analyze request plus the context needed to render its
/// response.
#[derive(Debug)]
pub struct AnalyzeSpec {
    /// Label echoed back in the report (`name` field, default `"request"`).
    pub name: String,
    /// The parsed program (reports include qubit/gate counts).
    pub program: Program,
    /// The validated engine request.
    pub request: AnalysisRequest,
}

/// Builds an [`AnalyzeSpec`] from a parsed `/analyze` body.
///
/// # Errors
///
/// A human-readable message destined for the 4xx response body.
pub fn analyze_spec_from_json(v: &Json) -> Result<AnalyzeSpec, String> {
    let source = v
        .get("source")
        .and_then(Json::as_str)
        .ok_or("missing required string field `source`")?;
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("request")
        .to_string();
    let program = parse_glq(source).map_err(|e| format!("GLQ parse error: {e}"))?;
    let request = request_from_json(v, &program)?;
    Ok(AnalyzeSpec {
        name,
        program,
        request,
    })
}

/// Parses the shared request vocabulary (`width`, `method`, `noise`,
/// `input`, `cache`, `tiers`) and builds the engine request for one
/// program. `/analyze` calls this once, `/diff` twice with the same body.
fn request_from_json(v: &Json, program: &Program) -> Result<AnalysisRequest, String> {
    let width = match v.get("width") {
        None => spec::DEFAULT_WIDTH,
        Some(w) => w
            .as_usize()
            .filter(|w| *w > 0)
            .ok_or("`width` must be a positive integer")?,
    };
    let method_name = match v.get("method") {
        None => None,
        Some(m) => Some(m.as_str().ok_or("`method` must be a string")?),
    };
    let method = spec::parse_method_spec(method_name, width)?;
    let noise_spec = match v.get("noise") {
        None => spec::DEFAULT_NOISE_SPEC,
        Some(n) => n.as_str().ok_or("`noise` must be a string")?,
    };
    let noise = spec::parse_noise_spec(noise_spec)?;
    let mut builder = AnalysisRequest::builder(program.clone())
        .noise(noise)
        .method(method);
    if let Some(input) = v.get("input") {
        let bits = input.as_str().ok_or("`input` must be a bit string")?;
        builder = builder.input(&spec::parse_input_bits(bits, program.n_qubits())?);
    }
    if let Some(cache) = v.get("cache") {
        builder = builder.cache(cache.as_bool().ok_or("`cache` must be a boolean")?);
    }
    let tiers = match v.get("tiers") {
        None => None,
        Some(t) => Some(t.as_str().ok_or("`tiers` must be a string")?),
    };
    builder = builder.tiering(spec::parse_tier_spec(tiers)?);
    builder.build().map_err(|e| e.to_string())
}

/// A fully validated diff request: two programs, one shared configuration.
#[derive(Debug)]
pub struct DiffSpec {
    /// Label echoed back in the response (`name` field, default `"diff"`).
    pub name: String,
    /// The parsed `old_source` program.
    pub old_program: Program,
    /// The parsed `new_source` program.
    pub new_program: Program,
    /// The validated request for the old program.
    pub old_request: AnalysisRequest,
    /// The validated request for the new program (same configuration).
    pub new_request: AnalysisRequest,
}

/// Builds a [`DiffSpec`] from a parsed `/diff` body.
///
/// # Errors
///
/// A human-readable message destined for the 4xx response body.
pub fn diff_spec_from_json(v: &Json) -> Result<DiffSpec, String> {
    let old_source = v
        .get("old_source")
        .and_then(Json::as_str)
        .ok_or("missing required string field `old_source`")?;
    let new_source = v
        .get("new_source")
        .and_then(Json::as_str)
        .ok_or("missing required string field `new_source`")?;
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("diff")
        .to_string();
    let old_program =
        parse_glq(old_source).map_err(|e| format!("GLQ parse error in `old_source`: {e}"))?;
    let new_program =
        parse_glq(new_source).map_err(|e| format!("GLQ parse error in `new_source`: {e}"))?;
    let old_request = request_from_json(v, &old_program)?;
    let new_request = request_from_json(v, &new_program)?;
    Ok(DiffSpec {
        name,
        old_program,
        new_program,
        old_request,
        new_request,
    })
}

/// Splits a `/batch` body into per-entry results (a bad entry never sinks
/// its siblings — it becomes that entry's error).
///
/// # Errors
///
/// Only for a body that is not `{"programs": [...]}` at all.
pub fn batch_specs_from_json(v: &Json) -> Result<Vec<Result<AnalyzeSpec, String>>, String> {
    let programs = v
        .get("programs")
        .and_then(Json::as_array)
        .ok_or("missing required array field `programs`")?;
    if programs.is_empty() {
        return Err("`programs` must not be empty".into());
    }
    Ok(programs.iter().map(analyze_spec_from_json).collect())
}

/// The `/analyze` success envelope.
pub fn analyze_ok_json(spec: &AnalyzeSpec, report: &Report) -> String {
    format!(
        "{{\"ok\":true,\"report\":{}}}",
        report_json(&spec.name, &spec.program, report)
    )
}

/// The `/diff` success envelope. The labels distinguish the two programs
/// inside the shared `name`.
pub fn diff_ok_json(spec: &DiffSpec, diff: &DiffReport) -> String {
    format!(
        "{{\"ok\":true,\"diff\":{}}}",
        diff_report_json(
            &format!("{}:old", spec.name),
            &format!("{}:new", spec.name),
            diff
        )
    )
}

/// A uniform error envelope (any endpoint, any status).
pub fn error_json(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json_str(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const SRC: &str = "qubits 2;\nh q0;\ncnot q0, q1;";

    #[test]
    fn minimal_body_builds_a_request() {
        let body = format!("{{\"source\":{}}}", json_str(SRC));
        let spec = analyze_spec_from_json(&parse(&body).unwrap()).unwrap();
        assert_eq!(spec.name, "request");
        assert_eq!(spec.program.n_qubits(), 2);
    }

    #[test]
    fn full_body_round_trips() {
        let body = format!(
            "{{\"source\":{},\"name\":\"ghz\",\"method\":\"worst\",\"noise\":\"none\",\"input\":\"01\",\"cache\":false,\"tiers\":\"fast\"}}",
            json_str(SRC)
        );
        let spec = analyze_spec_from_json(&parse(&body).unwrap()).unwrap();
        assert_eq!(spec.name, "ghz");
        assert!(!spec.request.cache_enabled());
        assert_eq!(
            spec.request.tier_policy(),
            gleipnir_core::TierPolicy::fast()
        );
    }

    #[test]
    fn bad_bodies_name_the_problem() {
        for (body, needle) in [
            ("{}", "source"),
            (r#"{"source":"qubits 1;\nh q0;","width":0}"#, "width"),
            (
                r#"{"source":"qubits 1;\nh q0;","method":"magic"}"#,
                "method",
            ),
            (r#"{"source":"qubits 1;\nh q0;","input":"000"}"#, "binary"),
            (r#"{"source":"qubits 1;\nh q0;","tiers":"turbo"}"#, "tier"),
            (r#"{"source":"not glq"}"#, "parse"),
        ] {
            let err = analyze_spec_from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "`{body}` → `{err}`");
        }
    }

    #[test]
    fn diff_body_builds_two_requests_with_shared_config() {
        let body = format!(
            "{{\"old_source\":{},\"new_source\":{},\"name\":\"edit\",\"width\":8,\"tiers\":\"fast\"}}",
            json_str(SRC),
            json_str("qubits 2;\nh q0;\ncnot q0, q1;\nx q1;")
        );
        let spec = diff_spec_from_json(&parse(&body).unwrap()).unwrap();
        assert_eq!(spec.name, "edit");
        assert_eq!(
            spec.old_program.gate_count() + 1,
            spec.new_program.gate_count()
        );
        assert_eq!(
            spec.old_request.tier_policy(),
            spec.new_request.tier_policy()
        );
    }

    #[test]
    fn diff_body_missing_sources_name_the_problem() {
        for (body, needle) in [
            ("{}", "old_source"),
            (
                &*format!("{{\"old_source\":{}}}", json_str(SRC)),
                "new_source",
            ),
            (
                &*format!(
                    "{{\"old_source\":\"bogus\",\"new_source\":{}}}",
                    json_str(SRC)
                ),
                "old_source",
            ),
        ] {
            let err = diff_spec_from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "`{body}` → `{err}`");
        }
    }

    #[test]
    fn batch_preserves_per_entry_failures() {
        let body = format!(
            "{{\"programs\":[{{\"source\":{}}},{{\"source\":\"bogus\"}}]}}",
            json_str(SRC)
        );
        let specs = batch_specs_from_json(&parse(&body).unwrap()).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs[0].is_ok());
        assert!(specs[1].is_err());
    }
}
