//! Server-side counters behind `GET /metrics`.
//!
//! Everything is a relaxed atomic — metrics are advisory, and the hot path
//! must never contend on them. Engine-level numbers (cache hits/misses,
//! pool size) are read fresh from the [`Engine`](gleipnir_core::Engine) at
//! render time rather than mirrored.

use gleipnir_core::jsonfmt::json_ms;
use gleipnir_core::{CacheStats, LoadStats, Report, TierStats};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Cumulative counters for one server instance.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Connections accepted (including ones later shed).
    pub connections_total: AtomicUsize,
    /// Connections shed with `429` because the queue was full.
    pub shed_total: AtomicUsize,
    /// Requests parsed and dispatched to workers (keep-alive means this
    /// can far exceed `connections_total`).
    pub requests_total: AtomicUsize,
    /// Requests currently being served by workers.
    pub in_flight: AtomicUsize,
    /// Successful `/analyze` responses.
    pub analyze_ok: AtomicUsize,
    /// Failed `/analyze` responses (parse or analysis errors).
    pub analyze_err: AtomicUsize,
    /// Successful `/batch` responses (the batch itself; entries may fail).
    pub batch_ok: AtomicUsize,
    /// Failed `/batch` responses.
    pub batch_err: AtomicUsize,
    /// Successful `/diff` responses.
    pub diff_ok: AtomicUsize,
    /// Failed `/diff` responses (parse or analysis errors).
    pub diff_err: AtomicUsize,
    /// Cumulative gates served from reused diff prefixes (no re-plan, no
    /// solve) across all `/diff` responses.
    pub diff_prefix_gates_reused: AtomicUsize,
    /// Non-analysis HTTP failures (bad method/path/body framing).
    pub http_err: AtomicUsize,
    /// Cumulative pipeline stage walls across served analyses, in µs.
    pub plan_us: AtomicU64,
    /// Solve-stage cumulative wall (µs).
    pub solve_us: AtomicU64,
    /// Assemble-stage cumulative wall (µs).
    pub assemble_us: AtomicU64,
    /// Records appended to the certificate store so far.
    pub persisted_records: AtomicUsize,
    /// What the startup store load found (zeroes when no store).
    pub load_loaded: AtomicUsize,
    /// Startup-load rejected-record count.
    pub load_rejected: AtomicUsize,
    /// `GET /certs/since/` responses served to peers.
    pub certs_served: AtomicUsize,
    /// Successful gossip pulls (peer reachable, body imported).
    pub peer_pull_ok: AtomicUsize,
    /// Failed gossip pulls (unreachable peer or unusable body).
    pub peer_pull_err: AtomicUsize,
    /// Records received from peers (before verification).
    pub peer_records_received: AtomicUsize,
    /// Peer records that re-certified and entered the cache.
    pub peer_records_added: AtomicUsize,
    /// Peer records that failed re-certification (the containment path
    /// for malicious, stale, or corrupt peers).
    pub peer_records_rejected: AtomicUsize,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started: Instant::now(),
            connections_total: AtomicUsize::new(0),
            shed_total: AtomicUsize::new(0),
            requests_total: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            analyze_ok: AtomicUsize::new(0),
            analyze_err: AtomicUsize::new(0),
            batch_ok: AtomicUsize::new(0),
            batch_err: AtomicUsize::new(0),
            diff_ok: AtomicUsize::new(0),
            diff_err: AtomicUsize::new(0),
            diff_prefix_gates_reused: AtomicUsize::new(0),
            http_err: AtomicUsize::new(0),
            plan_us: AtomicU64::new(0),
            solve_us: AtomicU64::new(0),
            assemble_us: AtomicU64::new(0),
            persisted_records: AtomicUsize::new(0),
            load_loaded: AtomicUsize::new(0),
            load_rejected: AtomicUsize::new(0),
            certs_served: AtomicUsize::new(0),
            peer_pull_ok: AtomicUsize::new(0),
            peer_pull_err: AtomicUsize::new(0),
            peer_records_received: AtomicUsize::new(0),
            peer_records_added: AtomicUsize::new(0),
            peer_records_rejected: AtomicUsize::new(0),
        }
    }

    pub(crate) fn note_load(&self, stats: &LoadStats) {
        self.load_loaded.store(stats.loaded, Ordering::Relaxed);
        self.load_rejected.store(stats.rejected, Ordering::Relaxed);
    }

    /// Folds one served report's stage timings into the cumulative sums.
    pub(crate) fn note_report(&self, report: &Report) {
        if let Some(t) = report.stage_timings() {
            self.plan_us
                .fetch_add(t.plan.as_micros() as u64, Ordering::Relaxed);
            self.solve_us
                .fetch_add(t.solve.as_micros() as u64, Ordering::Relaxed);
            self.assemble_us
                .fetch_add(t.assemble.as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// Renders the `/metrics` JSON document. `queue_depth` is passed in by
    /// the caller (read under the queue's own lock) rather than mirrored
    /// in an atomic that could race the push/pop pair.
    pub(crate) fn to_json(
        &self,
        cache: CacheStats,
        tiers: TierStats,
        pool_threads: usize,
        workers: usize,
        queue_depth: usize,
        queue_capacity: usize,
        store_enabled: bool,
    ) -> String {
        let c = |a: &AtomicUsize| a.load(Ordering::Relaxed);
        let us = |a: &AtomicU64| json_ms(a.load(Ordering::Relaxed) as f64 / 1e3);
        format!(
            concat!(
                "{{\"uptime_ms\":{},",
                "\"pool_threads\":{},\"workers\":{},",
                "\"queue\":{{\"depth\":{},\"capacity\":{},\"shed_total\":{}}},",
                "\"in_flight\":{},",
                "\"requests\":{{\"connections_total\":{},\"requests_total\":{},",
                "\"analyze_ok\":{},\"analyze_err\":{},",
                "\"batch_ok\":{},\"batch_err\":{},\"http_err\":{}}},",
                "\"diff\":{{\"requests_total\":{},\"errors\":{},\"prefix_gates_reused\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"inflight_dedup\":{}}},",
                "\"tiers\":{{\"closed_form\":{},\"warm\":{},\"cold\":{},\"ip_iterations\":{}}},",
                "\"stage_totals_ms\":{{\"plan\":{},\"solve\":{},\"assemble\":{}}},",
                "\"store\":{{\"enabled\":{},\"loaded\":{},\"rejected\":{},\"appended\":{}}},",
                "\"peers\":{{\"certs_served\":{},\"pull_ok\":{},\"pull_err\":{},",
                "\"records_received\":{},\"records_added\":{},\"records_rejected\":{}}}}}"
            ),
            json_ms(self.started.elapsed().as_secs_f64() * 1e3),
            pool_threads,
            workers,
            queue_depth,
            queue_capacity,
            c(&self.shed_total),
            c(&self.in_flight),
            c(&self.connections_total),
            c(&self.requests_total),
            c(&self.analyze_ok),
            c(&self.analyze_err),
            c(&self.batch_ok),
            c(&self.batch_err),
            c(&self.http_err),
            c(&self.diff_ok) + c(&self.diff_err),
            c(&self.diff_err),
            c(&self.diff_prefix_gates_reused),
            cache.hits,
            cache.misses,
            cache.entries,
            cache.inflight_dedup,
            tiers.closed_form,
            tiers.warm,
            tiers.cold,
            tiers.ip_iterations,
            us(&self.plan_us),
            us(&self.solve_us),
            us(&self.assemble_us),
            store_enabled,
            c(&self.load_loaded),
            c(&self.load_rejected),
            c(&self.persisted_records),
            c(&self.certs_served),
            c(&self.peer_pull_ok),
            c(&self.peer_pull_err),
            c(&self.peer_records_received),
            c(&self.peer_records_added),
            c(&self.peer_records_rejected),
        )
    }
}
