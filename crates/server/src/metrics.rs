//! Server-side counters behind `GET /metrics`.
//!
//! Everything is a relaxed atomic — metrics are advisory, and the hot path
//! must never contend on them. Engine-level numbers (cache hits/misses,
//! pool size) are read fresh from the [`Engine`](gleipnir_core::Engine) at
//! render time rather than mirrored.

use gleipnir_core::jsonfmt::{json_f64, json_ms};
use gleipnir_core::{CacheStats, LoadStats, RefineStats, Report, SchedulerDepths, TierStats};
use gleipnir_telemetry as telemetry;
use gleipnir_telemetry::detail;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// The crate version baked into `/healthz`, `/metrics`, and the
/// `gleipnir_build_info` Prometheus series.
pub(crate) const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Cumulative counters for one server instance.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Connections accepted (including ones later shed).
    pub connections_total: AtomicUsize,
    /// Connections shed with `429` because the queue was full.
    pub shed_total: AtomicUsize,
    /// Requests parsed and dispatched to workers (keep-alive means this
    /// can far exceed `connections_total`).
    pub requests_total: AtomicUsize,
    /// Requests currently being served by workers.
    pub in_flight: AtomicUsize,
    /// Successful `/analyze` responses.
    pub analyze_ok: AtomicUsize,
    /// Failed `/analyze` responses (parse or analysis errors).
    pub analyze_err: AtomicUsize,
    /// Successful `/batch` responses (the batch itself; entries may fail).
    pub batch_ok: AtomicUsize,
    /// Failed `/batch` responses.
    pub batch_err: AtomicUsize,
    /// Successful `/diff` responses.
    pub diff_ok: AtomicUsize,
    /// Failed `/diff` responses (parse or analysis errors).
    pub diff_err: AtomicUsize,
    /// Cumulative gates served from reused diff prefixes (no re-plan, no
    /// solve) across all `/diff` responses.
    pub diff_prefix_gates_reused: AtomicUsize,
    /// Non-analysis HTTP failures (bad method/path/body framing).
    pub http_err: AtomicUsize,
    /// Requests rejected with `429` because the tenant was over its
    /// per-class queue quota (distinct from `shed_total`, which is
    /// whole-server backpressure).
    pub quota_rejections: AtomicUsize,
    /// Anytime `/analyze` requests accepted with `202` + a token.
    pub anytime_accepted: AtomicUsize,
    /// Cumulative pipeline stage walls across served analyses, in µs.
    pub plan_us: AtomicU64,
    /// Solve-stage cumulative wall (µs).
    pub solve_us: AtomicU64,
    /// Assemble-stage cumulative wall (µs).
    pub assemble_us: AtomicU64,
    /// Records appended to the certificate store so far.
    pub persisted_records: AtomicUsize,
    /// What the startup store load found (zeroes when no store).
    pub load_loaded: AtomicUsize,
    /// Startup-load rejected-record count.
    pub load_rejected: AtomicUsize,
    /// `GET /certs/since/` responses served to peers.
    pub certs_served: AtomicUsize,
    /// Successful gossip pulls (peer reachable, body imported).
    pub peer_pull_ok: AtomicUsize,
    /// Failed gossip pulls (unreachable peer or unusable body).
    pub peer_pull_err: AtomicUsize,
    /// Records received from peers (before verification).
    pub peer_records_received: AtomicUsize,
    /// Peer records that re-certified and entered the cache.
    pub peer_records_added: AtomicUsize,
    /// Peer records that failed re-certification (the containment path
    /// for malicious, stale, or corrupt peers).
    pub peer_records_rejected: AtomicUsize,
    /// Request wall (parse start → response framed) for `/analyze`.
    pub req_analyze_ms: telemetry::Histogram,
    /// Request wall for `/batch`.
    pub req_batch_ms: telemetry::Histogram,
    /// Request wall for `/diff`.
    pub req_diff_ms: telemetry::Histogram,
    /// Request wall for `/refine/<token>` polls.
    pub req_refine_ms: telemetry::Histogram,
    /// Request wall for everything else (`/healthz`, `/metrics`, …).
    pub req_other_ms: telemetry::Histogram,
}

/// A point-in-time snapshot of everything the renderers need beyond the
/// cumulative counters: engine state, queue depths (read under the
/// queue's own lock rather than mirrored in racy atomics), and config.
pub(crate) struct MetricsView {
    pub cache: CacheStats,
    pub tiers: TierStats,
    pub pool_threads: usize,
    pub workers: usize,
    /// Parsed HTTP requests waiting for a worker (capacity-oriented;
    /// the shed threshold is expressed against this number).
    pub queue_depth: usize,
    pub queue_capacity: usize,
    /// Combined per-class backlog: HTTP jobs waiting for a worker plus
    /// engine-pool obligations waiting for a solver, by priority class.
    pub depths: SchedulerDepths,
    pub store_enabled: bool,
    /// Refinement lifecycle counts from the engine's registry.
    pub refines: RefineStats,
    /// Configured per-tenant, per-class admission quota (0 = unlimited).
    pub tenant_quota: usize,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started: Instant::now(),
            connections_total: AtomicUsize::new(0),
            shed_total: AtomicUsize::new(0),
            requests_total: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            analyze_ok: AtomicUsize::new(0),
            analyze_err: AtomicUsize::new(0),
            batch_ok: AtomicUsize::new(0),
            batch_err: AtomicUsize::new(0),
            diff_ok: AtomicUsize::new(0),
            diff_err: AtomicUsize::new(0),
            diff_prefix_gates_reused: AtomicUsize::new(0),
            http_err: AtomicUsize::new(0),
            quota_rejections: AtomicUsize::new(0),
            anytime_accepted: AtomicUsize::new(0),
            plan_us: AtomicU64::new(0),
            solve_us: AtomicU64::new(0),
            assemble_us: AtomicU64::new(0),
            persisted_records: AtomicUsize::new(0),
            load_loaded: AtomicUsize::new(0),
            load_rejected: AtomicUsize::new(0),
            certs_served: AtomicUsize::new(0),
            peer_pull_ok: AtomicUsize::new(0),
            peer_pull_err: AtomicUsize::new(0),
            peer_records_received: AtomicUsize::new(0),
            peer_records_added: AtomicUsize::new(0),
            peer_records_rejected: AtomicUsize::new(0),
            req_analyze_ms: telemetry::Histogram::latency(),
            req_batch_ms: telemetry::Histogram::latency(),
            req_diff_ms: telemetry::Histogram::latency(),
            req_refine_ms: telemetry::Histogram::latency(),
            req_other_ms: telemetry::Histogram::latency(),
        }
    }

    /// Uptime in whole seconds (for `/healthz` and the Prometheus gauge).
    pub(crate) fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Folds one request wall into the per-endpoint latency histogram.
    /// `endpoint` is the request span's [`detail`] code.
    pub(crate) fn observe_request(&self, endpoint: u32, wall_ms: f64) {
        match endpoint {
            detail::ENDPOINT_ANALYZE => self.req_analyze_ms.observe_ms(wall_ms),
            detail::ENDPOINT_BATCH => self.req_batch_ms.observe_ms(wall_ms),
            detail::ENDPOINT_DIFF => self.req_diff_ms.observe_ms(wall_ms),
            detail::ENDPOINT_REFINE => self.req_refine_ms.observe_ms(wall_ms),
            _ => self.req_other_ms.observe_ms(wall_ms),
        }
    }

    pub(crate) fn note_load(&self, stats: &LoadStats) {
        self.load_loaded.store(stats.loaded, Ordering::Relaxed);
        self.load_rejected.store(stats.rejected, Ordering::Relaxed);
    }

    /// Folds one served report's stage timings into the cumulative sums.
    pub(crate) fn note_report(&self, report: &Report) {
        if let Some(t) = report.stage_timings() {
            self.plan_us
                .fetch_add(t.plan.as_micros() as u64, Ordering::Relaxed);
            self.solve_us
                .fetch_add(t.solve.as_micros() as u64, Ordering::Relaxed);
            self.assemble_us
                .fetch_add(t.assemble.as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// Renders the `/metrics` JSON document from the cumulative counters
    /// plus a [`MetricsView`] snapshot taken by the caller.
    pub(crate) fn to_json(&self, v: &MetricsView) -> String {
        let c = |a: &AtomicUsize| a.load(Ordering::Relaxed);
        let us = |a: &AtomicU64| json_ms(a.load(Ordering::Relaxed) as f64 / 1e3);
        format!(
            concat!(
                "{{\"uptime_ms\":{},",
                "\"pool_threads\":{},\"workers\":{},",
                "\"queue\":{{\"depth\":{},\"capacity\":{},\"shed_total\":{}}},",
                "\"scheduler\":{{\"interactive\":{},\"refinement\":{},\"batch\":{},",
                "\"tenant_quota\":{},\"quota_rejections\":{}}},",
                "\"refinements\":{{\"started\":{},\"completed\":{},\"failed\":{},",
                "\"pending\":{},\"accepted\":{}}},",
                "\"in_flight\":{},",
                "\"requests\":{{\"connections_total\":{},\"requests_total\":{},",
                "\"analyze_ok\":{},\"analyze_err\":{},",
                "\"batch_ok\":{},\"batch_err\":{},\"http_err\":{}}},",
                "\"diff\":{{\"requests_total\":{},\"errors\":{},\"prefix_gates_reused\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"inflight_dedup\":{}}},",
                "\"tiers\":{{\"closed_form\":{},\"warm\":{},\"cold\":{},\"ip_iterations\":{}}},",
                "\"stage_totals_ms\":{{\"plan\":{},\"solve\":{},\"assemble\":{}}},",
                "\"store\":{{\"enabled\":{},\"loaded\":{},\"rejected\":{},\"appended\":{}}},",
                "\"peers\":{{\"certs_served\":{},\"pull_ok\":{},\"pull_err\":{},",
                "\"records_received\":{},\"records_added\":{},\"records_rejected\":{}}},",
                "\"uptime_seconds\":{},\"version\":\"{}\",",
                "\"saturation\":{{\"workers_busy\":{},\"queue_fill\":{}}},",
                "\"latency_ms\":{{\"analyze\":{},\"batch\":{},\"diff\":{},\"refine\":{},\"other\":{}}}}}"
            ),
            json_ms(self.started.elapsed().as_secs_f64() * 1e3),
            v.pool_threads,
            v.workers,
            v.queue_depth,
            v.queue_capacity,
            c(&self.shed_total),
            v.depths.interactive,
            v.depths.refinement,
            v.depths.batch,
            v.tenant_quota,
            c(&self.quota_rejections),
            v.refines.started,
            v.refines.completed,
            v.refines.failed,
            v.refines.pending,
            c(&self.anytime_accepted),
            c(&self.in_flight),
            c(&self.connections_total),
            c(&self.requests_total),
            c(&self.analyze_ok),
            c(&self.analyze_err),
            c(&self.batch_ok),
            c(&self.batch_err),
            c(&self.http_err),
            c(&self.diff_ok) + c(&self.diff_err),
            c(&self.diff_err),
            c(&self.diff_prefix_gates_reused),
            v.cache.hits,
            v.cache.misses,
            v.cache.entries,
            v.cache.inflight_dedup,
            v.tiers.closed_form,
            v.tiers.warm,
            v.tiers.cold,
            v.tiers.ip_iterations,
            us(&self.plan_us),
            us(&self.solve_us),
            us(&self.assemble_us),
            v.store_enabled,
            c(&self.load_loaded),
            c(&self.load_rejected),
            c(&self.persisted_records),
            c(&self.certs_served),
            c(&self.peer_pull_ok),
            c(&self.peer_pull_err),
            c(&self.peer_records_received),
            c(&self.peer_records_added),
            c(&self.peer_records_rejected),
            self.uptime_seconds(),
            VERSION,
            json_f64(c(&self.in_flight) as f64 / v.workers as f64),
            json_f64(v.queue_depth as f64 / v.queue_capacity as f64),
            quantiles_json(&self.req_analyze_ms),
            quantiles_json(&self.req_batch_ms),
            quantiles_json(&self.req_diff_ms),
            quantiles_json(&self.req_refine_ms),
            quantiles_json(&self.req_other_ms),
        )
    }

    /// Renders the `/metrics?format=prometheus` document (text exposition
    /// format v0.0.4). Same numbers as the JSON, plus the latency
    /// histograms in full (the JSON carries only quantile summaries).
    pub(crate) fn to_prometheus(&self, v: &MetricsView) -> String {
        use telemetry::prom;
        let c = |a: &AtomicUsize| a.load(Ordering::Relaxed) as u64;
        let no: &[(&str, &str)] = &[];
        let (cache, tiers) = (&v.cache, &v.tiers);
        let (workers, pool_threads) = (v.workers, v.pool_threads);
        let (queue_capacity, store_enabled) = (v.queue_capacity, v.store_enabled);
        let mut out = String::with_capacity(8 * 1024);
        prom::gauge(
            &mut out,
            "gleipnir_build_info",
            "Constant 1, labeled with the server version.",
            &[(&[("version", VERSION)][..], 1.0)],
        );
        prom::gauge(
            &mut out,
            "gleipnir_uptime_seconds",
            "Seconds since this server started.",
            &[(no, self.started.elapsed().as_secs_f64())],
        );
        prom::counter(
            &mut out,
            "gleipnir_connections_total",
            "Connections accepted (including ones later shed).",
            &[(no, c(&self.connections_total))],
        );
        prom::counter(
            &mut out,
            "gleipnir_shed_total",
            "Connections shed because the server was at capacity.",
            &[(no, c(&self.shed_total))],
        );
        prom::counter(
            &mut out,
            "gleipnir_requests_total",
            "Responses generated (parsed requests plus protocol errors).",
            &[(no, c(&self.requests_total))],
        );
        prom::counter(
            &mut out,
            "gleipnir_http_errors_total",
            "Error responses plus reads that died before one.",
            &[(no, c(&self.http_err))],
        );
        prom::counter(
            &mut out,
            "gleipnir_quota_rejections_total",
            "Requests rejected 429 because a tenant was over its class quota.",
            &[(no, c(&self.quota_rejections))],
        );
        prom::counter(
            &mut out,
            "gleipnir_refinements_total",
            "Anytime refinement lifecycle events.",
            &[
                (&[("event", "started")][..], v.refines.started as u64),
                (&[("event", "completed")][..], v.refines.completed as u64),
                (&[("event", "failed")][..], v.refines.failed as u64),
            ],
        );
        prom::gauge(
            &mut out,
            "gleipnir_refinements_pending",
            "Refinements registered but not yet published.",
            &[(no, v.refines.pending as f64)],
        );
        prom::counter(
            &mut out,
            "gleipnir_anytime_accepted_total",
            "Anytime /analyze requests answered 202 with a token.",
            &[(no, c(&self.anytime_accepted))],
        );
        prom::gauge(
            &mut out,
            "gleipnir_tenant_quota",
            "Per-tenant, per-class admission quota (0 = unlimited).",
            &[(no, v.tenant_quota as f64)],
        );
        prom::counter(
            &mut out,
            "gleipnir_responses_total",
            "Endpoint responses by outcome.",
            &[
                (
                    &[("endpoint", "analyze"), ("outcome", "ok")][..],
                    c(&self.analyze_ok),
                ),
                (
                    &[("endpoint", "analyze"), ("outcome", "err")][..],
                    c(&self.analyze_err),
                ),
                (
                    &[("endpoint", "batch"), ("outcome", "ok")][..],
                    c(&self.batch_ok),
                ),
                (
                    &[("endpoint", "batch"), ("outcome", "err")][..],
                    c(&self.batch_err),
                ),
                (
                    &[("endpoint", "diff"), ("outcome", "ok")][..],
                    c(&self.diff_ok),
                ),
                (
                    &[("endpoint", "diff"), ("outcome", "err")][..],
                    c(&self.diff_err),
                ),
            ],
        );
        prom::counter(
            &mut out,
            "gleipnir_diff_prefix_gates_reused_total",
            "Gates served from reused diff prefixes (no re-plan, no solve).",
            &[(no, c(&self.diff_prefix_gates_reused))],
        );
        prom::gauge(
            &mut out,
            "gleipnir_in_flight_requests",
            "Requests currently being served by workers.",
            &[(no, c(&self.in_flight) as f64)],
        );
        prom::gauge(
            &mut out,
            "gleipnir_workers",
            "HTTP worker threads.",
            &[(no, workers as f64)],
        );
        prom::gauge(
            &mut out,
            "gleipnir_pool_threads",
            "Engine solve-pool threads.",
            &[(no, pool_threads as f64)],
        );
        prom::gauge(
            &mut out,
            "gleipnir_queue_depth",
            "Scheduler backlog by priority class (HTTP jobs waiting for a \
             worker plus engine obligations waiting for a solver).",
            &[
                (&[("class", "interactive")][..], v.depths.interactive as f64),
                (&[("class", "refinement")][..], v.depths.refinement as f64),
                (&[("class", "batch")][..], v.depths.batch as f64),
            ],
        );
        prom::gauge(
            &mut out,
            "gleipnir_queue_capacity",
            "Job-queue capacity (shedding starts past workers+capacity).",
            &[(no, queue_capacity as f64)],
        );
        prom::gauge(
            &mut out,
            "gleipnir_saturation_ratio",
            "Busy fraction: workers serving, queue slots filled.",
            &[
                (
                    &[("resource", "workers")][..],
                    c(&self.in_flight) as f64 / workers as f64,
                ),
                (
                    &[("resource", "queue")][..],
                    v.queue_depth as f64 / queue_capacity as f64,
                ),
            ],
        );
        prom::counter(
            &mut out,
            "gleipnir_cache_lookups_total",
            "Certificate-cache lookups by result.",
            &[
                (&[("result", "hit")][..], cache.hits as u64),
                (&[("result", "miss")][..], cache.misses as u64),
                (
                    &[("result", "inflight_join")][..],
                    cache.inflight_dedup as u64,
                ),
            ],
        );
        prom::gauge(
            &mut out,
            "gleipnir_cache_entries",
            "Certificates currently cached.",
            &[(no, cache.entries as f64)],
        );
        prom::counter(
            &mut out,
            "gleipnir_solves_total",
            "SDP judgments answered, by tier.",
            &[
                (&[("tier", "closed_form")][..], tiers.closed_form as u64),
                (&[("tier", "warm")][..], tiers.warm as u64),
                (&[("tier", "cold")][..], tiers.cold as u64),
            ],
        );
        prom::counter(
            &mut out,
            "gleipnir_ip_iterations_total",
            "Interior-point iterations across all SDP solves.",
            &[(no, tiers.ip_iterations as u64)],
        );
        prom::gauge(
            &mut out,
            "gleipnir_store_enabled",
            "1 when the certificate store writes through to disk.",
            &[(no, if store_enabled { 1.0 } else { 0.0 })],
        );
        prom::counter(
            &mut out,
            "gleipnir_store_records",
            "Certificate-store record movements.",
            &[
                (&[("event", "loaded")][..], c(&self.load_loaded)),
                (&[("event", "rejected")][..], c(&self.load_rejected)),
                (&[("event", "appended")][..], c(&self.persisted_records)),
            ],
        );
        prom::counter(
            &mut out,
            "gleipnir_peer_records_total",
            "Fleet gossip record movements.",
            &[
                (&[("event", "served")][..], c(&self.certs_served)),
                (&[("event", "received")][..], c(&self.peer_records_received)),
                (&[("event", "added")][..], c(&self.peer_records_added)),
                (&[("event", "rejected")][..], c(&self.peer_records_rejected)),
            ],
        );
        prom::counter(
            &mut out,
            "gleipnir_peer_pulls_total",
            "Gossip pulls by outcome.",
            &[
                (&[("outcome", "ok")][..], c(&self.peer_pull_ok)),
                (&[("outcome", "err")][..], c(&self.peer_pull_err)),
            ],
        );
        prom::histogram(
            &mut out,
            "gleipnir_request_duration_seconds",
            "Request wall from parse start to framed response, per endpoint.",
            &[
                (
                    &[("endpoint", "analyze")][..],
                    self.req_analyze_ms.snapshot(),
                ),
                (&[("endpoint", "batch")][..], self.req_batch_ms.snapshot()),
                (&[("endpoint", "diff")][..], self.req_diff_ms.snapshot()),
                (&[("endpoint", "refine")][..], self.req_refine_ms.snapshot()),
                (&[("endpoint", "other")][..], self.req_other_ms.snapshot()),
            ],
        );
        let t = telemetry::global();
        prom::histogram(
            &mut out,
            "gleipnir_stage_duration_seconds",
            "Pipeline stage walls per analysis.",
            &[
                (&[("stage", "plan")][..], t.plan_ms.snapshot()),
                (&[("stage", "solve")][..], t.solve_ms.snapshot()),
                (&[("stage", "assemble")][..], t.assemble_ms.snapshot()),
            ],
        );
        prom::histogram(
            &mut out,
            "gleipnir_ip_solve_duration_seconds",
            "Interior-point solve wall per real (non-closed-form) solve.",
            &[(no, t.ip_solve_ms.snapshot())],
        );
        prom::histogram(
            &mut out,
            "gleipnir_refine_duration_seconds",
            "Anytime refinement wall: token minted to exact bound published.",
            &[(no, t.refine_ms.snapshot())],
        );
        out
    }
}

/// A `{count,p50,p95,p99}` JSON summary of one latency histogram
/// (milliseconds, matching the sibling `stage_totals_ms`).
fn quantiles_json(h: &telemetry::Histogram) -> String {
    let snap = h.snapshot();
    format!(
        "{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        snap.count,
        json_ms(snap.quantile_ms(0.50)),
        json_ms(snap.quantile_ms(0.95)),
        json_ms(snap.quantile_ms(0.99)),
    )
}
