//! Just enough HTTP/1.1 over `std::net` for the analysis endpoints.
//!
//! One request per connection (`Connection: close`), explicit
//! `Content-Length` bodies only — no chunked encoding, no keep-alive, no
//! TLS. The parser is defensive: header and body sizes are capped, and
//! the timeout is a **whole-request deadline**, not per-read — a client
//! trickling one byte per interval cannot reset the clock, so a stalled
//! or malicious connection costs a worker at most `timeout`
//! ([`HttpError::Timeout`], mapped to `408`), never a hang.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed request: method, path, body. Headers beyond `Content-Length`
/// are intentionally dropped — no endpoint needs them.
#[derive(Debug)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target (query strings are not split off; no endpoint takes
    /// one).
    pub path: String,
    /// The raw request body.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The read timed out (client stalled) → `408`.
    Timeout,
    /// The declared body (or the headers) exceed the configured cap → `413`.
    TooLarge,
    /// The bytes are not a parseable HTTP/1.1 request → `400`.
    Malformed(String),
    /// The peer closed the connection before a full request arrived.
    Closed,
    /// Any other I/O failure. The payload is kept for `{:?}` diagnostics
    /// even though no handler branches on it.
    Io(#[allow(dead_code)] std::io::Error),
}

const MAX_HEADER_BYTES: usize = 64 * 1024;

fn map_io(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// One read bounded by the whole-request deadline: the stream's read
/// timeout is re-armed with the *remaining* budget before every read, so
/// progress never extends the total allowance.
fn read_some(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> Result<usize, HttpError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HttpError::Timeout);
    }
    let _ = stream.set_read_timeout(Some(remaining));
    stream.read(chunk).map_err(map_io)
}

/// Reads one full request from the stream, spending at most `timeout`
/// wall-clock across all reads.
///
/// # Errors
///
/// [`HttpError`] describing how the request failed to materialize.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    timeout: Duration,
) -> Result<HttpRequest, HttpError> {
    let deadline = Instant::now() + timeout;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge);
        }
        let n = read_some(stream, &mut chunk, deadline)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(HttpError::Closed)
            } else {
                Err(HttpError::Malformed("connection closed mid-headers".into()))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 headers".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_some(stream, &mut chunk, deadline)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest { method, path, body })
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a JSON response (plus `Connection: close`) and flushes. Write
/// errors are returned so callers can count them, but a client that went
/// away mid-response is not a server problem.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let mut extra = String::new();
    if status == 429 {
        extra.push_str("Retry-After: 1\r\n");
    }
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<HttpRequest, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream, 1024, Duration::from_secs(2));
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip(b"POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let err = round_trip(b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::TooLarge));
    }

    #[test]
    fn garbage_is_malformed() {
        let err = round_trip(b"NOT A REQUEST\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn trickling_client_hits_the_whole_request_deadline() {
        // Each individual read succeeds well inside any per-read timeout;
        // only a whole-request deadline stops this.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            for chunk in [&b"POST /x"[..], b" HTTP/1.1\r\n", b"X: y\r\n", b"X2: y\r\n"] {
                let _ = s.write_all(chunk);
                std::thread::sleep(Duration::from_millis(150));
            }
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let start = Instant::now();
        let err = read_request(&mut stream, 1024, Duration::from_millis(300)).unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "deadline enforced"
        );
        drop(writer.join());
    }
}
