//! Just enough HTTP/1.1 for the analysis endpoints, as a **pure,
//! incremental parser** the reactor can call on whatever bytes have
//! arrived so far.
//!
//! The parser never does I/O: the reactor accumulates bytes per
//! connection and asks [`parse_request`] whether a complete request is
//! sitting at the front of the buffer. This is what makes keep-alive and
//! pipelining natural — leftover bytes after one request are simply the
//! start of the next — and what makes the deadline story honest: wall
//! clock is owned by the event loop (a trickling client is cut off by the
//! *whole-request* deadline, not a per-read timeout), while this module
//! only ever decides `Incomplete` / `Request` / `Error`.
//!
//! Explicit `Content-Length` bodies only — no chunked encoding, no TLS.
//! Header and body sizes are capped ([`ParseError::TooLarge`] → `413`);
//! anything unparseable is [`ParseError::Malformed`] → `400`.

/// A parsed request: method, path, tenant, body. Headers beyond
/// `Content-Length`, `Connection`, and `X-Tenant` are intentionally
/// dropped — no endpoint needs them.
#[derive(Debug)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target, query string included — the router splits on `?`
    /// (only `/metrics?format=…` interprets one).
    pub path: String,
    /// The `X-Tenant` header, when present — the identity per-tenant
    /// queue quotas meter on (absent = the anonymous tenant).
    pub tenant: Option<String>,
    /// The raw request body.
    pub body: Vec<u8>,
}

/// Why the bytes at the front of the buffer can never become a request.
#[derive(Debug)]
pub enum ParseError {
    /// The headers (or the declared body) exceed the configured cap → `413`.
    TooLarge,
    /// The bytes are not a parseable HTTP/1.1 request → `400`.
    Malformed(String),
}

/// One [`parse_request`] step over a connection's receive buffer.
#[derive(Debug)]
pub enum Parse {
    /// No complete request yet — keep reading (the reactor's deadline
    /// decides when patience runs out).
    Incomplete,
    /// A complete request occupied `buf[..consumed]`.
    Request {
        /// The parsed request.
        request: HttpRequest,
        /// Bytes to drain off the front of the buffer.
        consumed: usize,
        /// Whether the client asked to keep the connection open
        /// (HTTP/1.1 default, overridable by `Connection:`).
        keep_alive: bool,
    },
    /// The buffer can never become a request; answer and close.
    Error(ParseError),
}

/// Longest the head (request line + headers) may grow before `413`.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Tries to parse one complete request off the front of `buf`.
pub fn parse_request(buf: &[u8], max_body: usize) -> Parse {
    let Some(header_end) = find_blank_line(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Error(ParseError::TooLarge);
        }
        return Parse::Incomplete;
    };
    if header_end > MAX_HEADER_BYTES {
        return Parse::Error(ParseError::TooLarge);
    }
    let head = match std::str::from_utf8(&buf[..header_end]) {
        Ok(head) => head,
        Err(_) => return Parse::Error(ParseError::Malformed("non-UTF-8 headers".into())),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next() else {
        return Parse::Error(ParseError::Malformed("missing method".into()));
    };
    let Some(path) = parts.next() else {
        return Parse::Error(ParseError::Malformed("missing path".into()));
    };
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Parse::Error(ParseError::Malformed(format!("bad version `{version}`")));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    let mut tenant: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Parse::Error(ParseError::Malformed("bad Content-Length".into()))
                    }
                };
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("x-tenant") && !value.is_empty() {
                tenant = Some(value.to_string());
            }
        }
    }
    if content_length > max_body {
        return Parse::Error(ParseError::TooLarge);
    }
    let body_start = header_end + 4;
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return Parse::Incomplete;
    }
    Parse::Request {
        request: HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            tenant,
            body: buf[body_start..consumed].to_vec(),
        },
        consumed,
        keep_alive,
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Serializes one complete response. The reactor owns delivery (and the
/// no-torn-response guarantee: a response either leaves the write buffer
/// whole or the connection is visibly dead); this function only frames.
pub fn response_bytes(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    framed(status, content_type, body, keep_alive, None)
}

/// [`response_bytes`] plus an `X-Trace-Id` header, so a client can fetch
/// `GET /trace/<id>` for the request that produced this response.
pub fn response_bytes_traced(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    trace_id: u64,
) -> Vec<u8> {
    framed(status, content_type, body, keep_alive, Some(trace_id))
}

fn framed(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    trace_id: Option<u64>,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    );
    if status == 429 {
        head.push_str("Retry-After: 1\r\n");
    }
    if let Some(id) = trace_id {
        head.push_str(&format!(
            "X-Trace-Id: {}\r\n",
            gleipnir_telemetry::format_trace_id(id)
        ));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// [`response_bytes`] for the common JSON case.
pub fn json_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    response_bytes(status, "application/json", body.as_bytes(), keep_alive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(raw: &[u8]) -> (HttpRequest, usize, bool) {
        match parse_request(raw, 1024) {
            Parse::Request {
                request,
                consumed,
                keep_alive,
            } => (request, consumed, keep_alive),
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let (req, consumed, keep_alive) = full(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.body, b"hello");
        assert_eq!(consumed, raw.len());
        assert!(keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_get_without_body() {
        let (req, _, _) = full(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn x_tenant_header_is_retained() {
        let (req, _, _) = full(b"GET /analyze HTTP/1.1\r\nX-Tenant: acme\r\n\r\n");
        assert_eq!(req.tenant.as_deref(), Some("acme"));
        let (req, _, _) = full(b"GET /analyze HTTP/1.1\r\nx-tenant:  bob \r\n\r\n");
        assert_eq!(req.tenant.as_deref(), Some("bob"), "case + whitespace");
        let (req, _, _) = full(b"GET /analyze HTTP/1.1\r\nX-Tenant:\r\n\r\n");
        assert_eq!(req.tenant, None, "empty value = anonymous");
        let (req, _, _) = full(b"GET /analyze HTTP/1.1\r\n\r\n");
        assert_eq!(req.tenant, None);
    }

    #[test]
    fn anytime_statuses_have_reason_phrases() {
        let text = String::from_utf8(response_bytes(202, "application/json", b"{}", true)).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        let text = String::from_utf8(response_bytes(204, "application/json", b"", true)).unwrap();
        assert!(text.starts_with("HTTP/1.1 204 No Content\r\n"));
        assert!(text.contains("Content-Length: 0\r\n"));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (_, _, keep_alive) = full(raw);
        assert!(!keep_alive);
        let (_, _, keep_alive) = full(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!keep_alive);
        let (_, _, keep_alive) = full(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(keep_alive);
    }

    #[test]
    fn pipelined_requests_consume_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, consumed, _) = full(raw);
        assert_eq!(req.path, "/a");
        let (req, consumed2, _) = full(&raw[consumed..]);
        assert_eq!(req.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn partial_requests_are_incomplete_not_errors() {
        for cut in [0, 5, 20, 30] {
            let raw = &b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel"[..];
            let cut = cut.min(raw.len());
            assert!(
                matches!(parse_request(&raw[..cut], 1024), Parse::Incomplete),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert!(matches!(
            parse_request(raw, 1024),
            Parse::Error(ParseError::TooLarge)
        ));
    }

    #[test]
    fn oversized_headers_are_rejected_even_unterminated() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEADER_BYTES + 2));
        assert!(matches!(
            parse_request(&raw, 1024),
            Parse::Error(ParseError::TooLarge)
        ));
    }

    #[test]
    fn garbage_is_malformed() {
        assert!(matches!(
            parse_request(b"NOT A REQUEST\r\n\r\n", 1024),
            Parse::Error(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_framing_is_exact() {
        let bytes = response_bytes(200, "application/json", b"{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let bytes = json_response(429, "{\"ok\":false}", false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn traced_responses_carry_the_trace_id_header() {
        let bytes = response_bytes_traced(200, "application/json", b"{}", true, 0xabc);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("X-Trace-Id: 0000000000000abc\r\n"));
        let bytes = response_bytes(200, "application/json", b"{}", true);
        assert!(!String::from_utf8(bytes).unwrap().contains("X-Trace-Id"));
    }
}
