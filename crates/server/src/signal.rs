//! Graceful-shutdown signal wiring without any external crates.
//!
//! `std` has no signal API, so on Unix we declare libc's classic
//! `signal(2)` ourselves (the C library is already linked) and point
//! SIGINT/SIGTERM at a handler that only stores to a static atomic — the
//! one thing that is unconditionally async-signal-safe. The daemon's main
//! thread polls the flag and runs the actual (non-signal-safe) shutdown:
//! stop accepting, drain in-flight analyses, persist the certificate
//! store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs SIGINT (ctrl-c) and SIGTERM handlers (once) and returns the
/// flag they set. On non-Unix platforms the flag simply never fires and
/// the daemon runs until killed.
pub fn install_shutdown_signals() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        });
    }
    &SHUTDOWN
}
