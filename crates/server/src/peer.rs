//! Fleet certificate gossip: pull `/certs/since/<cursor>` from each
//! configured peer on an interval and import whatever verifies.
//!
//! The loop is deliberately dumb on the network side and strict on the
//! proof side: the transport is a plain short-lived HTTP/1.1 GET with
//! socket timeouts, and **every** received record is re-certified by
//! [`gleipnir_core::import_sync`] (the SDP rebuilt from its content
//! address, the stored dual re-proving the stored ε) before it can touch
//! the cache. A malicious, stale, or corrupt peer therefore costs cache
//! misses and a `peer_records_rejected` tick — never an unsound bound.
//!
//! Cursors advance only on a fully decoded body (`import_sync` on a torn
//! body is an `Err`), so a flaky transfer is retried from the same
//! sequence number. Because verified duplicates count as
//! `already_present`, re-pulling from zero — e.g. after this process
//! restarts and its cursor map is empty — is idempotent.

use crate::server::{persist_now, Shared};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Socket-level timeout for one peer pull (connect, read, write each).
const PEER_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Largest sync body accepted from a peer (matches the order of the
/// store's own record cap; a runaway peer must not balloon memory).
const MAX_SYNC_BODY: usize = 64 << 20;

/// Runs until shutdown: one pull per peer per interval.
pub(crate) fn gossip_loop(shared: &Shared) {
    let mut cursors: HashMap<String, u64> = HashMap::new();
    loop {
        for peer in &shared.config.peers {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let cursor = cursors.get(peer).copied().unwrap_or(0);
            match pull(peer, cursor) {
                Ok(body) => match gleipnir_core::import_sync(&body, &shared.engine) {
                    Ok(stats) => {
                        let m = &shared.metrics;
                        m.peer_pull_ok.fetch_add(1, Ordering::Relaxed);
                        m.peer_records_received
                            .fetch_add(stats.received, Ordering::Relaxed);
                        m.peer_records_added
                            .fetch_add(stats.added, Ordering::Relaxed);
                        m.peer_records_rejected
                            .fetch_add(stats.rejected, Ordering::Relaxed);
                        cursors.insert(peer.clone(), stats.next_seq);
                        if stats.added > 0 {
                            // Route the imports through the one persist
                            // path: they land in the local sequence log
                            // (so sync is transitive) and on disk when
                            // the store is disk-backed.
                            persist_now(shared);
                        }
                    }
                    Err(_reason) => {
                        // Unusable body (bad magic/version, torn framing):
                        // keep the cursor, count the failure, retry next
                        // interval.
                        shared.metrics.peer_pull_err.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Err(_) => {
                    shared.metrics.peer_pull_err.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Interval sleep in small slices so shutdown stays prompt.
        let deadline = Instant::now() + shared.config.peer_interval;
        while Instant::now() < deadline {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// One `GET /certs/since/<cursor>` against a peer, returning the raw
/// body. Short-lived connection (`Connection: close`), bounded by socket
/// timeouts and [`MAX_SYNC_BODY`].
fn pull(peer: &str, cursor: u64) -> io::Result<Vec<u8>> {
    let addr = peer
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "peer resolved to no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, PEER_IO_TIMEOUT)?;
    stream.set_read_timeout(Some(PEER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(PEER_IO_TIMEOUT))?;
    let request =
        format!("GET /certs/since/{cursor} HTTP/1.1\r\nHost: {peer}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;

    // Read the whole response (the peer closes after it), then split and
    // validate the head.
    let mut raw = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.len() > MAX_SYNC_BODY {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "peer response exceeds the sync body cap",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    if status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("peer answered {status}"),
        ));
    }
    let body = raw[header_end + 4..].to_vec();
    // Cross-check Content-Length when present: a short read must not
    // masquerade as a (torn) body — import_sync would reject it anyway,
    // but failing here keeps transport and verification errors distinct.
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let declared: usize = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
                if declared != body.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short read of peer sync body",
                    ));
                }
            }
        }
    }
    Ok(body)
}
