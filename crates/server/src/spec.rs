//! Textual parameter specs shared by every user-facing surface.
//!
//! The CLI flags (`--noise bitflip:1e-4`, `--method adaptive`) and the
//! server's JSON fields (`"noise":"bitflip:1e-4"`, `"method":"adaptive"`)
//! speak the same little languages; this module is their single parser so
//! the two surfaces can never drift apart.

use gleipnir_core::{AdaptiveConfig, Method, TierPolicy};
use gleipnir_noise::NoiseModel;
use gleipnir_sim::BasisState;

/// The default noise spec applied when none is given.
pub const DEFAULT_NOISE_SPEC: &str = "bitflip:1e-4";

/// The default MPS width when none is given.
pub const DEFAULT_WIDTH: usize = 32;

/// Parses a noise spec: `bitflip:P`, `depolarizing:P1,P2`, `ampdamp:G`, or
/// `none`.
///
/// # Errors
///
/// A human-readable message naming the offending spec.
pub fn parse_noise_spec(spec: &str) -> Result<NoiseModel, String> {
    if spec == "none" {
        return Ok(NoiseModel::Noiseless);
    }
    if let Some(p) = spec.strip_prefix("bitflip:") {
        let p: f64 = p
            .parse()
            .map_err(|_| format!("bad probability in `{spec}`"))?;
        return Ok(NoiseModel::uniform_bit_flip(p));
    }
    if let Some(g) = spec.strip_prefix("ampdamp:") {
        let g: f64 = g.parse().map_err(|_| format!("bad rate in `{spec}`"))?;
        return Ok(NoiseModel::uniform_amplitude_damping(g));
    }
    if let Some(ps) = spec.strip_prefix("depolarizing:") {
        let parts: Vec<&str> = ps.split(',').collect();
        if parts.len() != 2 {
            return Err(format!("depolarizing needs two rates, got `{spec}`"));
        }
        let p1: f64 = parts[0]
            .parse()
            .map_err(|_| format!("bad rate in `{spec}`"))?;
        let p2: f64 = parts[1]
            .parse()
            .map_err(|_| format!("bad rate in `{spec}`"))?;
        return Ok(NoiseModel::uniform_depolarizing(p1, p2));
    }
    Err(format!("unknown noise spec `{spec}`"))
}

/// Parses a method name (`state` | `adaptive` | `worst` | `lqr`; `None`
/// defaults to `state`) at the given MPS width.
///
/// # Errors
///
/// A message naming the unknown method.
pub fn parse_method_spec(name: Option<&str>, width: usize) -> Result<Method, String> {
    match name {
        None | Some("state") => Ok(Method::StateAware { mps_width: width }),
        Some("adaptive") => Ok(Method::Adaptive(AdaptiveConfig {
            max_width: width.max(2),
            ..AdaptiveConfig::default()
        })),
        Some("worst") => Ok(Method::WorstCase),
        Some("lqr") => Ok(Method::LqrFullSim),
        Some(other) => Err(format!(
            "unknown method `{other}` (expected state|adaptive|worst|lqr)"
        )),
    }
}

/// Parses a tier-policy spec: `exact` (default — cold SDP solves only,
/// bit-identical to the pre-tiering engine), `fast` (closed forms + warm
/// starts), `closed` (closed forms only), or `warm` (warm starts only).
/// `None` defaults to `exact`.
///
/// # Errors
///
/// A message naming the unknown policy.
pub fn parse_tier_spec(name: Option<&str>) -> Result<TierPolicy, String> {
    match name {
        None | Some("exact") => Ok(TierPolicy::exact()),
        Some("fast") => Ok(TierPolicy::fast()),
        Some("closed") => Ok(TierPolicy {
            closed_form: true,
            warm_start: false,
        }),
        Some("warm") => Ok(TierPolicy {
            closed_form: false,
            warm_start: true,
        }),
        Some(other) => Err(format!(
            "unknown tier policy `{other}` (expected exact|fast|closed|warm)"
        )),
    }
}

/// Parses an input bit string (`"0101"`) for an `n`-qubit program.
///
/// # Errors
///
/// A message giving the expected width.
pub fn parse_input_bits(bits: &str, n: usize) -> Result<BasisState, String> {
    if bits.len() != n || !bits.chars().all(|c| c == '0' || c == '1') {
        return Err(format!("input must be {n} binary digits, got `{bits}`"));
    }
    Ok(BasisState::from_bits(
        &bits.chars().map(|c| c == '1').collect::<Vec<_>>(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_specs_round_trip() {
        assert!(matches!(
            parse_noise_spec("none").unwrap(),
            NoiseModel::Noiseless
        ));
        parse_noise_spec("bitflip:1e-4").unwrap();
        parse_noise_spec("depolarizing:1e-4,2e-4").unwrap();
        assert!(matches!(
            parse_noise_spec("ampdamp:0.01").unwrap(),
            NoiseModel::UniformAmplitudeDamping { .. }
        ));
        for bad in ["bitflip:x", "depolarizing:1", "ampdamp:x", "gauss:1", ""] {
            assert!(parse_noise_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn tier_specs() {
        assert!(parse_tier_spec(None).unwrap().is_exact());
        assert!(parse_tier_spec(Some("exact")).unwrap().is_exact());
        assert_eq!(parse_tier_spec(Some("fast")).unwrap(), TierPolicy::fast());
        let closed = parse_tier_spec(Some("closed")).unwrap();
        assert!(closed.closed_form && !closed.warm_start);
        let warm = parse_tier_spec(Some("warm")).unwrap();
        assert!(!warm.closed_form && warm.warm_start);
        assert!(parse_tier_spec(Some("turbo")).is_err());
    }

    #[test]
    fn method_specs() {
        assert!(matches!(
            parse_method_spec(None, 8).unwrap(),
            Method::StateAware { mps_width: 8 }
        ));
        assert!(matches!(
            parse_method_spec(Some("worst"), 8).unwrap(),
            Method::WorstCase
        ));
        assert!(parse_method_spec(Some("quantum"), 8).is_err());
    }

    #[test]
    fn input_bits() {
        assert!(parse_input_bits("010", 3).is_ok());
        assert!(parse_input_bits("01", 3).is_err());
        assert!(parse_input_bits("012", 3).is_err());
    }
}
