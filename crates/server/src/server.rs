//! The daemon: accept loop, bounded connection queue, worker threads,
//! request routing, and graceful shutdown.
//!
//! ## Threading model
//!
//! One **acceptor** thread owns the (non-blocking) listener. Accepted
//! connections go into a bounded queue; when the queue is full the
//! acceptor immediately answers `429 Too Many Requests` and closes —
//! load is shed at the door instead of letting latency (and memory)
//! collapse the process. A small pool of **HTTP workers** pops
//! connections and serves one request each (`Connection: close`). The
//! workers only parse and orchestrate: the SDP heavy lifting runs on the
//! shared [`Engine`]'s own worker pool, so `workers` controls request
//! concurrency and `threads` controls solve parallelism independently.
//!
//! ## Shutdown
//!
//! [`ServerHandle::request_shutdown`] (wired to SIGINT/SIGTERM by the
//! `gleipnir serve` binary) stops the acceptor, lets the workers **drain**
//! the queue and their in-flight analyses, then persists any certificates
//! not yet on disk. Nothing is aborted mid-solve.

use crate::config::ServerConfig;
use crate::http::{read_request, write_json, HttpError, HttpRequest};
use crate::json;
use crate::metrics::Metrics;
use crate::wire;
use gleipnir_core::jsonfmt::json_ms;
use gleipnir_core::{AnalysisError, AnalysisRequest, CertStore, Engine, EngineOptions};
use std::collections::VecDeque;
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// The listen address could not be bound.
    Bind(std::io::Error),
    /// Engine construction failed (e.g. malformed `GLEIPNIR_THREADS`).
    Engine(AnalysisError),
    /// The certificate store directory could not be opened or read.
    Store(std::io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind(e) => write!(f, "could not bind listen address: {e}"),
            ServerError::Engine(e) => write!(f, "could not build engine: {e}"),
            ServerError::Store(e) => write!(f, "could not open certificate store: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// The bounded accept queue: `try_push` from the acceptor, blocking `pop`
/// from workers. Capacity overflow is the caller's signal to shed.
struct ConnQueue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless full; a full queue hands the stream back for
    /// shedding.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Current queue length (authoritative — read under the lock, so
    /// `/metrics` can never report a torn or wrapped depth).
    fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Pops the next connection; `None` once shutdown is requested **and**
    /// the queue is drained (already-queued clients still get served).
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    fn notify_all(&self) {
        self.ready.notify_all();
    }
}

/// Concurrent shed responses allowed before overflow connections are
/// dropped without a `429` (a hard shed). Bounds both thread count and
/// memory under an accept storm; the acceptor itself never writes.
const MAX_SHED_THREADS: usize = 32;

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    engine: Engine,
    metrics: Metrics,
    config: ServerConfig,
    store: Option<Mutex<CertStore>>,
    queue: ConnQueue,
    shutdown: AtomicBool,
    /// Live shed-responder threads (capped by [`MAX_SHED_THREADS`]).
    shed_inflight: std::sync::atomic::AtomicUsize,
}

/// A running server. Dropping the handle shuts the server down gracefully
/// (request + drain + persist); call [`ServerHandle::request_shutdown`] /
/// [`ServerHandle::join`] to control the two phases yourself.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (with the real port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (tests inspect cache stats through this).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Asks the server to stop: the acceptor exits, workers drain the
    /// queue and finish in-flight analyses. Non-blocking; pair with
    /// [`ServerHandle::join`].
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.notify_all();
        // The acceptor blocks in `accept()` (zero added latency on the
        // serving path); a throwaway self-connection wakes it so it can
        // observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for every thread to finish and persists any certificates not
    /// yet on disk. Implies [`ServerHandle::request_shutdown`].
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.request_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        persist_now(&self.shared);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Builds the engine, warms it from the certificate store (when
/// configured), binds the listener, and spawns the acceptor + workers.
///
/// # Errors
///
/// [`ServerError`] when the engine, store, or listener cannot be set up.
pub fn spawn(config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let engine = Engine::with_options(EngineOptions {
        solver: Default::default(),
        threads: config.threads,
    })
    .map_err(ServerError::Engine)?;

    let metrics = Metrics::new();
    let store = match &config.cache_dir {
        Some(dir) => {
            let mut store = CertStore::open(dir).map_err(ServerError::Store)?;
            let stats = store.load_into(&engine).map_err(ServerError::Store)?;
            metrics.note_load(&stats);
            eprintln!(
                "gleipnir-server: certificate store {}: {} loaded, {} rejected{}",
                store.path().display(),
                stats.loaded,
                stats.rejected,
                if stats.truncated { " (torn tail)" } else { "" }
            );
            Some(Mutex::new(store))
        }
        None => None,
    };

    let listener = TcpListener::bind(&config.addr).map_err(ServerError::Bind)?;
    let addr = listener.local_addr().map_err(ServerError::Bind)?;

    let shared = Arc::new(Shared {
        engine,
        metrics,
        queue: ConnQueue::new(config.queue_capacity),
        store,
        shutdown: AtomicBool::new(false),
        shed_inflight: std::sync::atomic::AtomicUsize::new(0),
        config,
    });

    let mut workers = Vec::with_capacity(shared.config.workers.max(1));
    for i in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("gleipnir-http-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn http worker"),
        );
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gleipnir-accept".into())
            .spawn(move || acceptor_loop(&shared, &listener))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        shared,
        addr,
        acceptor: Some(acceptor),
        workers,
    })
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        // Blocking accept: no polling latency on the serving path.
        // `request_shutdown` wakes this with a throwaway self-connection.
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // the wakeup (or a late client) during shutdown
                }
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                if let Err(stream) = shared.queue.try_push(stream) {
                    shared.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    spawn_shed(shared, stream);
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, interrupted, …): back
                // off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Sheds one connection off the acceptor's thread: a short-lived
/// responder writes the `429` so a burst of slow clients can never stall
/// `accept()`. Past [`MAX_SHED_THREADS`] concurrent responders the
/// connection is dropped outright — under that much pressure a closed
/// socket is still bounded, honest backpressure.
fn spawn_shed(shared: &Arc<Shared>, stream: TcpStream) {
    if shared.shed_inflight.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shared.shed_inflight.fetch_sub(1, Ordering::SeqCst);
        return; // hard shed: drop without a response
    }
    let worker_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("gleipnir-shed".into())
        .spawn(move || {
            shed(stream);
            worker_shared.shed_inflight.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // Could not spawn (resource exhaustion): the connection was moved
        // into the failed closure and dropped with it; undo the count.
        shared.shed_inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Sheds one connection with `429` — bounded time, never blocks the
/// acceptor on a slow client.
fn shed(mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = write_json(
        &mut stream,
        429,
        &wire::error_json("server overloaded: accept queue full, retry later"),
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain (bounded) whatever the client already sent: closing a socket
    // with unread input RSTs the connection, which could discard the 429
    // out of the client's receive buffer before it reads it.
    let deadline = std::time::Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 4096];
    while std::time::Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(mut stream) = shared.queue.pop(&shared.shutdown) {
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        serve_connection(shared, &mut stream);
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: &mut TcpStream) {
    // Accepted sockets may inherit the listener's non-blocking flag on
    // some platforms; force blocking. The read deadline is enforced
    // inside `read_request` (whole-request, not per-read).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    match read_request(
        stream,
        shared.config.max_body_bytes,
        shared.config.read_timeout,
    ) {
        Ok(request) => route(shared, stream, &request),
        Err(HttpError::Closed) => {}
        Err(HttpError::Io(_)) => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            let (status, msg) = match e {
                HttpError::Timeout => (408, "request read timed out".to_string()),
                HttpError::TooLarge => (413, "request too large".to_string()),
                HttpError::Malformed(m) => (400, format!("malformed request: {m}")),
                HttpError::Closed | HttpError::Io(_) => unreachable!(),
            };
            let _ = write_json(stream, status, &wire::error_json(&msg));
        }
    }
}

fn route(shared: &Arc<Shared>, stream: &mut TcpStream, request: &HttpRequest) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_json(stream, 200, "{\"ok\":true,\"status\":\"ok\"}");
        }
        ("GET", "/metrics") => {
            let body = shared.metrics.to_json(
                shared.engine.cache_stats(),
                shared.engine.tier_stats(),
                shared.engine.threads(),
                shared.config.workers.max(1),
                shared.queue.len(),
                shared.config.queue_capacity.max(1),
                shared.store.is_some(),
            );
            let _ = write_json(stream, 200, &body);
        }
        ("POST", "/analyze") => handle_analyze(shared, stream, &request.body),
        ("POST", "/batch") => handle_batch(shared, stream, &request.body),
        (_, "/healthz" | "/metrics" | "/analyze" | "/batch") => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            let _ = write_json(stream, 405, &wire::error_json("method not allowed"));
        }
        (_, path) => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            let _ = write_json(
                stream,
                404,
                &wire::error_json(&format!("no such endpoint: {path}")),
            );
        }
    }
}

/// Parses a JSON body, mapping framing problems to `400`.
fn parse_body(body: &[u8]) -> Result<json::Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    json::parse(text).map_err(|e| e.to_string())
}

fn handle_analyze(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8]) {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(msg) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            let _ = write_json(stream, 400, &wire::error_json(&msg));
            return;
        }
    };
    let spec = match wire::analyze_spec_from_json(&value) {
        Ok(spec) => spec,
        Err(msg) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            let _ = write_json(stream, 422, &wire::error_json(&msg));
            return;
        }
    };
    match shared.engine.analyze(&spec.request) {
        Ok(report) => {
            shared.metrics.note_report(&report);
            shared.metrics.analyze_ok.fetch_add(1, Ordering::Relaxed);
            persist_now(shared);
            let _ = write_json(stream, 200, &wire::analyze_ok_json(&spec, &report));
        }
        Err(e) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            let _ = write_json(stream, 422, &wire::error_json(&e.to_string()));
        }
    }
}

fn handle_batch(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8]) {
    let parsed = parse_body(body).and_then(|v| wire::batch_specs_from_json(&v));
    let specs = match parsed {
        Ok(specs) => specs,
        Err(msg) => {
            shared.metrics.batch_err.fetch_add(1, Ordering::Relaxed);
            let _ = write_json(stream, 400, &wire::error_json(&msg));
            return;
        }
    };
    let requests: Vec<AnalysisRequest> = specs
        .iter()
        .filter_map(|s| s.as_ref().ok().map(|s| s.request.clone()))
        .collect();
    let outcome = shared.engine.analyze_batch_detailed(&requests);
    let mut analyzed = outcome.results.into_iter();
    let entries: Vec<String> = specs
        .iter()
        .map(|entry| match entry {
            Ok(spec) => match analyzed.next().expect("one result per prepared request") {
                Ok(report) => {
                    shared.metrics.note_report(&report);
                    wire::analyze_ok_json(spec, &report)
                }
                Err(e) => wire::error_json(&e.to_string()),
            },
            Err(msg) => wire::error_json(msg),
        })
        .collect();
    shared.metrics.batch_ok.fetch_add(1, Ordering::Relaxed);
    persist_now(shared);
    let body = format!(
        "{{\"ok\":true,\"results\":[{}],\"worker_threads\":{},\"elapsed_ms\":{}}}",
        entries.join(","),
        outcome.worker_threads,
        json_ms(outcome.elapsed.as_secs_f64() * 1e3),
    );
    let _ = write_json(stream, 200, &body);
}

/// Appends any not-yet-persisted certificates to the store (no-op without
/// a `--cache-dir`). Called after each served analysis and at shutdown, so
/// even a `kill -9` loses at most the last request's certificates.
fn persist_now(shared: &Shared) {
    if let Some(store) = &shared.store {
        let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
        match store.persist_new(&shared.engine) {
            Ok(n) => {
                if n > 0 {
                    shared
                        .metrics
                        .persisted_records
                        .fetch_add(n, Ordering::Relaxed);
                }
            }
            Err(e) => eprintln!("gleipnir-server: certificate persist failed: {e}"),
        }
    }
}
