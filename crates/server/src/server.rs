//! The daemon: reactor thread, worker pool, request routing, fleet
//! certificate sharing, and graceful shutdown.
//!
//! ## Threading model
//!
//! One **reactor** thread owns the non-blocking listener and every
//! connection (see [`crate::reactor`]): it accepts, reads, parses
//! (keep-alive and pipelining included), sheds with `429` past capacity,
//! enforces read deadlines, and flushes responses. Parsed requests go to
//! a small pool of **workers** which only route and orchestrate: the SDP
//! heavy lifting runs on the shared [`Engine`]'s own pool, so `workers`
//! controls request concurrency and `threads` controls solve parallelism
//! independently. Finished responses travel back to the reactor as
//! pre-framed bytes through a completion bin plus a waker.
//!
//! ## Fleet certificate sharing
//!
//! Every server keeps a [`CertStore`] (disk-backed with `--cache-dir`,
//! ephemeral otherwise) whose **sequence log** records each verified
//! certificate. `GET /certs/since/<seq>` serves the log suffix in the
//! sync wire format, and the `--peers` gossip loop ([`crate::peer`])
//! pulls the same endpoint on other instances. Imported records are
//! **re-certified** — the SDP rebuilt from the content address, the
//! stored dual must re-prove the stored ε — before they touch the cache,
//! so a malicious or corrupt peer degrades to cache misses, never to an
//! unsound bound.
//!
//! ## Shutdown
//!
//! [`ServerHandle::request_shutdown`] (wired to SIGINT/SIGTERM by the
//! `gleipnir serve` binary) stops the acceptor, lets workers **drain**
//! already-parsed requests, flushes every response, then persists any
//! certificates not yet on disk. Nothing is aborted mid-solve.

use crate::config::ServerConfig;
use crate::http;
use crate::json;
use crate::metrics::{Metrics, MetricsView, VERSION};
use crate::peer;
use crate::reactor::{waker_pair, Completion, JobQueue, Reactor, Waker};
use crate::wire;
use gleipnir_core::jsonfmt::{json_f64, json_ms, json_str, report_json};
use gleipnir_core::{
    AnalysisError, AnalysisRequest, CertStore, Engine, EngineOptions, RefineStatus, RefineToken,
    SchedulerDepths, TenantQuotas,
};
use gleipnir_telemetry as telemetry;
use gleipnir_telemetry::{detail, SpanName};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// The listen address could not be bound.
    Bind(std::io::Error),
    /// Engine construction failed (e.g. malformed `GLEIPNIR_THREADS`).
    Engine(AnalysisError),
    /// The certificate store directory could not be opened or read.
    Store(std::io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind(e) => write!(f, "could not bind listen address: {e}"),
            ServerError::Engine(e) => write!(f, "could not build engine: {e}"),
            ServerError::Store(e) => write!(f, "could not open certificate store: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// State shared by the reactor, the workers, the gossip loop, and the
/// handle.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) metrics: Metrics,
    pub(crate) config: ServerConfig,
    /// Always present: disk-backed with `--cache-dir`, ephemeral
    /// otherwise — either way the sequence log feeds `/certs/since/`.
    pub(crate) store: Mutex<CertStore>,
    /// Whether `store` writes through to disk (for `/metrics`).
    pub(crate) store_on_disk: bool,
    /// Parsed requests, reactor → workers.
    pub(crate) jobs: JobQueue,
    /// Framed responses, workers → reactor.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Pokes the reactor out of `poll(2)` when a completion lands.
    pub(crate) waker: Waker,
    pub(crate) shutdown: AtomicBool,
    /// Per-tenant, per-class admission quotas (`--tenant-quota`; limit 0
    /// admits everything). The reactor admits under these before a request
    /// touches the job queue; the permit rides on the `Job` and frees its
    /// slot when the response has been framed.
    pub(crate) quotas: TenantQuotas,
    /// Request context for live anytime tokens, so `GET /refine/<token>`
    /// can render the same report envelope `POST /analyze` would have.
    /// Bounded: past [`REFINE_SPECS_RETAINED`] the oldest entry ages out
    /// (polls then fall back to a bound-only envelope).
    refine_specs: Mutex<RefineSpecs>,
}

/// See [`Shared::refine_specs`].
#[derive(Default)]
struct RefineSpecs {
    by_token: HashMap<String, wire::AnalyzeSpec>,
    order: VecDeque<String>,
}

/// How many anytime request specs are kept for report rendering.
const REFINE_SPECS_RETAINED: usize = 1024;

impl Shared {
    /// How many connections may be in service before new ones are shed
    /// with `429`. Mirrors the old thread-per-connection admission
    /// arithmetic: `workers` being served plus `queue_capacity` waiting.
    pub(crate) fn max_serving_conns(&self) -> usize {
        self.config.workers.max(1) + self.config.queue_capacity.max(1)
    }
}

/// A running server. Dropping the handle shuts the server down gracefully
/// (request + drain + persist); call [`ServerHandle::request_shutdown`] /
/// [`ServerHandle::join`] to control the two phases yourself.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (with the real port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (tests inspect cache stats through this).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Asks the server to stop: the reactor stops accepting, workers
    /// drain already-parsed requests, every response is flushed.
    /// Non-blocking; pair with [`ServerHandle::join`].
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.jobs.notify_all();
        self.shared.waker.wake();
    }

    /// Waits for every thread to finish and persists any certificates not
    /// yet on disk. Implies [`ServerHandle::request_shutdown`].
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.request_shutdown();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
        persist_now(&self.shared);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Builds the engine, warms it from the certificate store (when
/// configured), binds the listener, and spawns the reactor + workers
/// (+ the gossip loop when `--peers` is set).
///
/// # Errors
///
/// [`ServerError`] when the engine, store, or listener cannot be set up.
pub fn spawn(config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let engine = Engine::with_options(EngineOptions {
        solver: Default::default(),
        threads: config.threads,
    })
    .map_err(ServerError::Engine)?;

    let metrics = Metrics::new();
    let store_on_disk = config.cache_dir.is_some();
    let store = match &config.cache_dir {
        Some(dir) => {
            let mut store = CertStore::open(dir).map_err(ServerError::Store)?;
            let stats = store.load_into(&engine).map_err(ServerError::Store)?;
            metrics.note_load(&stats);
            eprintln!(
                "gleipnir-server: certificate store {}: {} loaded, {} rejected{}",
                store
                    .path()
                    .expect("disk-backed store has a path")
                    .display(),
                stats.loaded,
                stats.rejected,
                if stats.truncated { " (torn tail)" } else { "" }
            );
            store
        }
        // No --cache-dir: the sequence log still runs so this instance can
        // serve /certs/since/ to its peers; nothing touches disk.
        None => CertStore::ephemeral(),
    };

    let listener = TcpListener::bind(&config.addr).map_err(ServerError::Bind)?;
    let addr = listener.local_addr().map_err(ServerError::Bind)?;
    let (waker, wake_rx) = waker_pair().map_err(ServerError::Bind)?;

    let shared = Arc::new(Shared {
        engine,
        metrics,
        store: Mutex::new(store),
        store_on_disk,
        jobs: JobQueue::new(),
        completions: Mutex::new(Vec::new()),
        waker,
        shutdown: AtomicBool::new(false),
        quotas: TenantQuotas::new(config.tenant_quota),
        refine_specs: Mutex::new(RefineSpecs::default()),
        config,
    });

    let mut workers = Vec::with_capacity(shared.config.workers.max(1));
    for i in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("gleipnir-http-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn http worker"),
        );
    }
    let reactor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gleipnir-reactor".into())
            .spawn(move || Reactor::new(shared, listener, wake_rx).run())
            .expect("spawn reactor")
    };
    let gossip = if shared.config.peers.is_empty() {
        None
    } else {
        let shared = Arc::clone(&shared);
        Some(
            std::thread::Builder::new()
                .name("gleipnir-gossip".into())
                .spawn(move || peer::gossip_loop(&shared))
                .expect("spawn gossip loop"),
        )
    };

    Ok(ServerHandle {
        shared,
        addr,
        reactor: Some(reactor),
        workers,
        gossip,
    })
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.jobs.pop(&shared.shutdown) {
        let popped_ns = telemetry::now_ns();
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        // The trace root lives on the Job: the reactor minted the ids and
        // recorded the parse span; this thread records queue wait, the
        // handler, and finally the root request span, then seals the
        // trace so `GET /trace/<id>` can serve it.
        let under_root = telemetry::TraceCtx {
            trace_id: job.trace_id,
            parent: job.root_span,
        };
        telemetry::record_span(
            under_root,
            SpanName::QueueWait,
            telemetry::next_span_id(),
            job.enqueued_ns,
            popped_ns,
            0,
            0,
            0,
        );
        let handler_id = telemetry::next_span_id();
        let handler_ctx = telemetry::TraceCtx {
            trace_id: job.trace_id,
            parent: handler_id,
        };
        let response = telemetry::with_ctx(handler_ctx, || route(shared, &job.request));
        let end_ns = telemetry::now_ns();
        telemetry::record_span(
            under_root,
            SpanName::Handler,
            handler_id,
            popped_ns,
            end_ns,
            0,
            0,
            0,
        );
        let endpoint = endpoint_code(&job.request.path);
        telemetry::record_span(
            telemetry::TraceCtx {
                trace_id: job.trace_id,
                parent: 0,
            },
            SpanName::Request,
            job.root_span,
            job.parse_start_ns,
            end_ns,
            endpoint,
            0,
            0,
        );
        shared.metrics.observe_request(
            endpoint,
            end_ns.saturating_sub(job.parse_start_ns) as f64 / 1e6,
        );
        telemetry::global().finish_trace(job.trace_id);
        // Late shutdown closes keep-alive connections so drain finishes.
        let keep_alive = job.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let bytes = http::response_bytes_traced(
            response.status,
            response.content_type,
            &response.body,
            keep_alive,
            job.trace_id,
        );
        {
            let mut bin = shared.completions.lock().unwrap_or_else(|e| e.into_inner());
            bin.push(Completion {
                conn: job.conn,
                bytes,
                close: !keep_alive,
            });
        }
        shared.waker.wake();
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One routed response: the worker decides status/body, the reactor owns
/// framing context (keep-alive) and delivery.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }
}

/// The cert-sync endpoint's path prefix.
const CERTS_SINCE: &str = "/certs/since/";

/// The trace-retrieval endpoint's path prefix.
const TRACE_PREFIX: &str = "/trace/";

/// The anytime refinement-poll endpoint's path prefix.
const REFINE_PREFIX: &str = "/refine/";

/// Long-poll `wait_ms` ceiling: below the read/keep-alive deadlines so a
/// long poll always resolves (204) before the connection times out.
const MAX_WAIT_MS: u64 = 30_000;

/// Maps a request target to the request span's endpoint [`detail`] code
/// (also the per-endpoint latency-histogram key).
fn endpoint_code(target: &str) -> u32 {
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/analyze" => detail::ENDPOINT_ANALYZE,
        "/batch" => detail::ENDPOINT_BATCH,
        "/diff" => detail::ENDPOINT_DIFF,
        "/healthz" => detail::ENDPOINT_HEALTHZ,
        "/metrics" => detail::ENDPOINT_METRICS,
        p if p.starts_with(CERTS_SINCE) => detail::ENDPOINT_CERTS,
        p if p.starts_with(TRACE_PREFIX) => detail::ENDPOINT_TRACE,
        p if p.starts_with(REFINE_PREFIX) => detail::ENDPOINT_REFINE,
        _ => detail::ENDPOINT_OTHER,
    }
}

fn route(shared: &Arc<Shared>, request: &http::HttpRequest) -> Response {
    // The query string rides along in `path`; split it off here. Only
    // `/metrics?format=…` interprets one — everything else ignores it.
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (request.path.as_str(), None),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/metrics") => {
            let view = metrics_view(shared);
            let prometheus =
                query.is_some_and(|q| q.split('&').any(|kv| kv == "format=prometheus"));
            if prometheus {
                let body = shared.metrics.to_prometheus(&view);
                return Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    body: body.into_bytes(),
                };
            }
            Response::json(200, shared.metrics.to_json(&view))
        }
        ("GET", target) if target.starts_with(TRACE_PREFIX) => {
            handle_trace(shared, &target[TRACE_PREFIX.len()..])
        }
        ("GET", path) if path.starts_with(REFINE_PREFIX) => {
            handle_refine(shared, &path[REFINE_PREFIX.len()..], query)
        }
        ("POST", "/analyze") => handle_analyze(shared, &request.body),
        ("POST", "/batch") => handle_batch(shared, &request.body),
        ("POST", "/diff") => handle_diff(shared, &request.body),
        ("GET", path) if path.starts_with(CERTS_SINCE) => {
            match path[CERTS_SINCE.len()..].parse::<u64>() {
                Ok(seq) => {
                    // Serve the sequence-log suffix. The log only ever
                    // holds verified certificates, and receivers re-verify
                    // anyway — this side is plain bytes.
                    let body = {
                        let store = shared.store.lock().unwrap_or_else(|e| e.into_inner());
                        store.encode_since(seq)
                    };
                    shared.metrics.certs_served.fetch_add(1, Ordering::Relaxed);
                    Response {
                        status: 200,
                        content_type: "application/octet-stream",
                        body,
                    }
                }
                Err(_) => {
                    shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
                    Response::json(400, wire::error_json("bad sequence number"))
                }
            }
        }
        (_, "/healthz" | "/metrics" | "/analyze" | "/batch" | "/diff") => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            Response::json(405, wire::error_json("method not allowed"))
        }
        (_, path)
            if path.starts_with(CERTS_SINCE)
                || path.starts_with(TRACE_PREFIX)
                || path.starts_with(REFINE_PREFIX) =>
        {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            Response::json(405, wire::error_json("method not allowed"))
        }
        (_, path) => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            Response::json(404, wire::error_json(&format!("no such endpoint: {path}")))
        }
    }
}

/// Snapshots everything the metrics renderers need: engine stats, HTTP
/// queue depth, and the combined per-class scheduler backlog (HTTP jobs
/// waiting for a worker plus engine obligations waiting for a solver).
fn metrics_view(shared: &Arc<Shared>) -> MetricsView {
    let http = shared.jobs.depths();
    let engine = shared.engine.scheduler_depths();
    MetricsView {
        cache: shared.engine.cache_stats(),
        tiers: shared.engine.tier_stats(),
        pool_threads: shared.engine.threads(),
        workers: shared.config.workers.max(1),
        queue_depth: shared.jobs.len(),
        queue_capacity: shared.config.queue_capacity.max(1),
        depths: SchedulerDepths {
            interactive: http.interactive + engine.interactive,
            refinement: http.refinement + engine.refinement,
            batch: http.batch + engine.batch,
        },
        store_enabled: shared.store_on_disk,
        refines: shared.engine.refine_stats(),
        tenant_quota: shared.config.tenant_quota,
    }
}

fn handle_healthz(shared: &Arc<Shared>) -> Response {
    let body = format!(
        concat!(
            "{{\"ok\":true,\"status\":\"ok\",",
            "\"uptime_seconds\":{},\"version\":\"{}\",",
            "\"in_flight\":{},\"workers\":{},",
            "\"queue_depth\":{},\"queue_capacity\":{}}}"
        ),
        shared.metrics.uptime_seconds(),
        VERSION,
        shared.metrics.in_flight.load(Ordering::Relaxed),
        shared.config.workers.max(1),
        shared.jobs.len(),
        shared.config.queue_capacity.max(1),
    );
    Response::json(200, body)
}

/// `GET /trace/<id>`: a recently completed trace as its span-tree JSON.
/// The store is a bounded ring, so old traces age out — `404` covers
/// both "never existed" and "evicted".
fn handle_trace(shared: &Arc<Shared>, id: &str) -> Response {
    match telemetry::parse_trace_id(id).and_then(|id| telemetry::global().trace(id)) {
        Some(trace) => Response::json(200, trace.to_json()),
        None => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            Response::json(404, wire::error_json("no such trace (recent traces only)"))
        }
    }
}

/// Parses a JSON body, mapping framing problems to `400`.
fn parse_body(body: &[u8]) -> Result<json::Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    json::parse(text).map_err(|e| e.to_string())
}

fn handle_analyze(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(msg) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, wire::error_json(&msg));
        }
    };
    let spec = match wire::analyze_spec_from_json(&value) {
        Ok(spec) => spec,
        Err(msg) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            return Response::json(422, wire::error_json(&msg));
        }
    };
    if value.get("anytime").and_then(json::Json::as_bool) == Some(true) {
        return handle_analyze_anytime(shared, spec);
    }
    match shared.engine.analyze(&spec.request) {
        Ok(report) => {
            shared.metrics.note_report(&report);
            shared.metrics.analyze_ok.fetch_add(1, Ordering::Relaxed);
            persist_now(shared);
            Response::json(200, wire::analyze_ok_json(&spec, &report))
        }
        Err(e) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            Response::json(422, wire::error_json(&e.to_string()))
        }
    }
}

/// `POST /analyze` with `"anytime": true`: answer `202` immediately with
/// the best currently-certified bound plus a refinement token, while the
/// exact solve continues on the engine's refinement priority class. The
/// spec is retained (bounded) so `GET /refine/<token>` can later render
/// the full report envelope.
fn handle_analyze_anytime(shared: &Arc<Shared>, spec: wire::AnalyzeSpec) -> Response {
    match shared.engine.analyze_anytime(&spec.request) {
        Ok(answer) => {
            let token = answer.token.to_string();
            {
                let mut specs = shared
                    .refine_specs
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                specs.by_token.insert(token.clone(), spec);
                specs.order.push_back(token.clone());
                while specs.order.len() > REFINE_SPECS_RETAINED {
                    if let Some(old) = specs.order.pop_front() {
                        specs.by_token.remove(&old);
                    }
                }
            }
            shared
                .metrics
                .anytime_accepted
                .fetch_add(1, Ordering::Relaxed);
            let body = format!(
                concat!(
                    "{{\"ok\":true,\"anytime\":true,\"token\":{},",
                    "\"first\":{{\"error_bound\":{},\"elapsed_ms\":{},",
                    "\"sources\":{{\"cache\":{},\"closed_form\":{},\"trivial\":{}}}}}}}"
                ),
                json_str(&token),
                json_f64(answer.first_bound),
                json_ms(answer.first_elapsed.as_secs_f64() * 1e3),
                answer.sources.cache,
                answer.sources.closed_form,
                answer.sources.trivial,
            );
            Response::json(202, body)
        }
        Err(e) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            Response::json(422, wire::error_json(&e.to_string()))
        }
    }
}

/// `GET /refine/<token>[?wait_ms=N]`: poll (or long-poll) a refinement.
///
/// * `404` — unparsable, unknown, or evicted token.
/// * `202` — still pending (plain poll).
/// * `204` — long poll expired with the refinement still pending.
/// * `200` — the exact report; terminal, served repeatedly.
/// * `422` — the refinement failed; terminal, served repeatedly.
fn handle_refine(shared: &Arc<Shared>, rest: &str, query: Option<&str>) -> Response {
    let Some(token) = RefineToken::parse(rest) else {
        shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
        return Response::json(404, wire::error_json("no such refinement token"));
    };
    let wait_ms: Option<u64> = query.and_then(|q| {
        q.split('&')
            .find_map(|kv| kv.strip_prefix("wait_ms="))
            .and_then(|v| v.parse().ok())
    });
    let status = match wait_ms {
        Some(ms) => shared
            .engine
            .wait_refinement(token, Duration::from_millis(ms.min(MAX_WAIT_MS))),
        None => shared.engine.refinement(token),
    };
    match status {
        None => {
            shared.metrics.http_err.fetch_add(1, Ordering::Relaxed);
            Response::json(404, wire::error_json("no such refinement token"))
        }
        Some(RefineStatus::Pending) => {
            if wait_ms.is_some() {
                // Long poll expired: bodyless 204 says "nothing yet, poll
                // again" without making the client parse anything.
                Response {
                    status: 204,
                    content_type: "application/json",
                    body: Vec::new(),
                }
            } else {
                Response::json(
                    202,
                    format!(
                        "{{\"ok\":true,\"done\":false,\"token\":{}}}",
                        json_str(&token.to_string())
                    ),
                )
            }
        }
        Some(RefineStatus::Done(report)) => {
            // The refinement ran real SDP solves; fold its certificates
            // into the store like any other served analysis. (Idempotent:
            // completed tokens are served repeatedly, and `persist_new`
            // only appends certificates not yet in the log.)
            persist_now(shared);
            let token_str = token.to_string();
            let rendered = {
                let specs = shared
                    .refine_specs
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                specs
                    .by_token
                    .get(&token_str)
                    .map(|spec| report_json(&spec.name, &spec.program, &report))
            };
            let body = match rendered {
                Some(report) => format!(
                    "{{\"ok\":true,\"done\":true,\"token\":{},\"report\":{}}}",
                    json_str(&token_str),
                    report,
                ),
                // Spec aged out of the bounded map: serve the bound alone.
                None => format!(
                    "{{\"ok\":true,\"done\":true,\"token\":{},\"error_bound\":{}}}",
                    json_str(&token_str),
                    json_f64(report.error_bound()),
                ),
            };
            Response::json(200, body)
        }
        Some(RefineStatus::Failed(msg)) => {
            shared.metrics.analyze_err.fetch_add(1, Ordering::Relaxed);
            Response::json(422, wire::error_json(&msg))
        }
    }
}

fn handle_diff(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let value = match parse_body(body) {
        Ok(v) => v,
        Err(msg) => {
            shared.metrics.diff_err.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, wire::error_json(&msg));
        }
    };
    let spec = match wire::diff_spec_from_json(&value) {
        Ok(spec) => spec,
        Err(msg) => {
            shared.metrics.diff_err.fetch_add(1, Ordering::Relaxed);
            return Response::json(422, wire::error_json(&msg));
        }
    };
    match shared
        .engine
        .analyze_diff(&spec.old_request, &spec.new_request)
    {
        Ok(diff) => {
            shared.metrics.diff_ok.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .diff_prefix_gates_reused
                .fetch_add(diff.prefix_gates_reused(), Ordering::Relaxed);
            persist_now(shared);
            Response::json(200, wire::diff_ok_json(&spec, &diff))
        }
        Err(e) => {
            shared.metrics.diff_err.fetch_add(1, Ordering::Relaxed);
            Response::json(422, wire::error_json(&e.to_string()))
        }
    }
}

fn handle_batch(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let parsed = parse_body(body).and_then(|v| wire::batch_specs_from_json(&v));
    let specs = match parsed {
        Ok(specs) => specs,
        Err(msg) => {
            shared.metrics.batch_err.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, wire::error_json(&msg));
        }
    };
    let requests: Vec<AnalysisRequest> = specs
        .iter()
        .filter_map(|s| s.as_ref().ok().map(|s| s.request.clone()))
        .collect();
    let outcome = shared.engine.analyze_batch_detailed(&requests);
    let mut analyzed = outcome.results.into_iter();
    let entries: Vec<String> = specs
        .iter()
        .map(|entry| match entry {
            Ok(spec) => match analyzed.next().expect("one result per prepared request") {
                Ok(report) => {
                    shared.metrics.note_report(&report);
                    wire::analyze_ok_json(spec, &report)
                }
                Err(e) => wire::error_json(&e.to_string()),
            },
            Err(msg) => wire::error_json(msg),
        })
        .collect();
    shared.metrics.batch_ok.fetch_add(1, Ordering::Relaxed);
    persist_now(shared);
    let body = format!(
        "{{\"ok\":true,\"results\":[{}],\"worker_threads\":{},\"elapsed_ms\":{}}}",
        entries.join(","),
        outcome.worker_threads,
        json_ms(outcome.elapsed.as_secs_f64() * 1e3),
    );
    Response::json(200, body)
}

/// Folds any not-yet-persisted engine certificates into the store: the
/// sequence log always (that is what peers sync), the file only for a
/// disk-backed store. Called after each served analysis, after each
/// peer import, and at shutdown, so even a `kill -9` loses at most the
/// last request's certificates.
pub(crate) fn persist_now(shared: &Shared) {
    let mut store = shared.store.lock().unwrap_or_else(|e| e.into_inner());
    match store.persist_new(&shared.engine) {
        Ok(n) => {
            if n > 0 {
                shared
                    .metrics
                    .persisted_records
                    .fetch_add(n, Ordering::Relaxed);
            }
        }
        Err(e) => eprintln!("gleipnir-server: certificate persist failed: {e}"),
    }
}
