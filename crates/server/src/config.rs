//! Server configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Everything `gleipnir serve` can tune. [`Default`] gives a loopback
/// daemon suitable for local use and tests.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:8080`; port `0` picks a free port —
    /// handy for tests).
    pub addr: String,
    /// HTTP worker threads. These only parse requests and orchestrate
    /// analyses; the SDP heavy lifting runs on the engine's own pool, so a
    /// handful is plenty.
    pub workers: usize,
    /// Bounded accept-queue capacity. When `workers` connections are being
    /// served and `queue_capacity` more are waiting, further connections
    /// are shed with `429 Too Many Requests` instead of piling up until
    /// the process collapses.
    pub queue_capacity: usize,
    /// Per-connection read timeout (a stalled or malicious client cannot
    /// pin a worker).
    pub read_timeout: Duration,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Certificate-store directory. `Some(dir)` loads the store at startup
    /// (warm restart) and persists new certificates after each analysis
    /// and on shutdown.
    pub cache_dir: Option<PathBuf>,
    /// Engine worker-pool cap (0 = `GLEIPNIR_THREADS`, then all cores).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            max_body_bytes: 4 << 20,
            cache_dir: None,
            threads: 0,
        }
    }
}
