//! Server configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Everything `gleipnir serve` can tune. [`Default`] gives a loopback
/// daemon suitable for local use and tests.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:8080`; port `0` picks a free port —
    /// handy for tests).
    pub addr: String,
    /// HTTP worker threads. These only parse requests and orchestrate
    /// analyses; the SDP heavy lifting runs on the engine's own pool, so a
    /// handful is plenty.
    pub workers: usize,
    /// Bounded accept-queue capacity. When `workers` connections are being
    /// served and `queue_capacity` more are waiting, further connections
    /// are shed with `429 Too Many Requests` instead of piling up until
    /// the process collapses.
    pub queue_capacity: usize,
    /// Whole-request read deadline: a client that stalls or trickles
    /// mid-request is answered `408` this long after the request started
    /// (for a fresh connection, after accept). Never pins a worker — the
    /// reactor owns the clock.
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection (at least one response
    /// served, nothing buffered) is kept open before a silent close.
    pub keepalive_timeout: Duration,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Certificate-store directory. `Some(dir)` loads the store at startup
    /// (warm restart) and persists new certificates after each analysis
    /// and on shutdown.
    pub cache_dir: Option<PathBuf>,
    /// Engine worker-pool cap (0 = `GLEIPNIR_THREADS`, then all cores).
    pub threads: usize,
    /// Fleet peers (`host:port`) to pull certificates from via
    /// `GET /certs/since/<seq>`. Empty disables the gossip loop. Every
    /// pulled record is re-certified before it can enter the cache.
    pub peers: Vec<String>,
    /// How often the gossip loop polls each peer.
    pub peer_interval: Duration,
    /// Per-tenant, per-priority-class admission quota: how many requests
    /// one tenant (the `X-Tenant` header; missing means the anonymous
    /// tenant) may have admitted-but-unanswered in each class at once.
    /// Excess requests are rejected with `429` + `Retry-After` so a
    /// saturating batch tenant cannot starve interactive callers.
    /// `0` disables quotas.
    pub tenant_quota: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            keepalive_timeout: Duration::from_secs(30),
            max_body_bytes: 4 << 20,
            cache_dir: None,
            threads: 0,
            peers: Vec::new(),
            peer_interval: Duration::from_secs(2),
            tenant_quota: 0,
        }
    }
}
