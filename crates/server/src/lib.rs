//! # gleipnir-server
//!
//! Gleipnir as a **network service**: a dependency-free HTTP/1.1 + JSON
//! daemon fronting one shared [`gleipnir_core::Engine`], with a
//! persistent SDP-certificate store that makes restarts warm and a
//! peer-sync protocol that lets a fleet of daemons share certificates.
//!
//! The transport is a **nonblocking reactor** (`reactor.rs` + `poll.rs`):
//! one event-loop thread multiplexes the listener and every connection
//! over `poll(2)` (no libc crate — the same direct-syscall trick as
//! `signal.rs`), parses requests incrementally (`http.rs`), and hands
//! complete requests to a bounded job queue drained by HTTP worker
//! threads. Keep-alive is the HTTP/1.1 default and pipelined requests
//! are answered in order (one request per connection is in flight at a
//! time). The whole-request deadline arms at accept (`408` for stalled
//! or trickling clients), idle keep-alive connections close silently,
//! and every error response is drained before close so it is never
//! RST'd out of the client's receive buffer.
//!
//! The library exposes everything the `gleipnir serve` subcommand (and the
//! integration tests / throughput bench) need:
//!
//! * [`spawn`] / [`ServerHandle`] — run a server in-process on any
//!   address (`127.0.0.1:0` for tests), shut it down gracefully;
//! * [`ServerConfig`] — address, worker count, **bounded serving
//!   capacity** (excess connections ⇒ `429`), whole-request and
//!   keep-alive deadlines, engine pool size, `--cache-dir`, `--peers`;
//! * [`json`] — the minimal JSON parser for request bodies;
//! * [`spec`] — the textual parameter specs shared with the CLI flags;
//! * [`wire`] — body ⇄ [`gleipnir_core::AnalysisRequest`] conversion;
//! * [`signal::install_shutdown_signals`] — SIGINT/SIGTERM → atomic flag.
//!
//! ## Endpoints
//!
//! | Endpoint | Body | Response |
//! |---|---|---|
//! | `POST /analyze` | GLQ source + params (see [`wire`]) | `{"ok":true,"report":{…}}` |
//! | `POST /batch` | `{"programs":[…]}` | per-entry results |
//! | `GET /healthz` | — | `{"ok":true,"status":"ok",…}` plus uptime, version, and worker/queue saturation |
//! | `GET /metrics` | — | cache hits/misses/in-flight dedup, stage-time totals, queue depth, shed count, peer-sync counters, pool size, latency quantiles |
//! | `GET /metrics?format=prometheus` | — | the same numbers (plus full latency histograms) in Prometheus text exposition format v0.0.4 |
//! | `GET /trace/<id>` | — | the span tree for a recent request, by the `X-Trace-Id` its response carried (see `docs/OBSERVABILITY.md`) |
//! | `GET /certs/since/<seq>` | — | framed certificate records from sequence `<seq>` (the peer-sync feed) |
//!
//! Overload answers `429` (never a hang), malformed bytes `400`,
//! oversized heads or declared bodies `413`, stalled requests `408`,
//! semantically invalid requests and failed analyses `422`. Every
//! worker-routed response carries an `X-Trace-Id` header; `requests_total`
//! counts every response the server generates (routed responses *and*
//! protocol-level `429`/`400`/`413`/`408`), while `http_err` counts error
//! responses plus reads that died before producing one.
//!
//! ## Fleet certificate sharing
//!
//! With `--peers host:port,…` a gossip loop (`peer.rs`) polls each
//! peer's `/certs/since/<cursor>` feed and imports new records through
//! [`gleipnir_core::CertStore`]`::import_sync`, which **re-certifies
//! every record** (rebuild the SDP from the content address; the stored
//! dual must re-prove the stored ε) before it can answer anything — a
//! malicious or corrupt peer degrades to a cache miss, never an unsound
//! bound. Accepted records flow through the same persist path as local
//! solves, so sync is transitive and idempotent across restarts.
//!
//! ## Why certificates survive restarts
//!
//! Every `(ρ̂, δ)`-diamond certificate the engine pays for is appended to
//! `--cache-dir` (content-addressed, checksummed, with its weak-duality
//! dual vector). On startup the store is re-verified entry by entry —
//! see [`gleipnir_core::CertStore`] — so a second process answers the
//! same workload with **zero new SDP solves** and bit-identical ε, while
//! a corrupted store degrades to cache misses, never to an unsound bound.

#![warn(missing_docs)]

mod config;
mod http;
pub mod json;
mod metrics;
mod peer;
mod poll;
mod reactor;
mod server;
pub mod signal;
pub mod spec;
pub mod wire;

pub use config::ServerConfig;
pub use server::{spawn, ServerError, ServerHandle};
