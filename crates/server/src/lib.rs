//! # gleipnir-server
//!
//! Gleipnir as a **network service**: a dependency-free HTTP/1.1 + JSON
//! daemon fronting one shared [`gleipnir_core::Engine`], with a
//! persistent SDP-certificate store that makes restarts warm.
//!
//! The library exposes everything the `gleipnir serve` subcommand (and the
//! integration tests / throughput bench) need:
//!
//! * [`spawn`] / [`ServerHandle`] — run a server in-process on any
//!   address (`127.0.0.1:0` for tests), shut it down gracefully;
//! * [`ServerConfig`] — address, worker count, **bounded accept queue**
//!   (full ⇒ `429`), read timeouts, engine pool size, `--cache-dir`;
//! * [`json`] — the minimal JSON parser for request bodies;
//! * [`spec`] — the textual parameter specs shared with the CLI flags;
//! * [`wire`] — body ⇄ [`gleipnir_core::AnalysisRequest`] conversion;
//! * [`signal::install_shutdown_signals`] — SIGINT/SIGTERM → atomic flag.
//!
//! ## Endpoints
//!
//! | Endpoint | Body | Response |
//! |---|---|---|
//! | `POST /analyze` | GLQ source + params (see [`wire`]) | `{"ok":true,"report":{…}}` |
//! | `POST /batch` | `{"programs":[…]}` | per-entry results |
//! | `GET /healthz` | — | `{"ok":true,"status":"ok"}` |
//! | `GET /metrics` | — | cache hits/misses/in-flight dedup, stage-time totals, queue depth, shed count, pool size |
//!
//! Overload answers `429` (never a hang), malformed bodies `400`,
//! semantically invalid requests and failed analyses `422`.
//!
//! ## Why certificates survive restarts
//!
//! Every `(ρ̂, δ)`-diamond certificate the engine pays for is appended to
//! `--cache-dir` (content-addressed, checksummed, with its weak-duality
//! dual vector). On startup the store is re-verified entry by entry —
//! see [`gleipnir_core::CertStore`] — so a second process answers the
//! same workload with **zero new SDP solves** and bit-identical ε, while
//! a corrupted store degrades to cache misses, never to an unsound bound.

#![warn(missing_docs)]

mod config;
mod http;
pub mod json;
mod metrics;
mod server;
pub mod signal;
pub mod spec;
pub mod wire;

pub use config::ServerConfig;
pub use server::{spawn, ServerError, ServerHandle};
