//! # gleipnir-sim
//!
//! Dense simulators for the Gleipnir workspace.
//!
//! * [`StateVector`] — pure-state simulation with `O(2ⁿ)` memory, used for
//!   exact references in tests and workload sanity checks;
//! * [`DensityMatrix`] — mixed-state simulation implementing the paper's
//!   denotational semantics (Fig. 3) exactly, including measurement
//!   branches and Kraus noise channels. This is the oracle behind the
//!   LQR-with-full-simulation baseline (Table 2) and the measured-error
//!   substitute for real hardware (Table 3);
//! * [`BasisState`] — the computational-basis input states the paper's
//!   experiments start from;
//! * [`statistical_distance`] — the total-variation distance used as the
//!   "measured error" metric in §7.2.
//!
//! ## Example
//!
//! ```
//! use gleipnir_circuit::ProgramBuilder;
//! use gleipnir_sim::{DensityMatrix, StateVector};
//!
//! let mut b = ProgramBuilder::new(2);
//! b.h(0).cnot(0, 1);
//! let ghz = b.build();
//!
//! let mut sv = StateVector::zero_state(2);
//! sv.run(&ghz)?;
//! let rho = DensityMatrix::from_pure(&sv);
//! assert!((rho.purity() - 1.0).abs() < 1e-12);
//! # Ok::<(), gleipnir_sim::SimError>(())
//! ```

#![warn(missing_docs)]

mod basis;
mod density;
mod observable;
mod statevector;

pub use basis::BasisState;
pub use density::{statistical_distance, DensityMatrix};
pub use observable::{Observable, Pauli};
pub use statevector::{SimError, StateVector};
