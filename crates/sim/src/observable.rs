//! Pauli-string observables and expectation values.
//!
//! QAOA cost functions, Ising energies, and error-mitigation diagnostics
//! are all expectations of Pauli strings; this module provides the
//! observable type and `⟨ψ|O|ψ⟩` / `tr(Oρ)` evaluation against both
//! simulators without materializing the `2ⁿ × 2ⁿ` operator.

use crate::{DensityMatrix, StateVector};
use gleipnir_linalg::C64;
use std::fmt;

/// A single-qubit Pauli factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// Action on a basis bit: returns `(new_bit, amplitude)` such that
    /// `P|b⟩ = amplitude·|new_bit⟩`.
    #[inline]
    fn apply(self, bit: bool) -> (bool, C64) {
        match self {
            Pauli::I => (bit, C64::ONE),
            Pauli::X => (!bit, C64::ONE),
            Pauli::Y => (!bit, if bit { -C64::I } else { C64::I }),
            Pauli::Z => (bit, if bit { -C64::ONE } else { C64::ONE }),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A weighted sum of Pauli strings over `n` qubits — a Hermitian
/// observable.
///
/// # Examples
///
/// ```
/// use gleipnir_sim::{Observable, StateVector};
/// use gleipnir_circuit::{Gate, Qubit};
///
/// // ⟨Z₀⟩ on |+⟩ is 0; ⟨X₀⟩ is 1.
/// let mut sv = StateVector::zero_state(1);
/// sv.apply_gate(&Gate::H, &[Qubit(0)]);
/// let z = Observable::z(1, 0);
/// let x = Observable::single(1, 0, gleipnir_sim::Pauli::X);
/// assert!(z.expectation_state(&sv).abs() < 1e-12);
/// assert!((x.expectation_state(&sv) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Observable {
    n_qubits: usize,
    terms: Vec<(f64, Vec<(usize, Pauli)>)>,
}

impl Observable {
    /// The zero observable over `n` qubits.
    pub fn zero(n_qubits: usize) -> Self {
        Observable {
            n_qubits,
            terms: Vec::new(),
        }
    }

    /// A single-qubit Pauli observable.
    ///
    /// # Panics
    ///
    /// Panics if `q ≥ n_qubits`.
    pub fn single(n_qubits: usize, q: usize, p: Pauli) -> Self {
        let mut o = Self::zero(n_qubits);
        o.add_term(1.0, &[(q, p)]);
        o
    }

    /// `Z_q`.
    pub fn z(n_qubits: usize, q: usize) -> Self {
        Self::single(n_qubits, q, Pauli::Z)
    }

    /// `Z_a·Z_b` — the Ising/max-cut coupling term.
    pub fn zz(n_qubits: usize, a: usize, b: usize) -> Self {
        let mut o = Self::zero(n_qubits);
        o.add_term(1.0, &[(a, Pauli::Z), (b, Pauli::Z)]);
        o
    }

    /// The max-cut cost observable `Σ_(a,b)∈E (1 − Z_a Z_b)/2`, whose
    /// expectation is the expected cut value.
    pub fn max_cut(n_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut o = Self::zero(n_qubits);
        for &(a, b) in edges {
            o.add_term(0.5, &[]);
            o.add_term(-0.5, &[(a, Pauli::Z), (b, Pauli::Z)]);
        }
        o
    }

    /// The transverse-field Ising Hamiltonian
    /// `−J Σ Z_i Z_{i+1} − h Σ X_i` on a chain.
    pub fn ising_chain(n_qubits: usize, j: f64, h: f64) -> Self {
        let mut o = Self::zero(n_qubits);
        for q in 0..n_qubits.saturating_sub(1) {
            o.add_term(-j, &[(q, Pauli::Z), (q + 1, Pauli::Z)]);
        }
        for q in 0..n_qubits {
            o.add_term(-h, &[(q, Pauli::X)]);
        }
        o
    }

    /// Adds a weighted Pauli-string term (qubits must be distinct and in
    /// range; an empty string is the identity).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or repeated qubits.
    pub fn add_term(&mut self, weight: f64, factors: &[(usize, Pauli)]) -> &mut Self {
        let mut seen = Vec::new();
        for &(q, _) in factors {
            assert!(q < self.n_qubits, "qubit {q} out of range");
            assert!(!seen.contains(&q), "repeated qubit {q} in Pauli string");
            seen.push(q);
        }
        let mut fs: Vec<(usize, Pauli)> = factors
            .iter()
            .filter(|(_, p)| *p != Pauli::I)
            .copied()
            .collect();
        fs.sort_by_key(|&(q, _)| q);
        self.terms.push((weight, fs));
        self
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// `⟨ψ|O|ψ⟩` against a pure state.
    ///
    /// # Panics
    ///
    /// Panics on register-width mismatch.
    pub fn expectation_state(&self, sv: &StateVector) -> f64 {
        assert_eq!(sv.n_qubits(), self.n_qubits, "register width mismatch");
        let n = self.n_qubits;
        let amps = sv.amplitudes();
        let mut total = 0.0;
        for (w, factors) in &self.terms {
            // ⟨ψ|P|ψ⟩ = Σ_b conj(ψ[P(b)_idx])·amp·ψ[b].
            let mut acc = C64::ZERO;
            for (idx, &a) in amps.iter().enumerate() {
                if a == C64::ZERO {
                    continue;
                }
                let mut out_idx = idx;
                let mut coeff = C64::ONE;
                for &(q, p) in factors {
                    let sh = n - 1 - q;
                    let bit = (idx >> sh) & 1 == 1;
                    let (nb, c) = p.apply(bit);
                    if nb != bit {
                        out_idx ^= 1 << sh;
                    }
                    coeff *= c;
                }
                acc = acc.add_prod(amps[out_idx].conj(), coeff * a);
            }
            total += w * acc.re;
        }
        total
    }

    /// `tr(O·ρ)` against a density matrix.
    ///
    /// # Panics
    ///
    /// Panics on register-width mismatch.
    pub fn expectation_density(&self, rho: &DensityMatrix) -> f64 {
        assert_eq!(rho.n_qubits(), self.n_qubits, "register width mismatch");
        let n = self.n_qubits;
        let m = rho.matrix();
        let mut total = 0.0;
        for (w, factors) in &self.terms {
            // tr(Pρ) = Σ_b ⟨b|Pρ|b⟩ = Σ_b coeff(b)·ρ[P(b), b].
            let mut acc = C64::ZERO;
            for idx in 0..(1usize << n) {
                let mut out_idx = idx;
                let mut coeff = C64::ONE;
                for &(q, p) in factors {
                    let sh = n - 1 - q;
                    let bit = (idx >> sh) & 1 == 1;
                    let (nb, c) = p.apply(bit);
                    if nb != bit {
                        out_idx ^= 1 << sh;
                    }
                    coeff *= c;
                }
                // ⟨idx|P = (P†|idx⟩)† …for Pauli strings P|idx⟩ = coeff|out⟩,
                // so ⟨idx|Pρ|idx⟩ = coeff·ρ[out_idx][idx]… careful with
                // conjugation: P is Hermitian, ⟨idx|P = (coeff·|out⟩)† gives
                // conj(coeff)·⟨out|.
                acc = acc.add_prod(coeff.conj(), m.at(out_idx, idx));
            }
            total += w * acc.re;
        }
        total
    }
}

impl fmt::Display for Observable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (w, factors)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{w}·")?;
            if factors.is_empty() {
                write!(f, "I")?;
            }
            for (q, p) in factors {
                write!(f, "{p}{q}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::{Gate, ProgramBuilder, Qubit};

    #[test]
    fn z_expectation_on_basis_states() {
        let sv0 = StateVector::zero_state(2);
        assert!((Observable::z(2, 0).expectation_state(&sv0) - 1.0).abs() < 1e-12);
        let mut sv1 = StateVector::zero_state(2);
        sv1.apply_gate(&Gate::X, &[Qubit(1)]);
        assert!((Observable::z(2, 1).expectation_state(&sv1) + 1.0).abs() < 1e-12);
        assert!((Observable::z(2, 0).expectation_state(&sv1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_circular_state() {
        // |i⟩ = S·H|0⟩ has ⟨Y⟩ = 1.
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H, &[Qubit(0)]);
        sv.apply_gate(&Gate::S, &[Qubit(0)]);
        let y = Observable::single(1, 0, Pauli::Y);
        assert!((y.expectation_state(&sv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_on_ghz_is_one() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let mut sv = StateVector::zero_state(2);
        sv.run(&b.build()).unwrap();
        assert!((Observable::zz(2, 0, 1).expectation_state(&sv) - 1.0).abs() < 1e-12);
        // Single-qubit Z vanishes on GHZ.
        assert!(Observable::z(2, 0).expectation_state(&sv).abs() < 1e-12);
    }

    #[test]
    fn state_and_density_expectations_agree() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).rx(2, 0.7).rzz(1, 2, 0.9).t(0);
        let p = b.build();
        let mut sv = StateVector::zero_state(3);
        sv.run(&p).unwrap();
        let mut rho = DensityMatrix::zero_state(3);
        rho.run(&p);
        let mut o = Observable::zero(3);
        o.add_term(0.5, &[(0, Pauli::X), (2, Pauli::Z)]);
        o.add_term(-1.25, &[(1, Pauli::Y)]);
        o.add_term(2.0, &[]);
        let es = o.expectation_state(&sv);
        let ed = o.expectation_density(&rho);
        assert!((es - ed).abs() < 1e-10, "{es} vs {ed}");
    }

    #[test]
    fn max_cut_matches_brute_force_on_diagonal_states() {
        // On a basis state, the max-cut expectation is the exact cut value.
        let edges = [(0usize, 1usize), (1, 2), (0, 2)];
        let o = Observable::max_cut(3, &edges);
        for idx in 0..8usize {
            let sv = StateVector::from_basis(&crate::BasisState::from_index(3, idx));
            let cut = edges
                .iter()
                .filter(|&&(a, b)| ((idx >> (2 - a)) ^ (idx >> (2 - b))) & 1 == 1)
                .count() as f64;
            assert!(
                (o.expectation_state(&sv) - cut).abs() < 1e-12,
                "idx {idx}: {} vs {cut}",
                o.expectation_state(&sv)
            );
        }
    }

    #[test]
    fn ising_ground_state_energy_sign() {
        // For J, h > 0 the all-up state has energy −J(n−1) from the ZZ part
        // and 0 from X.
        let n = 4;
        let o = Observable::ising_chain(n, 1.0, 0.5);
        let sv = StateVector::zero_state(n);
        assert!((o.expectation_state(&sv) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_state_expectation() {
        let rho = DensityMatrix::maximally_mixed(2);
        // All traceless observables vanish on I/4.
        for o in [
            Observable::z(2, 0),
            Observable::zz(2, 0, 1),
            Observable::single(2, 1, Pauli::X),
        ] {
            assert!(o.expectation_density(&rho).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn repeated_qubit_rejected() {
        let mut o = Observable::zero(2);
        o.add_term(1.0, &[(0, Pauli::X), (0, Pauli::Z)]);
    }
}
