//! Computational basis states used as program inputs.

use std::fmt;

/// A computational basis state `|b₀ b₁ … b_{n−1}⟩` (MSB-first, matching the
/// workspace convention).
///
/// This is the input-state type the analyzers accept: the paper's
/// experiments all start from basis states (usually `|0…0⟩`).
///
/// # Examples
///
/// ```
/// use gleipnir_sim::BasisState;
///
/// let s = BasisState::from_bits(&[true, false, true]);
/// assert_eq!(s.index(), 0b101);
/// assert_eq!(s.to_string(), "|101⟩");
/// assert_eq!(BasisState::zeros(3).index(), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BasisState {
    bits: Vec<bool>,
}

impl BasisState {
    /// The all-zeros state over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "basis state needs at least one qubit");
        BasisState {
            bits: vec![false; n],
        }
    }

    /// A basis state from explicit bits (MSB-first: `bits[0]` is qubit 0).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "basis state needs at least one qubit");
        BasisState {
            bits: bits.to_vec(),
        }
    }

    /// A basis state from an index over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2ⁿ`.
    pub fn from_index(n: usize, index: usize) -> Self {
        assert!(n > 0, "basis state needs at least one qubit");
        assert!(index < (1usize << n), "index out of range");
        let bits = (0..n).map(|k| (index >> (n - 1 - k)) & 1 == 1).collect();
        BasisState { bits }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.bits.len()
    }

    /// The bit of qubit `q`.
    pub fn bit(&self, q: usize) -> bool {
        self.bits[q]
    }

    /// The bits, MSB-first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The amplitude index of this basis state.
    pub fn index(&self) -> usize {
        self.bits
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }
}

impl fmt::Display for BasisState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|")?;
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for n in 1..=4 {
            for idx in 0..(1usize << n) {
                let s = BasisState::from_index(n, idx);
                assert_eq!(s.index(), idx);
                assert_eq!(s.n_qubits(), n);
            }
        }
    }

    #[test]
    fn msb_first_ordering() {
        let s = BasisState::from_bits(&[true, false]);
        assert_eq!(s.index(), 2);
        assert!(s.bit(0));
        assert!(!s.bit(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_bounds() {
        let _ = BasisState::from_index(2, 4);
    }
}
