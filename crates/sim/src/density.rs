//! Dense density-matrix simulation with exact measurement semantics.
//!
//! This simulator implements the paper's denotational semantics (Fig. 3)
//! directly: gates act as `ρ ↦ UρU†` and measurement statements map the
//! state to the classical mixture of both collapsed branches. It also
//! applies Kraus channels, which makes it the exact noisy-execution oracle
//! used by the LQR-with-full-simulation baseline (Table 2) and the
//! "measured error" substitute of the qubit-mapping study (Table 3).

use crate::{BasisState, StateVector};
use gleipnir_circuit::{Gate, Program, Qubit, Stmt};
use gleipnir_linalg::{c64, ptrace_keep, trace_distance, CMat, EigError};

/// A dense `2ⁿ × 2ⁿ` mixed quantum state.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
/// use gleipnir_sim::DensityMatrix;
///
/// let mut b = ProgramBuilder::new(2);
/// b.h(0).cnot(0, 1);
/// let mut rho = DensityMatrix::zero_state(2);
/// rho.run(&b.build());
/// assert!((rho.probabilities()[0] - 0.5).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    mat: CMat,
}

impl DensityMatrix {
    /// The pure all-zeros state `|0…0⟩⟨0…0|`.
    pub fn zero_state(n_qubits: usize) -> Self {
        Self::from_basis(&BasisState::zeros(n_qubits))
    }

    /// A computational basis state.
    pub fn from_basis(basis: &BasisState) -> Self {
        let dim = 1usize << basis.n_qubits();
        let mut mat = CMat::zeros(dim, dim);
        mat.set(basis.index(), basis.index(), gleipnir_linalg::C64::ONE);
        DensityMatrix {
            n_qubits: basis.n_qubits(),
            mat,
        }
    }

    /// The maximally mixed state `I/2ⁿ`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        DensityMatrix {
            n_qubits,
            mat: CMat::identity(dim).scaled(c64(1.0 / dim as f64, 0.0)),
        }
    }

    /// Builds from a pure state.
    pub fn from_pure(sv: &StateVector) -> Self {
        DensityMatrix {
            n_qubits: sv.n_qubits(),
            mat: sv.to_density_matrix(),
        }
    }

    /// Builds from an explicit matrix, validating shape (must be `2ⁿ × 2ⁿ`).
    ///
    /// The matrix is *not* checked for positivity — use
    /// [`gleipnir_linalg::is_density_matrix`] when validation matters.
    ///
    /// # Panics
    ///
    /// Panics on non-square or non-power-of-two dimension.
    pub fn from_matrix(mat: CMat) -> Self {
        assert!(mat.is_square(), "density matrix must be square");
        let dim = mat.rows();
        assert!(dim.is_power_of_two(), "dimension must be a power of two");
        DensityMatrix {
            n_qubits: dim.trailing_zeros() as usize,
            mat,
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &CMat {
        &self.mat
    }

    /// Consumes the simulator, returning the matrix.
    pub fn into_matrix(self) -> CMat {
        self.mat
    }

    /// `tr ρ` (1 for normalized states; may be < 1 for unnormalized
    /// branch contributions).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// `tr ρ²`.
    pub fn purity(&self) -> f64 {
        gleipnir_linalg::purity(&self.mat)
    }

    /// Basis-state probabilities (the real diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.mat.rows()).map(|i| self.mat.at(i, i).re).collect()
    }

    /// Applies `ρ ← M ρ M†` for an arbitrary `2^k` local matrix `M` on the
    /// given qubits (gates, Kraus operators, projectors).
    ///
    /// # Panics
    ///
    /// Panics on operand/shape mismatches.
    pub fn apply_matrix(&mut self, m: &CMat, qubits: &[Qubit]) {
        let k = qubits.len();
        assert_eq!(m.rows(), 1 << k, "matrix dimension mismatch");
        for q in qubits {
            assert!(q.0 < self.n_qubits, "qubit {q} out of range");
        }
        let n = self.n_qubits;
        let dim = 1usize << n;
        let kd = 1usize << k;
        let shifts: Vec<usize> = qubits.iter().map(|q| n - 1 - q.0).collect();
        let mask: usize = shifts.iter().map(|s| 1usize << s).sum();
        let spread = |l: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &sh) in shifts.iter().enumerate() {
                idx |= ((l >> (k - 1 - pos)) & 1) << sh;
            }
            idx
        };

        // ρ ← (M ⊗ I) ρ : transform the row index, one column at a time.
        let mut local = vec![gleipnir_linalg::C64::ZERO; kd];
        for col in 0..dim {
            let mut base = 0usize;
            loop {
                for (l, slot) in local.iter_mut().enumerate() {
                    *slot = self.mat.at(base | spread(l), col);
                }
                for r in 0..kd {
                    let mut acc = gleipnir_linalg::C64::ZERO;
                    for (l, &al) in local.iter().enumerate() {
                        acc = acc.add_prod(m.at(r, l), al);
                    }
                    self.mat.set(base | spread(r), col, acc);
                }
                base = (base | mask).wrapping_add(1) & !mask;
                if base == 0 || base >= dim {
                    break;
                }
            }
        }
        // ρ ← ρ (M† ⊗ I) : transform the column index, one row at a time.
        for row in 0..dim {
            let mut base = 0usize;
            loop {
                for (l, slot) in local.iter_mut().enumerate() {
                    *slot = self.mat.at(row, base | spread(l));
                }
                for r in 0..kd {
                    let mut acc = gleipnir_linalg::C64::ZERO;
                    for (l, &al) in local.iter().enumerate() {
                        // (ρM†)[row][r] = Σ_l ρ[row][l]·conj(M[r][l])
                        acc = acc.add_prod(al, m.at(r, l).conj());
                    }
                    self.mat.set(row, base | spread(r), acc);
                }
                base = (base | mask).wrapping_add(1) & !mask;
                if base == 0 || base >= dim {
                    break;
                }
            }
        }
    }

    /// Applies a unitary gate.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[Qubit]) {
        self.apply_matrix(&gate.matrix(), qubits);
    }

    /// Applies a Kraus channel `ρ ← Σᵢ Kᵢ ρ Kᵢ†` on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics if the Kraus list is empty or shapes mismatch.
    pub fn apply_kraus(&mut self, kraus: &[CMat], qubits: &[Qubit]) {
        assert!(!kraus.is_empty(), "empty Kraus list");
        let mut acc: Option<DensityMatrix> = None;
        for k in kraus {
            let mut term = self.clone();
            term.apply_matrix(k, qubits);
            acc = Some(match acc {
                None => term,
                Some(mut a) => {
                    a.mat = &a.mat + &term.mat;
                    a
                }
            });
        }
        *self = acc.expect("non-empty Kraus list");
    }

    /// Unnormalized projection of qubit `q` onto `outcome`
    /// (`ρ ← M_b ρ M_b†`); the trace of the result is the outcome
    /// probability.
    pub fn project(&self, q: Qubit, outcome: bool) -> DensityMatrix {
        let sh = self.n_qubits - 1 - q.0;
        let want = usize::from(outcome);
        let dim = self.mat.rows();
        let mut out = CMat::zeros(dim, dim);
        for r in 0..dim {
            if (r >> sh) & 1 != want {
                continue;
            }
            for c in 0..dim {
                if (c >> sh) & 1 != want {
                    continue;
                }
                out.set(r, c, self.mat.at(r, c));
            }
        }
        DensityMatrix {
            n_qubits: self.n_qubits,
            mat: out,
        }
    }

    /// Runs a program under the exact (noiseless) semantics of Fig. 3,
    /// including measurement statements (the state becomes the mixture of
    /// both branches).
    ///
    /// # Panics
    ///
    /// Panics on register-width mismatch.
    pub fn run(&mut self, program: &Program) {
        assert_eq!(
            program.n_qubits(),
            self.n_qubits,
            "program register width mismatch"
        );
        self.run_stmt(program.body());
    }

    fn run_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Skip => {}
            Stmt::Seq(ss) => {
                for s in ss {
                    self.run_stmt(s);
                }
            }
            Stmt::Gate(g) => self.apply_gate(&g.gate, &g.qubits),
            Stmt::IfMeasure { qubit, zero, one } => {
                let mut rho0 = self.project(*qubit, false);
                rho0.run_stmt(zero);
                let mut rho1 = self.project(*qubit, true);
                rho1.run_stmt(one);
                self.mat = &rho0.mat + &rho1.mat;
            }
        }
    }

    /// Runs a program where each gate is immediately followed by a noise
    /// channel chosen by `noise_for` (Kraus operators on the gate's qubits),
    /// implementing the noisy semantics `[[P]]_ω` of §2.3.
    ///
    /// Measurements remain exact, matching the paper's noisy semantics
    /// (only gates are noisy under the gate-level noise model).
    pub fn run_noisy(
        &mut self,
        program: &Program,
        noise_for: &dyn Fn(&Gate, &[Qubit]) -> Option<Vec<CMat>>,
    ) {
        assert_eq!(
            program.n_qubits(),
            self.n_qubits,
            "program register width mismatch"
        );
        self.run_stmt_noisy(program.body(), noise_for);
    }

    fn run_stmt_noisy(
        &mut self,
        s: &Stmt,
        noise_for: &dyn Fn(&Gate, &[Qubit]) -> Option<Vec<CMat>>,
    ) {
        match s {
            Stmt::Skip => {}
            Stmt::Seq(ss) => {
                for s in ss {
                    self.run_stmt_noisy(s, noise_for);
                }
            }
            Stmt::Gate(g) => {
                self.apply_gate(&g.gate, &g.qubits);
                if let Some(kraus) = noise_for(&g.gate, &g.qubits) {
                    self.apply_kraus(&kraus, &g.qubits);
                }
            }
            Stmt::IfMeasure { qubit, zero, one } => {
                let mut rho0 = self.project(*qubit, false);
                rho0.run_stmt_noisy(zero, noise_for);
                let mut rho1 = self.project(*qubit, true);
                rho1.run_stmt_noisy(one, noise_for);
                self.mat = &rho0.mat + &rho1.mat;
            }
        }
    }

    /// The reduced density matrix over `keep` (strictly ascending qubits).
    pub fn local_density(&self, keep: &[usize]) -> CMat {
        ptrace_keep(&self.mat, self.n_qubits, keep)
    }

    /// Trace distance to another state.
    ///
    /// # Errors
    ///
    /// Propagates eigendecomposition failures.
    pub fn trace_distance_to(&self, other: &DensityMatrix) -> Result<f64, EigError> {
        trace_distance(&self.mat, &other.mat)
    }
}

/// Total-variation (statistical) distance `½ Σ|pᵢ − qᵢ|` between two
/// probability vectors (paper §7.2's "measured error" metric).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn statistical_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::ProgramBuilder;
    use gleipnir_linalg::C64;

    #[test]
    fn pure_run_matches_statevector() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).rx(2, 0.9).rzz(0, 2, 0.4);
        let p = b.build();
        let mut sv = StateVector::zero_state(3);
        sv.run(&p).unwrap();
        let mut rho = DensityMatrix::zero_state(3);
        rho.run(&p);
        assert!(rho.matrix().approx_eq(&sv.to_density_matrix(), 1e-12));
    }

    #[test]
    fn measurement_mixes_branches() {
        // H then measure: ρ = (|0⟩⟨0| + |1⟩⟨1|)/2 with X/Z marking branches.
        let mut b = ProgramBuilder::new(2);
        b.h(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.skip();
            },
        );
        let mut rho = DensityMatrix::zero_state(2);
        rho.run(&b.build());
        // Outcome 0 → |01⟩ (x applied to q1); outcome 1 → |10⟩.
        let p = rho.probabilities();
        assert!((p[1] - 0.5).abs() < 1e-12, "{p:?}");
        assert!((p[2] - 0.5).abs() < 1e-12, "{p:?}");
        assert!((rho.purity() - 0.5).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bit_flip_kraus_channel() {
        // Φ(ρ) = (1−p)ρ + p XρX on |0⟩.
        let p = 0.2f64;
        let k0 = CMat::identity(2).scaled(c64((1.0 - p).sqrt(), 0.0));
        let k1 = Gate::X.matrix().scaled(c64(p.sqrt(), 0.0));
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_kraus(&[k0, k1], &[Qubit(0)]);
        assert!((rho.probabilities()[0] - 0.8).abs() < 1e-12);
        assert!((rho.probabilities()[1] - 0.2).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_run_applies_noise_after_each_gate() {
        let p = 0.5f64;
        let k0 = CMat::identity(2).scaled(c64((1.0 - p).sqrt(), 0.0));
        let k1 = Gate::X.matrix().scaled(c64(p.sqrt(), 0.0));
        let mut b = ProgramBuilder::new(1);
        b.x(0);
        let mut rho = DensityMatrix::zero_state(1);
        rho.run_noisy(&b.build(), &|gate, qs| {
            assert_eq!(gate, &Gate::X);
            assert_eq!(qs.len(), 1);
            Some(vec![k0.clone(), k1.clone()])
        });
        // X then 50% flip: half |1⟩, half |0⟩.
        assert!((rho.probabilities()[0] - 0.5).abs() < 1e-12);
        assert!((rho.probabilities()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn project_probabilities() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H, &[Qubit(0)]);
        let p0 = rho.project(Qubit(0), false).trace();
        let p1 = rho.project(Qubit(0), true).trace();
        assert!((p0 - 0.5).abs() < 1e-12);
        assert!((p1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn local_density_of_ghz() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let mut rho = DensityMatrix::zero_state(2);
        rho.run(&b.build());
        let local = rho.local_density(&[0]);
        assert!((local.at(0, 0).re - 0.5).abs() < 1e-12);
        assert!((local.at(1, 1).re - 0.5).abs() < 1e-12);
        assert!(local.at(0, 1).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trace_distance_between_runs() {
        let mut a = DensityMatrix::zero_state(1);
        let mut b_ = DensityMatrix::zero_state(1);
        let mut prog_x = ProgramBuilder::new(1);
        prog_x.x(0);
        b_.run(&prog_x.build());
        assert!((a.trace_distance_to(&b_).unwrap() - 1.0).abs() < 1e-10);
        let mut prog_id = ProgramBuilder::new(1);
        prog_id.skip();
        a.run(&prog_id.build());
        assert!(a.trace_distance_to(&a.clone()).unwrap() < 1e-12);
    }

    #[test]
    fn statistical_distance_basics() {
        assert!((statistical_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-15);
        assert_eq!(statistical_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((statistical_distance(&[0.7, 0.3], &[0.5, 0.5]) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn apply_matrix_nonunitary_projector() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H, &[Qubit(0)]);
        // Projector onto |0⟩.
        let mut p0 = CMat::zeros(2, 2);
        p0.set(0, 0, C64::ONE);
        rho.apply_matrix(&p0, &[Qubit(0)]);
        assert!((rho.trace() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_pure_round_trip() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H, &[Qubit(0)]);
        sv.apply_gate(&Gate::Cnot, &[Qubit(0), Qubit(1)]);
        let rho = DensityMatrix::from_pure(&sv);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }
}
