//! Dense pure-state (state-vector) simulation.

use crate::BasisState;
use gleipnir_circuit::{Gate, Program, Qubit, Stmt};
use gleipnir_linalg::{c64, CMat, CVec, C64};
use rand::Rng;
use std::fmt;

/// Errors from state-vector simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A pure-state run hit a measurement statement; density-matrix
    /// simulation (or `run_sampled`) is required for branching programs.
    MeasurementInPureRun,
    /// The register widths of the state and program disagree.
    WidthMismatch {
        /// State width.
        state: usize,
        /// Program width.
        program: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MeasurementInPureRun => {
                write!(
                    f,
                    "measurement in pure-state run; use DensityMatrix::run or run_sampled"
                )
            }
            SimError::WidthMismatch { state, program } => {
                write!(f, "state has {state} qubits but program has {program}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A dense `2ⁿ`-amplitude pure quantum state.
///
/// Qubit 0 is the most significant bit of the amplitude index (the
/// workspace-wide convention).
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
/// use gleipnir_sim::StateVector;
///
/// let mut b = ProgramBuilder::new(2);
/// b.h(0).cnot(0, 1);
/// let mut sv = StateVector::zero_state(2);
/// sv.run(&b.build())?;
/// let p = sv.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
/// # Ok::<(), gleipnir_sim::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: CVec,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    pub fn zero_state(n_qubits: usize) -> Self {
        StateVector {
            n_qubits,
            amps: CVec::basis(1 << n_qubits, 0),
        }
    }

    /// A computational basis state.
    pub fn from_basis(basis: &BasisState) -> Self {
        StateVector {
            n_qubits: basis.n_qubits(),
            amps: CVec::basis(1 << basis.n_qubits(), basis.index()),
        }
    }

    /// Builds a state from raw amplitudes (must have length `2ⁿ` and unit
    /// norm to tolerance 1e-8).
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two length or non-normalized amplitudes.
    pub fn from_amplitudes(amps: CVec) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        assert!(
            (amps.norm() - 1.0).abs() < 1e-8,
            "state must be normalized (norm = {})",
            amps.norm()
        );
        StateVector {
            n_qubits: len.trailing_zeros() as usize,
            amps,
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &CVec {
        &self.amps
    }

    /// `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> C64 {
        self.amps.dot(&other.amps)
    }

    /// Basis-state probabilities (the squared amplitude moduli).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Applies a gate to the listed qubits (first operand = local MSB).
    ///
    /// # Panics
    ///
    /// Panics if operands are out of range or repeated.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[Qubit]) {
        self.apply_matrix(&gate.matrix(), qubits);
    }

    /// Applies an arbitrary `2^k × 2^k` matrix to `k` qubits.
    ///
    /// The matrix need not be unitary (projectors are allowed; callers
    /// handle renormalization).
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match the operand count, or
    /// operands are out of range / repeated.
    pub fn apply_matrix(&mut self, m: &CMat, qubits: &[Qubit]) {
        let k = qubits.len();
        assert_eq!(m.rows(), 1 << k, "matrix dimension mismatch");
        assert_eq!(m.cols(), 1 << k, "matrix dimension mismatch");
        for q in qubits {
            assert!(q.0 < self.n_qubits, "qubit {q} out of range");
        }
        if k == 2 {
            assert_ne!(qubits[0], qubits[1], "repeated operand");
        }
        let n = self.n_qubits;
        let shifts: Vec<usize> = qubits.iter().map(|q| n - 1 - q.0).collect();
        let mask: usize = shifts.iter().map(|s| 1usize << s).sum();
        let dim = 1usize << n;
        let kd = 1usize << k;
        let amps = self.amps.as_mut_slice();
        let mut local = vec![C64::ZERO; kd];
        // Iterate over all indices with zeros in the operand positions.
        let mut base = 0usize;
        loop {
            // Gather.
            for (l, slot) in local.iter_mut().enumerate() {
                let mut idx = base;
                for (pos, &sh) in shifts.iter().enumerate() {
                    idx |= ((l >> (k - 1 - pos)) & 1) << sh;
                }
                *slot = amps[idx];
            }
            // Multiply and scatter.
            for r in 0..kd {
                let mut acc = C64::ZERO;
                for (l, &al) in local.iter().enumerate() {
                    acc = acc.add_prod(m.at(r, l), al);
                }
                let mut idx = base;
                for (pos, &sh) in shifts.iter().enumerate() {
                    idx |= ((r >> (k - 1 - pos)) & 1) << sh;
                }
                amps[idx] = acc;
            }
            // Next base index skipping operand bits (standard bit trick).
            base = (base | mask).wrapping_add(1) & !mask;
            if base == 0 || base >= dim {
                break;
            }
        }
    }

    /// Runs a measurement-free program.
    ///
    /// # Errors
    ///
    /// [`SimError::MeasurementInPureRun`] if the program branches;
    /// [`SimError::WidthMismatch`] on register disagreement.
    pub fn run(&mut self, program: &Program) -> Result<(), SimError> {
        if program.n_qubits() != self.n_qubits {
            return Err(SimError::WidthMismatch {
                state: self.n_qubits,
                program: program.n_qubits(),
            });
        }
        let gates = program
            .straight_line_gates()
            .ok_or(SimError::MeasurementInPureRun)?;
        for g in gates {
            self.apply_gate(&g.gate, &g.qubits);
        }
        Ok(())
    }

    /// Runs a program, sampling measurement outcomes with `rng` and
    /// collapsing the state. Returns the outcomes in program order.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] on register disagreement.
    pub fn run_sampled<R: Rng>(
        &mut self,
        program: &Program,
        rng: &mut R,
    ) -> Result<Vec<(Qubit, bool)>, SimError> {
        if program.n_qubits() != self.n_qubits {
            return Err(SimError::WidthMismatch {
                state: self.n_qubits,
                program: program.n_qubits(),
            });
        }
        let mut outcomes = Vec::new();
        self.run_stmt_sampled(program.body(), rng, &mut outcomes);
        Ok(outcomes)
    }

    fn run_stmt_sampled<R: Rng>(
        &mut self,
        s: &Stmt,
        rng: &mut R,
        outcomes: &mut Vec<(Qubit, bool)>,
    ) {
        match s {
            Stmt::Skip => {}
            Stmt::Seq(ss) => {
                for s in ss {
                    self.run_stmt_sampled(s, rng, outcomes);
                }
            }
            Stmt::Gate(g) => self.apply_gate(&g.gate, &g.qubits),
            Stmt::IfMeasure { qubit, zero, one } => {
                let p1 = self.prob_one(*qubit);
                let got_one = rng.gen::<f64>() < p1;
                self.collapse(*qubit, got_one);
                outcomes.push((*qubit, got_one));
                if got_one {
                    self.run_stmt_sampled(one, rng, outcomes);
                } else {
                    self.run_stmt_sampled(zero, rng, outcomes);
                }
            }
        }
    }

    /// Probability of measuring `|1⟩` on the given qubit.
    pub fn prob_one(&self, q: Qubit) -> f64 {
        let sh = self.n_qubits - 1 - q.0;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> sh) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projects qubit `q` onto `outcome` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has (near-)zero probability.
    pub fn collapse(&mut self, q: Qubit, outcome: bool) {
        let sh = self.n_qubits - 1 - q.0;
        let want = usize::from(outcome);
        let mut norm_sqr = 0.0;
        for (i, a) in self.amps.as_mut_slice().iter_mut().enumerate() {
            if (i >> sh) & 1 != want {
                *a = C64::ZERO;
            } else {
                norm_sqr += a.norm_sqr();
            }
        }
        assert!(norm_sqr > 1e-300, "collapse onto zero-probability outcome");
        let scale = c64(1.0 / norm_sqr.sqrt(), 0.0);
        self.amps.scale_mut(scale);
    }

    /// Samples a full computational-basis measurement.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if x < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// The density matrix `|ψ⟩⟨ψ|`.
    pub fn to_density_matrix(&self) -> CMat {
        CMat::outer(&self.amps, &self.amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::ProgramBuilder;
    use gleipnir_linalg::c64;

    #[test]
    fn hadamard_makes_plus() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H, &[Qubit(0)]);
        let s = 1.0 / 2f64.sqrt();
        assert!(sv.amplitudes()[0].approx_eq(c64(s, 0.0), 1e-12));
        assert!(sv.amplitudes()[1].approx_eq(c64(s, 0.0), 1e-12));
    }

    #[test]
    fn x_on_msb_qubit() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_gate(&Gate::X, &[Qubit(0)]);
        // |000⟩ → |100⟩ = index 4.
        assert!(sv.amplitudes()[4].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn ghz_three_qubits() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).cnot(1, 2);
        let mut sv = StateVector::zero_state(3);
        sv.run(&b.build()).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!(p[1..7].iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn cnot_with_reversed_operands() {
        // Control on q1, target q0: |01⟩ → |11⟩.
        let mut sv = StateVector::from_basis(&BasisState::from_bits(&[false, true]));
        sv.apply_gate(&Gate::Cnot, &[Qubit(1), Qubit(0)]);
        assert!(sv.amplitudes()[3].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn matches_program_unitary() {
        let mut b = ProgramBuilder::new(3);
        b.h(0)
            .rx(1, 0.7)
            .cnot(0, 2)
            .rzz(1, 2, 1.3)
            .cz(0, 1)
            .swap(1, 2);
        let p = b.build();
        let u = p.unitary().unwrap();
        let mut sv = StateVector::zero_state(3);
        sv.run(&p).unwrap();
        // U|000⟩ = column 0 of U.
        for i in 0..8 {
            assert!(sv.amplitudes()[i].approx_eq(u.at(i, 0), 1e-12));
        }
    }

    #[test]
    fn norm_is_preserved() {
        let mut b = ProgramBuilder::new(4);
        for q in 0..4 {
            b.h(q);
        }
        b.cnot(0, 1).cnot(2, 3).rzz(1, 2, 0.4).t(0).s(3);
        let mut sv = StateVector::zero_state(4);
        sv.run(&b.build()).unwrap();
        assert!((sv.amplitudes().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_one_and_collapse() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H, &[Qubit(0)]);
        assert!((sv.prob_one(Qubit(0)) - 0.5).abs() < 1e-12);
        sv.collapse(Qubit(0), true);
        assert!((sv.prob_one(Qubit(0)) - 1.0).abs() < 1e-12);
        assert!((sv.amplitudes().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_run_deterministic_branch() {
        // After X, the measurement always yields 1, so the `one` branch runs.
        let mut b = ProgramBuilder::new(2);
        b.x(0).if_measure(
            0,
            |z| {
                z.skip();
            },
            |o| {
                o.x(1);
            },
        );
        let mut rng = rand::thread_rng();
        let mut sv = StateVector::zero_state(2);
        let outcomes = sv.run_sampled(&b.build(), &mut rng).unwrap();
        assert_eq!(outcomes, vec![(Qubit(0), true)]);
        // State is |11⟩.
        assert!(sv.amplitudes()[3].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn pure_run_rejects_measurement() {
        let mut b = ProgramBuilder::new(1);
        b.if_measure(0, |_| {}, |_| {});
        let mut sv = StateVector::zero_state(1);
        assert_eq!(
            sv.run(&b.build()).unwrap_err(),
            SimError::MeasurementInPureRun
        );
    }

    #[test]
    fn width_mismatch_detected() {
        let mut b = ProgramBuilder::new(3);
        b.h(0);
        let mut sv = StateVector::zero_state(2);
        assert!(matches!(
            sv.run(&b.build()).unwrap_err(),
            SimError::WidthMismatch {
                state: 2,
                program: 3
            }
        ));
    }

    #[test]
    fn sample_respects_distribution() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::X, &[Qubit(0)]);
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            assert_eq!(sv.sample(&mut rng), 1);
        }
    }
}
