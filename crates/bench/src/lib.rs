//! # gleipnir-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! Table 2, Figure 14, and Table 3, shared by the `table2`, `figure14`, and
//! `table3` binaries and the Criterion ablation benches.
//!
//! Every experiment runner takes the caller's [`Engine`] so whole tables
//! and sweeps share one SDP-certificate cache, the way a long-running
//! analysis service would.

#![warn(missing_docs)]

use gleipnir_circuit::{compact_program, route_with_final, CouplingMap, Mapping, Program};
use gleipnir_core::{AnalysisError, AnalysisRequest, Engine, Method};
use gleipnir_noise::{DeviceModel, NoiseModel};
use gleipnir_sim::{statistical_distance, DensityMatrix};
use gleipnir_workloads::ghz;
use std::time::{Duration, Instant};

/// One evaluated Table 2 row.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Register width.
    pub qubits: usize,
    /// Generated gate count.
    pub gates: usize,
    /// The paper's reported gate count.
    pub paper_gates: usize,
    /// Gleipnir's certified bound.
    pub gleipnir_bound: f64,
    /// Analysis wall-clock time.
    pub gleipnir_time: Duration,
    /// The LQR-with-full-simulation bound (None = "timed out" per paper's
    /// protocol for ≥ 20 qubits).
    pub lqr_bound: Option<f64>,
    /// LQR runtime, when attempted.
    pub lqr_time: Option<Duration>,
    /// The unconstrained worst-case bound.
    pub worst_case: f64,
}

/// Evaluates one Table 2 benchmark at the given MPS width on the caller's
/// engine.
///
/// `attempt_lqr` controls the full-simulation column; the paper's protocol
/// (and the exponential cost) limits it to ≤ 10 qubits.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn run_table2_row(
    engine: &Engine,
    name: &str,
    program: &Program,
    paper_gates: usize,
    width: usize,
    attempt_lqr: bool,
) -> Result<Table2Row, AnalysisError> {
    let noise = NoiseModel::uniform_bit_flip(1e-4);
    let request = |method: Method| {
        AnalysisRequest::builder(program.clone())
            .noise(noise.clone())
            .method(method)
            .build()
    };

    let t0 = Instant::now();
    let report = engine.analyze(&request(Method::StateAware { mps_width: width })?)?;
    let gleipnir_time = t0.elapsed();

    let worst = engine.analyze(&request(Method::WorstCase)?)?;

    let (lqr_bound, lqr_time) = if attempt_lqr && program.n_qubits() <= 10 {
        let t1 = Instant::now();
        match engine.analyze(&request(Method::LqrFullSim)?) {
            Ok(r) => (Some(r.error_bound()), Some(t1.elapsed())),
            Err(_) => (None, None),
        }
    } else {
        (None, None)
    };

    Ok(Table2Row {
        name: name.to_string(),
        qubits: program.n_qubits(),
        gates: program.gate_count(),
        paper_gates,
        gleipnir_bound: report.error_bound(),
        gleipnir_time,
        lqr_bound,
        lqr_time,
        worst_case: worst.error_bound(),
    })
}

/// Formats Table 2 rows like the paper (bounds in units of 1e-4).
pub fn format_table2(rows: &[Table2Row], width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2 — Gleipnir (w = {width}) vs LQR-full-sim vs worst case (bounds ×1e-4)\n"
    ));
    out.push_str(&format!(
        "{:<14} {:>6} {:>6} {:>7} {:>16} {:>10} {:>14} {:>10} {:>12}\n",
        "Benchmark",
        "qubits",
        "gates",
        "(paper)",
        "Gleipnir(×1e-4)",
        "time(s)",
        "LQR(×1e-4)",
        "time(s)",
        "worst(×1e-4)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>6} {:>6} {:>7} {:>16.2} {:>10.2} {:>14} {:>10} {:>12.1}\n",
            r.name,
            r.qubits,
            r.gates,
            r.paper_gates,
            r.gleipnir_bound * 1e4,
            r.gleipnir_time.as_secs_f64(),
            r.lqr_bound
                .map_or("timed out".to_string(), |b| format!("{:.2}", b * 1e4)),
            r.lqr_time
                .map_or("-".to_string(), |t| format!("{:.2}", t.as_secs_f64())),
            r.worst_case * 1e4,
        ));
    }
    out
}

/// One evaluated Table 3 row: a GHZ circuit under a specific mapping.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Circuit name (GHZ-3 / GHZ-5).
    pub circuit: String,
    /// The mapping, paper notation (physical qubits in logical order).
    pub mapping: String,
    /// Gleipnir's bound (gate errors + readout-error term).
    pub gleipnir_bound: f64,
    /// The measured error: statistical distance of the simulated noisy
    /// device distribution from the ideal GHZ distribution (the hardware
    /// substitute of DESIGN.md §3).
    pub measured: f64,
    /// Number of 2-qubit gates after routing (swap overhead indicator).
    pub routed_2q_gates: usize,
}

/// Runs one mapping experiment of the §7.2 study on a device model.
///
/// The logical circuit is routed onto the device under `placement`; the
/// bound side analyzes the routed noisy circuit with Gleipnir and adds the
/// sound readout-error term `Σ r_q`; the measured side simulates the noisy
/// circuit exactly (density matrix on the compacted register), applies
/// readout confusion, and reports the statistical distance from the ideal
/// GHZ distribution.
///
/// # Errors
///
/// Propagates routing and analysis failures.
///
/// # Panics
///
/// Panics if the compacted register exceeds 12 qubits (not the case for the
/// paper's GHZ-3/GHZ-5 mappings).
pub fn run_mapping_experiment(
    engine: &Engine,
    device: &DeviceModel,
    ghz_n: usize,
    placement: &[usize],
) -> Result<Table3Row, Box<dyn std::error::Error>> {
    let logical = ghz(ghz_n);
    let mapping = Mapping::new(placement.to_vec());
    let (routed, final_placement) = route_with_final(&logical, device.coupling(), &mapping)?;

    // Compact to the touched physical qubits for tractable dense simulation.
    let (compact, originals) = compact_program(&routed);
    assert!(compact.n_qubits() <= 12, "compacted register too large");

    // A device view over the compact register (same calibration, renumbered).
    let compact_device = compact_device_view(device, &originals);
    let noise = NoiseModel::Device(compact_device.clone());

    // ---- Bound side -------------------------------------------------
    let request = AnalysisRequest::builder(compact.clone())
        .noise(noise.clone())
        .method(Method::StateAware { mps_width: 32 })
        .build()?;
    let report = engine.analyze(&request)?;
    // Physical qubits measured: where the logical GHZ qubits ended up.
    let measured_phys: Vec<usize> = (0..ghz_n).map(|l| final_placement.physical(l)).collect();
    let readout_term = device.readout_error_bound(&measured_phys);
    let bound = report.error_bound() + readout_term;

    // ---- Measured side ----------------------------------------------
    let mut rho = DensityMatrix::zero_state(compact.n_qubits());
    rho.run_noisy(&compact, &|gate, qubits| {
        noise
            .channel_for(gate, qubits)
            .map(|ch| ch.kraus().to_vec())
    });
    // Distribution over the measured (compact) qubits, MSB-first in logical
    // order.
    let measured_compact: Vec<usize> = measured_phys
        .iter()
        .map(|p| {
            originals
                .iter()
                .position(|&o| o == *p)
                .expect("measured qubit touched")
        })
        .collect();
    let probs = marginal_distribution(&rho, &measured_compact);
    let noisy_probs = compact_device.apply_readout(&probs, &measured_compact);
    // Ideal GHZ distribution: half |0…0⟩, half |1…1⟩.
    let mut ideal = vec![0.0; 1 << ghz_n];
    ideal[0] = 0.5;
    ideal[(1 << ghz_n) - 1] = 0.5;
    let measured = statistical_distance(&noisy_probs, &ideal);

    Ok(Table3Row {
        circuit: format!("GHZ-{ghz_n}"),
        mapping: placement
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("-"),
        gleipnir_bound: bound,
        measured,
        routed_2q_gates: routed.two_qubit_gate_count(),
    })
}

/// Builds a compact-register device view with calibration copied from the
/// original device via `originals[compact] = physical`.
fn compact_device_view(device: &DeviceModel, originals: &[usize]) -> DeviceModel {
    let n = originals.len();
    let mut edges = Vec::new();
    let mut q2 = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if let Some(e) = device.q2_error(originals[a], originals[b]) {
                edges.push((a, b));
                q2.push(((a, b), e));
            }
        }
    }
    DeviceModel::new(
        format!("{} (compact view)", device.name()),
        CouplingMap::from_edges(n, &edges),
        originals.iter().map(|&p| device.q1_error(p)).collect(),
        q2,
        originals.iter().map(|&p| device.readout_error(p)).collect(),
    )
}

/// Marginal distribution of the listed qubits (MSB-first in the given
/// order) from a density matrix.
fn marginal_distribution(rho: &DensityMatrix, qubits: &[usize]) -> Vec<f64> {
    let full = rho.probabilities();
    let n = rho.n_qubits();
    let k = qubits.len();
    let mut out = vec![0.0; 1 << k];
    for (idx, p) in full.iter().enumerate() {
        let mut m = 0usize;
        for (pos, &q) in qubits.iter().enumerate() {
            let bit = (idx >> (n - 1 - q)) & 1;
            m |= bit << (k - 1 - pos);
        }
        out[m] += p;
    }
    out
}

/// Formats Table 3 rows like the paper.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 3 — qubit-mapping study on the Boeblingen device model\n");
    out.push_str(&format!(
        "{:<8} {:<12} {:>15} {:>15} {:>10}\n",
        "Circuit", "Mapping", "Gleipnir bound", "Measured error", "2q gates"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<12} {:>15.3} {:>15.3} {:>10}\n",
            r.circuit, r.mapping, r.gleipnir_bound, r.measured, r.routed_2q_gates
        ));
    }
    out
}

/// One point of the Figure 14 sweep.
#[derive(Clone, Debug)]
pub struct Figure14Point {
    /// MPS width.
    pub width: usize,
    /// Gleipnir's bound at this width.
    pub bound: f64,
    /// Analysis runtime.
    pub time: Duration,
    /// Total MPS truncation error δ at this width.
    pub tn_delta: f64,
}

/// Runs the Figure 14 sweep (error bound and runtime vs MPS width) for a
/// program under the paper's bit-flip noise, on the caller's engine — so
/// wider widths reuse the narrower widths' certificates.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn run_figure14(
    engine: &Engine,
    program: &Program,
    widths: &[usize],
) -> Result<Vec<Figure14Point>, AnalysisError> {
    let noise = NoiseModel::uniform_bit_flip(1e-4);
    let mut points = Vec::new();
    for &w in widths {
        let request = AnalysisRequest::builder(program.clone())
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: w })
            .build()?;
        let t0 = Instant::now();
        let report = engine.analyze(&request)?;
        points.push(Figure14Point {
            width: w,
            bound: report.error_bound(),
            time: t0.elapsed(),
            tn_delta: report.tn_delta().unwrap_or(0.0),
        });
    }
    Ok(points)
}

/// Formats the Figure 14 series.
pub fn format_figure14(points: &[Figure14Point], program_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 14 — error bound and runtime vs MPS size ({program_name})\n"
    ));
    out.push_str(&format!(
        "{:>6} {:>18} {:>12} {:>12}\n",
        "w", "bound(×1e-4)", "runtime(s)", "TN δ"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>6} {:>18.2} {:>12.2} {:>12.4}\n",
            p.width,
            p.bound * 1e4,
            p.time.as_secs_f64(),
            p.tn_delta
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_distribution_of_bell_pair() {
        let mut b = gleipnir_circuit::ProgramBuilder::new(3);
        b.h(0).cnot(0, 2);
        let mut rho = DensityMatrix::zero_state(3);
        rho.run(&b.build());
        let m = marginal_distribution(&rho, &[0, 2]);
        assert!((m[0] - 0.5).abs() < 1e-12);
        assert!((m[3] - 0.5).abs() < 1e-12);
        let m = marginal_distribution(&rho, &[2, 0]);
        assert!((m[0] - 0.5).abs() < 1e-12);
        assert!((m[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compact_device_preserves_calibration() {
        let dev = DeviceModel::boeblingen20();
        let view = compact_device_view(&dev, &[1, 2, 3]);
        assert_eq!(view.q1_error(0), dev.q1_error(1));
        assert_eq!(view.q2_error(0, 1), dev.q2_error(1, 2));
        assert_eq!(view.readout_error(2), dev.readout_error(3));
    }

    #[test]
    fn mapping_experiment_bound_dominates_measurement() {
        let dev = DeviceModel::boeblingen20();
        let row = run_mapping_experiment(&Engine::new(), &dev, 3, &[1, 2, 3]).unwrap();
        assert!(
            row.gleipnir_bound >= row.measured,
            "bound {} below measured {}",
            row.gleipnir_bound,
            row.measured
        );
        assert!(row.measured > 0.0);
    }
}
