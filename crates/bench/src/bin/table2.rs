//! Regenerates the paper's **Table 2**: Gleipnir bounds vs LQR-full-sim vs
//! the unconstrained worst case over the nine benchmarks.
//!
//! Usage:
//!
//! ```text
//! cargo run -p gleipnir-bench --release --bin table2 [-- --full] [-- --width W] [-- --bench NAME]
//! ```
//!
//! The default profile uses `w = 32` and skips the two largest benchmarks'
//! LQR attempts exactly as the paper does (they "time out"); `--full` runs
//! all nine rows at the paper's `w = 128`.

use gleipnir_bench::{format_table2, run_table2_row};
use gleipnir_core::Engine;
use gleipnir_workloads::paper_benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let width = args
        .iter()
        .position(|a| a == "--width")
        .and_then(|i| args.get(i + 1))
        .and_then(|w| w.parse().ok())
        .unwrap_or(if full { 128 } else { 32 });
    let filter = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let engine = Engine::new();
    let mut rows = Vec::new();
    for bench in paper_benchmarks() {
        if let Some(f) = &filter {
            if !bench.name.contains(f.as_str()) {
                continue;
            }
        }
        eprintln!(
            "running {} ({} qubits, {} gates) at w = {width}…",
            bench.name,
            bench.n_qubits,
            bench.program.gate_count()
        );
        match run_table2_row(
            &engine,
            bench.name,
            &bench.program,
            bench.paper_gate_count,
            width,
            true,
        ) {
            Ok(row) => {
                eprintln!(
                    "  bound {:.2}e-4 in {:.1}s (worst {:.1}e-4)",
                    row.gleipnir_bound * 1e4,
                    row.gleipnir_time.as_secs_f64(),
                    row.worst_case * 1e4
                );
                rows.push(row);
            }
            Err(e) => eprintln!("  FAILED: {e}"),
        }
    }
    println!("{}", format_table2(&rows, width));
}
