//! Regenerates the paper's **Table 3**: the qubit-mapping case study —
//! Gleipnir bounds vs measured errors for GHZ-3 and GHZ-5 under different
//! physical placements on the Boeblingen device model.
//!
//! The "measured" column substitutes exact noisy density-matrix simulation
//! (plus readout confusion) for the real IBM hardware, per DESIGN.md §3.
//!
//! Usage:
//!
//! ```text
//! cargo run -p gleipnir-bench --release --bin table3
//! ```

use gleipnir_bench::{format_table3, run_mapping_experiment};
use gleipnir_core::Engine;
use gleipnir_noise::DeviceModel;

fn main() {
    let device = DeviceModel::boeblingen20();
    // The paper's five mappings (§7.2).
    let experiments: Vec<(usize, Vec<usize>)> = vec![
        (3, vec![0, 1, 2]),
        (3, vec![1, 2, 3]),
        (3, vec![2, 3, 4]),
        (5, vec![0, 1, 2, 3, 4]),
        (5, vec![2, 1, 0, 3, 4]),
    ];

    let engine = Engine::new();
    let mut rows = Vec::new();
    for (n, placement) in experiments {
        eprintln!("running GHZ-{n} with mapping {placement:?}…");
        match run_mapping_experiment(&engine, &device, n, &placement) {
            Ok(row) => {
                eprintln!(
                    "  bound {:.3}, measured {:.3} ({} routed 2q gates)",
                    row.gleipnir_bound, row.measured, row.routed_2q_gates
                );
                rows.push(row);
            }
            Err(e) => eprintln!("  FAILED: {e}"),
        }
    }
    println!("{}", format_table3(&rows));

    // Consistency check the paper highlights: the bound ranking must match
    // the measured ranking within each circuit class.
    for circuit in ["GHZ-3", "GHZ-5"] {
        let mut class: Vec<_> = rows.iter().filter(|r| r.circuit == circuit).collect();
        class.sort_by(|a, b| a.gleipnir_bound.partial_cmp(&b.gleipnir_bound).unwrap());
        let by_bound: Vec<&str> = class.iter().map(|r| r.mapping.as_str()).collect();
        class.sort_by(|a, b| a.measured.partial_cmp(&b.measured).unwrap());
        let by_measured: Vec<&str> = class.iter().map(|r| r.mapping.as_str()).collect();
        println!(
            "{circuit}: ranking by bound {:?} {} ranking by measured {:?}",
            by_bound,
            if by_bound == by_measured { "==" } else { "!=" },
            by_measured
        );
    }
}
