//! Regenerates the paper's **Figure 14**: error bound and runtime of
//! Gleipnir on `Isingmodel45` as a function of the MPS size `w`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p gleipnir-bench --release --bin figure14 [-- --full] [-- --qubits N]
//! ```
//!
//! The default profile sweeps `w ∈ {1, 2, 4, 8, 16, 32}`; `--full` extends
//! to the paper's `{…, 64, 128}`.

use gleipnir_bench::{format_figure14, run_figure14};
use gleipnir_core::Engine;
use gleipnir_workloads::ising_chain;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let n: usize = args
        .iter()
        .position(|a| a == "--qubits")
        .and_then(|i| args.get(i + 1))
        .and_then(|w| w.parse().ok())
        .unwrap_or(45);

    let program = ising_chain(n, 25, 1.0, 1.0, 0.1);
    let name = format!("Isingmodel{n} ({} gates)", program.gate_count());
    let widths: Vec<usize> = if full {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };

    eprintln!("sweeping {name} over w = {widths:?}…");
    match run_figure14(&Engine::new(), &program, &widths) {
        Ok(points) => {
            for p in &points {
                eprintln!(
                    "  w = {:>3}: bound {:.2}e-4, δ = {:.4}, {:.1}s",
                    p.width,
                    p.bound * 1e4,
                    p.tn_delta,
                    p.time.as_secs_f64()
                );
            }
            println!("{}", format_figure14(&points, &name));
        }
        Err(e) => eprintln!("FAILED: {e}"),
    }
}
