//! Server throughput bench: requests/sec and latency percentiles against a
//! real loopback `gleipnir-server`, cold cache vs warm.
//!
//! Emits a machine-readable **`BENCH_server.json`** (override the path
//! with the `BENCH_SERVER_JSON_PATH` env var) alongside the pipeline
//! bench's `BENCH_pipeline.json`, so CI accumulates a service-level perf
//! trajectory:
//!
//! * `cold` — the first `/analyze` on a fresh engine (pays every SDP);
//! * `warm` — repeated identical `/analyze` requests, one connection per
//!   request (every judgment is a cache hit);
//! * `warm_keepalive` — the same warm requests on **one** keep-alive
//!   connection (steady-state serving cost without the connect tax);
//! * `warm_keepalive_concurrent` — several persistent connections driving
//!   the worker pool at once (the steady-state fleet shape);
//! * `healthz` — protocol floor, one connection per request (the old
//!   thread-per-connection baseline shape);
//! * `healthz_keepalive_pipelined` — protocol ceiling: **pipelined**
//!   bursts on one connection (this is what the reactor transport buys).
//!
//! Reading the numbers: warm `/analyze` stages are bounded by engine CPU
//! (~0.15 ms of MPS walk per request — on a 1-core container every warm
//! stage converges to the same ~6–7k req/s compute ceiling), so the
//! transport win shows up in the `healthz*` pair: the pipelined stage
//! must beat the connection-per-request baseline by ≥2× (it measures
//! >3× there, and >10× against the old ~4.8k thread-per-connection
//! `/analyze` shape, on the reference container).
//!
//! Like the pipeline bench, the JSON pass runs the same way under
//! `cargo bench … -- --test`, so CI gets the artifact at a fraction of the
//! cost of a full timing run.

use criterion::{criterion_group, criterion_main, Criterion};
use gleipnir_circuit::pretty;
use gleipnir_core::jsonfmt::json_str;
use gleipnir_server::{spawn, ServerConfig, ServerHandle};
use gleipnir_workloads::{qaoa_maxcut, Graph};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn glq_source() -> String {
    pretty(&qaoa_maxcut(&Graph::cycle(6), &[0.35], &[0.62]))
}

fn analyze_body() -> String {
    format!(
        "{{\"source\":{},\"name\":\"qaoa6\",\"width\":16}}",
        json_str(&glq_source())
    )
}

fn start_server() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("spawn bench server")
}

/// One blocking request; returns (status, latency).
fn request(addr: SocketAddr, raw: &str) -> (u16, Duration) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, start.elapsed())
}

fn post_analyze(addr: SocketAddr, body: &str) -> (u16, Duration) {
    request(
        addr,
        &format!(
            "POST /analyze HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get_healthz(addr: SocketAddr) -> (u16, Duration) {
    request(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n",
    )
}

/// A persistent keep-alive connection issuing many requests.
struct KeepAlive {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        KeepAlive {
            stream,
            carry: Vec::new(),
        }
    }

    fn send(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).expect("send request");
    }

    /// Reads exactly one response off the connection (keep-alive framing:
    /// headers + `Content-Length` body), leaving any pipelined successor
    /// bytes in `carry`.
    fn read_response(&mut self) -> u16 {
        let mut chunk = [0u8; 16 * 1024];
        let header_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "connection closed mid-response");
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.carry[..header_end]).expect("UTF-8 head");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("numeric Content-Length"))
            })
            .expect("Content-Length header");
        let total = header_end + 4 + content_length;
        while self.carry.len() < total {
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "connection closed mid-body");
            self.carry.extend_from_slice(&chunk[..n]);
        }
        self.carry.drain(..total);
        status
    }

    /// One request/response round trip on the persistent connection.
    fn roundtrip(&mut self, raw: &str) -> (u16, Duration) {
        let start = Instant::now();
        self.send(raw);
        (self.read_response(), start.elapsed())
    }
}

struct StageRecord {
    name: &'static str,
    requests: usize,
    total: Duration,
    latencies: Vec<Duration>,
}

impl StageRecord {
    fn json(&mut self) -> String {
        // Percentiles come from the telemetry histogram — the same fixed
        // log-scale buckets the server exports over
        // `/metrics?format=prometheus`, so bench numbers and production
        // quantiles are directly comparable.
        let hist = gleipnir_telemetry::Histogram::latency();
        for latency in &self.latencies {
            hist.observe_duration(*latency);
        }
        let snap = hist.snapshot();
        let rps = self.requests as f64 / self.total.as_secs_f64().max(1e-9);
        format!(
            "{{\"name\":\"{}\",\"requests\":{},\"wall_ms\":{:.3},\"req_per_sec\":{:.2},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3}}}",
            self.name,
            self.requests,
            self.total.as_secs_f64() * 1e3,
            rps,
            snap.quantile_ms(0.50),
            snap.quantile_ms(0.95),
            snap.quantile_ms(0.99),
        )
    }
}

fn run_stage(
    name: &'static str,
    n: usize,
    mut one: impl FnMut() -> (u16, Duration),
) -> StageRecord {
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        let (status, latency) = one();
        assert_eq!(status, 200, "{name}: bench request failed");
        latencies.push(latency);
    }
    StageRecord {
        name,
        requests: n,
        total: start.elapsed(),
        latencies,
    }
}

fn emit_json() {
    let server = start_server();
    let addr = server.addr();
    let body = analyze_body();

    // Cold: exactly one request on the fresh engine pays all SDPs.
    let mut cold = run_stage("cold", 1, || post_analyze(addr, &body));
    // Warm: the steady-state serving cost (every judgment cached), one
    // connection per request.
    let mut warm = run_stage("warm", 20, || post_analyze(addr, &body));
    // Warm on a single keep-alive connection: same work, no connect tax.
    let analyze_raw = format!(
        "POST /analyze HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut ka = KeepAlive::connect(addr);
    let mut warm_ka = run_stage("warm_keepalive", 20, || ka.roundtrip(&analyze_raw));
    // Steady-state fleet shape: several persistent keep-alive
    // connections driving the worker pool concurrently. This is the
    // number to compare against the old thread-per-connection `warm`
    // stage (~4.8k req/s on the reference machine).
    const WARM_CONNS: usize = 8;
    const WARM_PER_CONN: usize = 50;
    let warm_pipelined = {
        let start = Instant::now();
        let mut latencies = Vec::with_capacity(WARM_CONNS * WARM_PER_CONN);
        let handles: Vec<_> = (0..WARM_CONNS)
            .map(|_| {
                let raw = analyze_raw.clone();
                std::thread::spawn(move || {
                    let mut ka = KeepAlive::connect(addr);
                    let mut latencies = Vec::with_capacity(WARM_PER_CONN);
                    for _ in 0..WARM_PER_CONN {
                        let (status, latency) = ka.roundtrip(&raw);
                        assert_eq!(status, 200, "warm_pipelined request failed");
                        latencies.push(latency);
                    }
                    latencies
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("warm_pipelined client"));
        }
        StageRecord {
            name: "warm_keepalive_concurrent",
            requests: WARM_CONNS * WARM_PER_CONN,
            total: start.elapsed(),
            latencies,
        }
    };
    let mut warm_pipelined = warm_pipelined;
    // Protocol floor: connection per request (the shape the old
    // thread-per-connection transport served).
    let mut health = run_stage("healthz", 50, || get_healthz(addr));
    // Protocol ceiling: one connection, requests pipelined in batches.
    // Per-request latency is the batch round trip amortized over the
    // batch (responses come back in order, so the measurement is honest).
    let healthz_raw = "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n";
    const PIPELINE_BATCH: usize = 25;
    const PIPELINE_BATCHES: usize = 20;
    let mut ka = KeepAlive::connect(addr);
    let mut batch = 0;
    let mut health_ka = run_stage("healthz_keepalive_pipelined", PIPELINE_BATCHES, move || {
        batch += 1;
        let start = Instant::now();
        for _ in 0..PIPELINE_BATCH {
            ka.send(healthz_raw);
        }
        for _ in 0..PIPELINE_BATCH {
            assert_eq!(ka.read_response(), 200, "pipelined batch {batch}");
        }
        (200, start.elapsed())
    });
    // The stage record counts batches; rescale to requests so req_per_sec
    // is comparable across stages.
    health_ka.requests = PIPELINE_BATCH * PIPELINE_BATCHES;

    let json = format!
        (
        "{{\"bench\":\"server_throughput\",\"workload\":{{\"name\":\"qaoa_maxcut_cycle6\",\"width\":16}},\"http_workers\":4,\"pipeline_batch\":{PIPELINE_BATCH},\"warm_conns\":{WARM_CONNS},\"stages\":[{},{},{},{},{},{}]}}\n",
        cold.json(),
        warm.json(),
        warm_ka.json(),
        warm_pipelined.json(),
        health.json(),
        health_ka.json()
    );
    server.join();

    // Default to the repo root (not the bench package's CWD) so `cargo
    // bench` from anywhere in the workspace drops the artifact where CI
    // collects it.
    let path = std::env::var("BENCH_SERVER_JSON_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_server(c: &mut Criterion) {
    let server = start_server();
    let addr = server.addr();
    let body = analyze_body();
    // Prime the cache so the timed loop measures warm serving.
    let (status, _) = post_analyze(addr, &body);
    assert_eq!(status, 200);

    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    group.bench_function("analyze_warm", |b| {
        b.iter(|| {
            let (status, _) = post_analyze(addr, &body);
            assert_eq!(status, 200);
        })
    });
    group.bench_function("healthz", |b| {
        b.iter(|| {
            let (status, _) = get_healthz(addr);
            assert_eq!(status, 200);
        })
    });
    group.finish();
    server.join();
}

fn bench_json(_c: &mut Criterion) {
    emit_json();
}

criterion_group!(benches, bench_server, bench_json);
criterion_main!(benches);
