//! Server throughput bench: requests/sec and latency percentiles against a
//! real loopback `gleipnir-server`, cold cache vs warm.
//!
//! Emits a machine-readable **`BENCH_server.json`** (override the path
//! with the `BENCH_SERVER_JSON_PATH` env var) alongside the pipeline
//! bench's `BENCH_pipeline.json`, so CI accumulates a service-level perf
//! trajectory:
//!
//! * `cold` — the first `/analyze` on a fresh engine (pays every SDP);
//! * `warm` — repeated identical `/analyze` requests (every judgment is a
//!   cache hit; this is the steady-state serving cost);
//! * `healthz` — protocol floor (no analysis at all).
//!
//! Like the pipeline bench, the JSON pass runs the same way under
//! `cargo bench … -- --test`, so CI gets the artifact at a fraction of the
//! cost of a full timing run.

use criterion::{criterion_group, criterion_main, Criterion};
use gleipnir_circuit::pretty;
use gleipnir_core::jsonfmt::json_str;
use gleipnir_server::{spawn, ServerConfig, ServerHandle};
use gleipnir_workloads::{qaoa_maxcut, Graph};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn glq_source() -> String {
    pretty(&qaoa_maxcut(&Graph::cycle(6), &[0.35], &[0.62]))
}

fn analyze_body() -> String {
    format!(
        "{{\"source\":{},\"name\":\"qaoa6\",\"width\":16}}",
        json_str(&glq_source())
    )
}

fn start_server() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("spawn bench server")
}

/// One blocking request; returns (status, latency).
fn request(addr: SocketAddr, raw: &str) -> (u16, Duration) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, start.elapsed())
}

fn post_analyze(addr: SocketAddr, body: &str) -> (u16, Duration) {
    request(
        addr,
        &format!(
            "POST /analyze HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get_healthz(addr: SocketAddr) -> (u16, Duration) {
    request(addr, "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
}

struct StageRecord {
    name: &'static str,
    requests: usize,
    total: Duration,
    latencies: Vec<Duration>,
}

impl StageRecord {
    fn json(&mut self) -> String {
        self.latencies.sort();
        let pct = |p: f64| -> f64 {
            let idx = ((self.latencies.len() as f64 - 1.0) * p).round() as usize;
            self.latencies[idx].as_secs_f64() * 1e3
        };
        let rps = self.requests as f64 / self.total.as_secs_f64().max(1e-9);
        format!(
            "{{\"name\":\"{}\",\"requests\":{},\"wall_ms\":{:.3},\"req_per_sec\":{:.2},\"p50_ms\":{:.3},\"p95_ms\":{:.3}}}",
            self.name,
            self.requests,
            self.total.as_secs_f64() * 1e3,
            rps,
            pct(0.50),
            pct(0.95),
        )
    }
}

fn run_stage(
    name: &'static str,
    n: usize,
    mut one: impl FnMut() -> (u16, Duration),
) -> StageRecord {
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        let (status, latency) = one();
        assert_eq!(status, 200, "{name}: bench request failed");
        latencies.push(latency);
    }
    StageRecord {
        name,
        requests: n,
        total: start.elapsed(),
        latencies,
    }
}

fn emit_json() {
    let server = start_server();
    let addr = server.addr();
    let body = analyze_body();

    // Cold: exactly one request on the fresh engine pays all SDPs.
    let mut cold = run_stage("cold", 1, || post_analyze(addr, &body));
    // Warm: the steady-state serving cost (every judgment cached).
    let mut warm = run_stage("warm", 20, || post_analyze(addr, &body));
    // Protocol floor.
    let mut health = run_stage("healthz", 50, || get_healthz(addr));

    let json = format!
        (
        "{{\"bench\":\"server_throughput\",\"workload\":{{\"name\":\"qaoa_maxcut_cycle6\",\"width\":16}},\"http_workers\":2,\"stages\":[{},{},{}]}}\n",
        cold.json(),
        warm.json(),
        health.json()
    );
    server.join();

    let path =
        std::env::var("BENCH_SERVER_JSON_PATH").unwrap_or_else(|_| "BENCH_server.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_server(c: &mut Criterion) {
    let server = start_server();
    let addr = server.addr();
    let body = analyze_body();
    // Prime the cache so the timed loop measures warm serving.
    let (status, _) = post_analyze(addr, &body);
    assert_eq!(status, 200);

    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    group.bench_function("analyze_warm", |b| {
        b.iter(|| {
            let (status, _) = post_analyze(addr, &body);
            assert_eq!(status, 200);
        })
    });
    group.bench_function("healthz", |b| {
        b.iter(|| {
            let (status, _) = get_healthz(addr);
            assert_eq!(status, 200);
        })
    });
    group.finish();
    server.join();
}

fn bench_json(_c: &mut Criterion) {
    emit_json();
}

criterion_group!(benches, bench_server, bench_json);
criterion_main!(benches);
