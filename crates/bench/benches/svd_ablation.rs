//! Ablation A2 (DESIGN.md): the Gram-matrix SVD used in the MPS hot path
//! vs the one-sided Jacobi reference, at MPS-truncation-relevant sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gleipnir_linalg::{c64, svd_gram, svd_jacobi, CMat};

fn random_matrix(n: usize, seed: u64) -> CMat {
    let mut s = seed.max(1);
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    };
    CMat::from_fn(n, n, |_, _| c64(rnd(), rnd()))
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let m = random_matrix(n, 42);
        group.bench_with_input(BenchmarkId::new("gram", n), &m, |b, m| {
            b.iter(|| svd_gram(m).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("jacobi", n), &m, |b, m| {
            b.iter(|| svd_jacobi(m))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
