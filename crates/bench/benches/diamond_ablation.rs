//! Ablation A3 (DESIGN.md): SDP cost and tightness across the three
//! diamond-norm variants (unconstrained, (Q, λ), (ρ̂, δ)) for 1- and
//! 2-qubit gates — the paper's "constant-size SDP" claim in numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use gleipnir_circuit::Gate;
use gleipnir_core::{q_lambda_diamond, rho_delta_diamond, unconstrained_diamond};
use gleipnir_linalg::{c64, CMat};
use gleipnir_noise::Channel;
use gleipnir_sdp::SolverOptions;

fn bench_diamond(c: &mut Criterion) {
    let opts = SolverOptions::default();
    let plus = CMat::from_fn(2, 2, |_, _| c64(0.5, 0.0));
    let noisy_1q = Channel::bit_flip(1e-4).after_unitary(&Gate::H.matrix());
    let ideal_1q = Gate::H.matrix();
    let noisy_2q = Channel::bit_flip_first_of_two(1e-4).after_unitary(&Gate::Cnot.matrix());
    let ideal_2q = Gate::Cnot.matrix();
    let bell = {
        let mut m = CMat::zeros(4, 4);
        for (i, j) in [(0usize, 0usize), (0, 3), (3, 0), (3, 3)] {
            m.set(i, j, c64(0.5, 0.0));
        }
        m
    };

    let mut group = c.benchmark_group("diamond_norm");
    group.sample_size(10);
    group.bench_function("unconstrained_1q", |b| {
        b.iter(|| unconstrained_diamond(&ideal_1q, &noisy_1q, &opts).unwrap())
    });
    group.bench_function("rho_delta_1q", |b| {
        b.iter(|| rho_delta_diamond(&ideal_1q, &noisy_1q, &plus, 1e-3, &opts).unwrap())
    });
    group.bench_function("q_lambda_1q", |b| {
        b.iter(|| q_lambda_diamond(&ideal_1q, &noisy_1q, &plus, 0.9, &opts).unwrap())
    });
    group.bench_function("unconstrained_2q", |b| {
        b.iter(|| unconstrained_diamond(&ideal_2q, &noisy_2q, &opts).unwrap())
    });
    group.bench_function("rho_delta_2q", |b| {
        b.iter(|| rho_delta_diamond(&ideal_2q, &noisy_2q, &bell, 1e-3, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_diamond);
criterion_main!(benches);
