//! Ablation A1 (DESIGN.md): cost of MPS gate application (canonical-form
//! truncation-error accounting, `O(w³)` per gate) vs the paper's full
//! inner-product contraction (`O(n·w³)` per check), plus width scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gleipnir_circuit::Gate;
use gleipnir_mps::{Mps, MpsConfig};

/// Prepares a heavily entangled MPS at the given width.
fn entangled_mps(n: usize, w: usize) -> Mps {
    let mut mps = Mps::zero_state(n, MpsConfig::with_width(w));
    for q in 0..n {
        mps.apply_gate(&Gate::H, &[q]);
    }
    for layer in 0..3 {
        for q in 0..n - 1 {
            mps.apply_gate(&Gate::Rzz(0.8 + 0.1 * layer as f64), &[q, q + 1]);
        }
        for q in 0..n {
            mps.apply_gate(&Gate::Rx(0.9), &[q]);
        }
    }
    mps
}

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("mps_apply_2q");
    group.sample_size(10);
    for w in [8usize, 16, 32] {
        let mps = entangled_mps(16, w);
        group.bench_with_input(BenchmarkId::from_parameter(w), &mps, |b, mps| {
            b.iter_batched(
                || mps.clone(),
                |mut m| m.apply_gate(&Gate::Rzz(0.33), &[7, 8]),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_error_accounting(c: &mut Criterion) {
    // Canonical shortcut: δ from the gate application itself (already
    // counted inside apply); contraction route: a full ⟨ψ|ψ′⟩ inner product
    // as the paper's Fig. 13 would compute per gate.
    let mut group = c.benchmark_group("mps_error_accounting");
    group.sample_size(10);
    let mps = entangled_mps(24, 16);
    group.bench_function("canonical_delta_per_gate", |b| {
        b.iter_batched(
            || mps.clone(),
            |mut m| {
                m.apply_gate(&Gate::Rzz(0.4), &[11, 12]);
                m.delta()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("full_contraction_inner_product", |b| {
        let other = mps.clone();
        b.iter(|| mps.inner(&other))
    });
    group.finish();
}

criterion_group!(benches, bench_gate_application, bench_error_accounting);
criterion_main!(benches);
