//! Tiered bound-engine benchmark on the 288-gate Ising workload
//! (`ising_chain(12, 12)` — the example PR 3 measured at ≥ 99.9% solve
//! wall). Emits a machine-readable **`BENCH_solver.json`** (override the
//! path with `BENCH_SOLVER_JSON_PATH`): per-pass tier counts,
//! interior-point iterations, and wall time, so CI can assert that the
//! tiers are alive — and that tiering ON spends fewer IP iterations than
//! tiering OFF on the same workload (**counts, not wall time**: the
//! 1-core CI container can still verify it).
//!
//! Passes (see `docs/PERFORMANCE.md` for how to read the artifact):
//!
//! * `bitflip_exact` — tiering OFF, Pauli noise: every judgment is a cold
//!   SDP solve (the pre-tiering engine; the iteration baseline).
//! * `bitflip_fast` — tiering ON, same requests: bit-flip noise is a
//!   Pauli mixture, so Tier 0 answers **every** judgment analytically —
//!   zero IP iterations.
//! * `ampdamp_seed` — amplitude damping (no Pauli structure → no Tier 0)
//!   solved cold at δ quantum 1e-6, persisting its certificates to a
//!   store. This is "yesterday's service run".
//! * `ampdamp_rebucket_cold` — a fresh engine warmed from that store,
//!   re-analyzed at δ quantum 1.1e-6 with tiering OFF: every key misses
//!   (the quantum is part of the content address), so everything solves
//!   cold. The Tier-1 control.
//! * `ampdamp_rebucket_warm` — identical setup with warm starts allowed:
//!   every solve finds a neighboring donor dual (same gate/Kraus/ρ′,
//!   δ_eff within a bucket) and starts the interior-point iteration from
//!   it. Fewer iterations, same certified bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use gleipnir_circuit::Gate;
use gleipnir_core::{
    unconstrained_diamond, AnalysisRequest, CertStore, Engine, Method, Report, TierPolicy,
};
use gleipnir_noise::{classify_residual, Channel, NoiseModel};
use gleipnir_sdp::{SolverOptions, SolverProfile};
use gleipnir_workloads::ising_chain;
use std::time::Instant;

const WIDTH: usize = 8;

fn program() -> gleipnir_circuit::Program {
    ising_chain(12, 12, 1.0, 1.0, 0.1)
}

fn request(noise: NoiseModel, quantum: f64, tiers: TierPolicy) -> AnalysisRequest {
    AnalysisRequest::builder(program())
        .noise(noise)
        .method(Method::StateAware { mps_width: WIDTH })
        .delta_quantum(quantum)
        .tiering(tiers)
        .build()
        .expect("valid request")
}

fn warm_only() -> TierPolicy {
    TierPolicy {
        closed_form: false,
        warm_start: true,
    }
}

/// One machine-readable pass record.
struct Pass {
    name: &'static str,
    noise: &'static str,
    policy: &'static str,
    sdp_solves: usize,
    cache_hits: usize,
    closed_form: usize,
    warm: usize,
    cold: usize,
    ip_iterations: usize,
    wall_ms: f64,
    error_bound: f64,
    profile: SolverProfile,
}

fn pass(
    name: &'static str,
    noise: &'static str,
    policy: &'static str,
    engine: &Engine,
    req: &AnalysisRequest,
) -> Pass {
    let t0 = Instant::now();
    let report: Report = engine.analyze(req).expect("pass succeeds");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let tiers = report.tier_counts();
    Pass {
        name,
        noise,
        policy,
        sdp_solves: report.sdp_solves(),
        cache_hits: report.cache_hits(),
        closed_form: tiers.closed_form,
        warm: tiers.warm,
        cold: tiers.cold,
        ip_iterations: report.ip_iterations(),
        wall_ms,
        error_bound: report.error_bound(),
        profile: report.solver_profile(),
    }
}

fn emit_json() {
    let p = program();
    let bitflip = || NoiseModel::uniform_bit_flip(1e-4);
    let ampdamp = || NoiseModel::uniform_amplitude_damping(1e-4);

    // Tier 0 demonstration: tiering OFF vs ON on the Pauli workload.
    let off = pass(
        "bitflip_exact",
        "bitflip:1e-4",
        "exact",
        &Engine::new(),
        &request(bitflip(), 1e-6, TierPolicy::exact()),
    );
    let on = pass(
        "bitflip_fast",
        "bitflip:1e-4",
        "fast",
        &Engine::new(),
        &request(bitflip(), 1e-6, TierPolicy::fast()),
    );

    // Tier 1 demonstration: seed a store at quantum 1e-6, then re-analyze
    // at 1.1e-6 (every content address changes) cold vs warm-started.
    let store_dir = std::env::temp_dir().join(format!(
        "gleipnir-solver-tiers-bench-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);
    let seed_engine = Engine::new();
    let mut store = CertStore::open(&store_dir).expect("store dir");
    let seed = pass(
        "ampdamp_seed",
        "ampdamp:1e-4",
        "exact",
        &seed_engine,
        &request(ampdamp(), 1e-6, TierPolicy::exact()),
    );
    store.persist_new(&seed_engine).expect("persist seed certs");

    let loaded = |label: &str| -> Engine {
        let engine = Engine::new();
        let stats = CertStore::open(&store_dir)
            .expect("store dir")
            .load_into(&engine)
            .expect("load store");
        assert!(stats.loaded > 0, "{label}: store should warm the engine");
        engine
    };
    let rebucket_cold = pass(
        "ampdamp_rebucket_cold",
        "ampdamp:1e-4",
        "exact",
        &loaded("cold"),
        &request(ampdamp(), 1.1e-6, TierPolicy::exact()),
    );
    let rebucket_warm = pass(
        "ampdamp_rebucket_warm",
        "ampdamp:1e-4",
        "warm",
        &loaded("warm"),
        &request(ampdamp(), 1.1e-6, warm_only()),
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    let passes = [&off, &on, &seed, &rebucket_cold, &rebucket_warm];
    let pass_json: Vec<String> = passes
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"noise\":\"{}\",\"policy\":\"{}\",",
                    "\"sdp_solves\":{},\"cache_hits\":{},",
                    "\"tiers\":{{\"closed_form\":{},\"warm\":{},\"cold\":{}}},",
                    "\"ip_iterations\":{},\"wall_ms\":{:.3},\"error_bound\":{:e},",
                    "\"profile\":{{\"setup_ms\":{:.3},\"residual_ms\":{:.3},",
                    "\"schur_ms\":{:.3},\"factor_ms\":{:.3},\"direction_ms\":{:.3},",
                    "\"step_ms\":{:.3},\"cert_ms\":{:.3},\"total_ms\":{:.3},",
                    "\"loop_allocs\":{}}}}}"
                ),
                s.name,
                s.noise,
                s.policy,
                s.sdp_solves,
                s.cache_hits,
                s.closed_form,
                s.warm,
                s.cold,
                s.ip_iterations,
                s.wall_ms,
                s.error_bound,
                s.profile.setup_ms,
                s.profile.residual_ms,
                s.profile.schur_ms,
                s.profile.factor_ms,
                s.profile.direction_ms,
                s.profile.step_ms,
                s.profile.cert_ms,
                s.profile.total_ms,
                s.profile.loop_allocs
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"solver_tiers\",",
            "\"workload\":{{\"name\":\"ising_chain_12x12\",\"qubits\":{},\"gates\":{},\"width\":{}}},",
            "\"ising288_ip_iterations\":{{\"tiering_off\":{},\"tiering_on\":{}}},",
            "\"warm_vs_cold\":{{\"cold_ip_iterations\":{},\"warm_ip_iterations\":{},",
            "\"cold_wall_ms\":{:.3},\"warm_wall_ms\":{:.3}}},",
            "\"passes\":[{}]}}\n"
        ),
        p.n_qubits(),
        p.gate_count(),
        WIDTH,
        off.ip_iterations,
        on.ip_iterations,
        rebucket_cold.ip_iterations,
        rebucket_warm.ip_iterations,
        rebucket_cold.wall_ms,
        rebucket_warm.wall_ms,
        pass_json.join(",")
    );
    // Default to the repo root so `cargo bench` from anywhere in the
    // workspace drops the artifact where CI collects it.
    let path = std::env::var("BENCH_SOLVER_JSON_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

/// Human-readable micro-comparison: what one gate judgment costs per tier
/// (Tier 0 classification + closed form vs a cold SDP solve).
fn bench_per_gate(c: &mut Criterion) {
    let gate = Gate::Cnot.matrix();
    let noisy = Channel::bit_flip_first_of_two(1e-4).after_unitary(&gate);
    let mut group = c.benchmark_group("per_gate_bound");
    group.sample_size(10);
    group.bench_function("tier0_closed_form", |b| {
        b.iter(|| {
            classify_residual(&gate, noisy.kraus())
                .closed_form_diamond_bound()
                .expect("Pauli closed form")
        })
    });
    group.bench_function("tier2_cold_sdp", |b| {
        b.iter(|| unconstrained_diamond(&gate, &noisy, &SolverOptions::default()).unwrap())
    });
    group.finish();
}

fn bench_json(_c: &mut Criterion) {
    // The JSON pass runs each analysis exactly once (each is itself a
    // whole 288-gate workload), both under `cargo bench` and `--test`
    // smoke runs.
    emit_json();
}

criterion_group!(benches, bench_per_gate, bench_json);
criterion_main!(benches);
