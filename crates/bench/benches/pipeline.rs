//! Whole-pipeline microbenchmark: the full Fig. 4 workflow (MPS + SDPs +
//! logic) on a small QAOA instance, with and without the SDP cache — the
//! per-benchmark cost unit behind Table 2's runtime column.

use criterion::{criterion_group, criterion_main, Criterion};
use gleipnir_core::{Analyzer, AnalyzerConfig};
use gleipnir_noise::NoiseModel;
use gleipnir_sim::BasisState;
use gleipnir_workloads::{qaoa_maxcut, Graph};

fn bench_pipeline(c: &mut Criterion) {
    let graph = Graph::cycle(6);
    let program = qaoa_maxcut(&graph, &[0.35], &[0.62]);
    let noise = NoiseModel::uniform_bit_flip(1e-4);
    let input = BasisState::zeros(6);

    let mut group = c.benchmark_group("analyzer");
    group.sample_size(10);
    group.bench_function("qaoa6_w16_cached", |b| {
        b.iter(|| {
            // Fresh analyzer each run: measures a cold-cache analysis.
            Analyzer::new(AnalyzerConfig::with_mps_width(16))
                .analyze(&program, &input, &noise)
                .unwrap()
        })
    });
    group.bench_function("qaoa6_w16_uncached", |b| {
        let mut cfg = AnalyzerConfig::with_mps_width(16);
        cfg.cache = false;
        b.iter(|| {
            Analyzer::new(cfg.clone())
                .analyze(&program, &input, &noise)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
