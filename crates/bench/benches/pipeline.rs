//! Whole-pipeline benchmark: the full Fig. 4 workflow (MPS + SDPs + logic)
//! on a small QAOA instance, on the `Engine` API — the per-benchmark cost
//! unit behind Table 2's runtime column.
//!
//! Besides the human-readable criterion-style timings, the bench emits a
//! machine-readable **`BENCH_pipeline.json`** (override the path with the
//! `BENCH_JSON_PATH` env var): wall time, `sdp_solves`, and `cache_hits`
//! per pipeline stage, so CI accumulates a perf trajectory across commits.
//!
//! Stages:
//!
//! * `cold`  — state-aware analysis on a fresh engine (empty cache);
//! * `warm`  — the same request again on the same engine (cache fully hot);
//! * `adaptive` — an adaptive width sweep on a fresh engine (cross-width
//!   cache reuse);
//! * `batch4` — four requests fanned out across worker threads on a fresh
//!   engine;
//! * `diff_cold_full` / `diff_latency` — the edit-cost pair on Ising-288:
//!   a cold full analysis of a 1-gate edit vs `Engine::analyze_diff` on an
//!   engine that has already analyzed the pre-edit program. The JSON
//!   records `prefix_gates_reused`; expect the diff wall ≪ the full wall.
//!
//! The JSON additionally carries an **`anytime`** pair on the same
//! Ising-288 workload: `first_answer_ms` (the wall a client waits for the
//! first certified bound from `Engine::analyze_anytime`) vs
//! `exact_wall_ms` (a cold exact analysis of the same request) — the
//! latency gap the anytime subsystem buys, with the refined ε checked
//! bit-identical to the exact one before the record is written.

use criterion::{criterion_group, criterion_main, Criterion};
use gleipnir_circuit::Stmt;
use gleipnir_core::{AdaptiveConfig, AnalysisRequest, Engine, Method, RefineStatus, Report};
use gleipnir_noise::NoiseModel;
use gleipnir_telemetry::{Histogram, HistogramSnapshot};
use gleipnir_workloads::{ising_chain, qaoa_maxcut, Graph};
use std::time::Instant;

fn program() -> gleipnir_circuit::Program {
    let graph = Graph::cycle(6);
    qaoa_maxcut(&graph, &[0.35], &[0.62])
}

fn request(method: Method) -> AnalysisRequest {
    AnalysisRequest::builder(program())
        .noise(NoiseModel::uniform_bit_flip(1e-4))
        .method(method)
        .build()
        .expect("valid request")
}

fn state_aware() -> AnalysisRequest {
    request(Method::StateAware { mps_width: 16 })
}

fn bench_pipeline(c: &mut Criterion) {
    // Requests are built once, outside every timed closure: the numbers
    // must measure analysis, not workload/request construction.
    let req = state_aware();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("qaoa6_w16_cold", |b| {
        // Fresh engine each run: measures a cold-cache analysis.
        b.iter(|| Engine::new().analyze(&req).unwrap())
    });
    group.bench_function("qaoa6_w16_warm", |b| {
        // One long-lived engine: after the first run every judgment hits.
        let engine = Engine::new();
        engine.analyze(&req).unwrap();
        b.iter(|| engine.analyze(&req).unwrap())
    });
    group.bench_function("qaoa6_w16_uncached", |b| {
        let req = AnalysisRequest::builder(program())
            .noise(NoiseModel::uniform_bit_flip(1e-4))
            .method(Method::StateAware { mps_width: 16 })
            .cache(false)
            .build()
            .unwrap();
        b.iter(|| Engine::new().analyze(&req).unwrap())
    });
    group.finish();
}

/// One machine-readable stage record. `solve_stage_ms` is the wall time of
/// the parallel SDP solve stage alone (plan/assemble excluded), where the
/// method runs the plan/solve/assemble pipeline.
struct Stage {
    name: &'static str,
    wall_ms: f64,
    solve_stage_ms: Option<f64>,
    solve_workers: Option<usize>,
    sdp_solves: usize,
    cache_hits: usize,
    error_bound: f64,
    /// Only the diff stages set this: gates served from the reused prefix.
    prefix_gates_reused: Option<usize>,
    /// Repeatable stages only: latency quantiles over many repeats,
    /// through the telemetry histogram (the same log-scale buckets the
    /// server exports, so bench and production quantiles are comparable).
    latency: Option<HistogramSnapshot>,
}

fn stage(name: &'static str, run: impl FnOnce() -> Report) -> Stage {
    let t0 = Instant::now();
    let report = run();
    Stage {
        name,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        solve_stage_ms: report.stage_timings().map(|t| t.solve.as_secs_f64() * 1e3),
        solve_workers: report.solve_workers(),
        sdp_solves: report.sdp_solves(),
        cache_hits: report.cache_hits(),
        error_bound: report.error_bound(),
        prefix_gates_reused: None,
        latency: None,
    }
}

/// Repeats a closure `n` times, returning the latency distribution.
fn quantiles_over(n: usize, mut run: impl FnMut()) -> HistogramSnapshot {
    let hist = Histogram::latency();
    for _ in 0..n {
        let t0 = Instant::now();
        run();
        hist.observe_duration(t0.elapsed());
    }
    hist.snapshot()
}

/// Ising-288 (12 sites × 12 Trotter layers) and a 1-gate mid-circuit edit
/// of it: the first adjacent distinct statement pair past the midpoint,
/// swapped.
fn ising_edit_pair() -> (gleipnir_circuit::Program, gleipnir_circuit::Program) {
    let old = ising_chain(12, 12, 1.0, 1.0, 0.1);
    let mut stmts = match old.body() {
        Stmt::Seq(ss) => ss.clone(),
        s => vec![s.clone()],
    };
    let i = (stmts.len() / 2..stmts.len() - 1)
        .find(|&i| stmts[i] != stmts[i + 1])
        .expect("Ising-288 has an adjacent distinct pair");
    stmts.swap(i, i + 1);
    let new = gleipnir_circuit::Program::new(old.n_qubits(), Stmt::Seq(stmts));
    (old, new)
}

fn emit_json() {
    // Everything timed below measures analysis only: programs, requests,
    // and engines are constructed up front.
    let p = program();
    let req = state_aware();
    let adaptive_req = request(Method::Adaptive(AdaptiveConfig {
        start_width: 2,
        max_width: 16,
        min_relative_improvement: 0.01,
    }));
    let warm_engine = Engine::new();
    warm_engine.analyze(&req).unwrap();
    let batch: Vec<AnalysisRequest> = (0..4).map(|_| req.clone()).collect();
    let batch_engine = Engine::new();

    let mut warm_stage = stage("warm", || warm_engine.analyze(&req).unwrap());
    // The warm stage is cheap and repeatable, so it also carries
    // p50/p95/p99 over 20 repeats (a tail, not just one sample).
    warm_stage.latency = Some(quantiles_over(20, || {
        warm_engine.analyze(&req).unwrap();
    }));
    let mut stages = vec![
        stage("cold", || Engine::new().analyze(&req).unwrap()),
        warm_stage,
        stage("adaptive", || Engine::new().analyze(&adaptive_req).unwrap()),
    ];
    // batch4 aggregates over the whole batch rather than one report.
    let t0 = Instant::now();
    let outcome = batch_engine.analyze_batch_detailed(&batch);
    let reports: Vec<Report> = outcome
        .results
        .into_iter()
        .map(|r| r.expect("batch request succeeds"))
        .collect();
    stages.push(Stage {
        name: "batch4",
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        solve_stage_ms: reports
            .iter()
            .filter_map(|r| r.stage_timings().map(|t| t.solve.as_secs_f64() * 1e3))
            .reduce(f64::max),
        solve_workers: reports.iter().filter_map(Report::solve_workers).max(),
        sdp_solves: reports.iter().map(Report::sdp_solves).sum(),
        cache_hits: reports.iter().map(Report::cache_hits).sum(),
        error_bound: reports[0].error_bound(),
        prefix_gates_reused: None,
        latency: None,
    });

    // Edit-cost pair: Ising-288 with a 1-gate mid-circuit edit. The cold
    // stage is the latency a user pays without the diff path; the diff
    // stage is `analyze_diff` on an engine that already analyzed the
    // pre-edit program, so everything before the edit is prefix-served.
    let (ising_old, ising_new) = ising_edit_pair();
    let noise = NoiseModel::uniform_bit_flip(1e-3);
    let old_req = AnalysisRequest::builder(ising_old)
        .noise(noise.clone())
        .method(Method::StateAware { mps_width: 8 })
        .build()
        .unwrap();
    let new_req = AnalysisRequest::builder(ising_new)
        .noise(noise)
        .method(Method::StateAware { mps_width: 8 })
        .build()
        .unwrap();
    stages.push(stage("diff_cold_full", || {
        Engine::new().analyze(&new_req).unwrap()
    }));
    let diff_engine = Engine::new();
    diff_engine.analyze(&old_req).unwrap();
    let t0 = Instant::now();
    let diff = diff_engine.analyze_diff(&old_req, &new_req).unwrap();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = diff.new_report();
    stages.push(Stage {
        name: "diff_latency",
        wall_ms,
        solve_stage_ms: Some(report.stage_timings().solve.as_secs_f64() * 1e3),
        solve_workers: Some(report.solve_workers()),
        sdp_solves: report.sdp_solves(),
        cache_hits: report.cache_hits(),
        error_bound: report.error_bound(),
        prefix_gates_reused: Some(diff.prefix_gates_reused()),
        latency: None,
    });

    // Anytime pair on the same Ising-288 request: the wall a client
    // waits for the first certified bound vs the wall of the cold exact
    // analysis it refines into. The refined ε must be bit-identical to
    // the exact one — a perf record of an unsound shortcut is worthless.
    let anytime_engine = Engine::new();
    let t0 = Instant::now();
    let answer = anytime_engine
        .analyze_anytime(&old_req)
        .expect("anytime analysis starts");
    let first_answer_ms = t0.elapsed().as_secs_f64() * 1e3;
    let refined = loop {
        match anytime_engine.wait_refinement(answer.token, std::time::Duration::from_secs(5)) {
            Some(RefineStatus::Done(report)) => break report,
            Some(RefineStatus::Pending) => continue,
            Some(RefineStatus::Failed(msg)) => panic!("refinement failed: {msg}"),
            None => panic!("refinement token vanished"),
        }
    };
    let t0 = Instant::now();
    let exact = Engine::new().analyze(&old_req).unwrap();
    let exact_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        refined.error_bound().to_bits(),
        exact.error_bound().to_bits(),
        "refined ε must be bit-identical to the cold exact ε"
    );
    let anytime_json = format!(
        "{{\"workload\":\"ising288_w8\",\"first_answer_ms\":{:.3},\"exact_wall_ms\":{:.3},\"first_bound\":{:e},\"error_bound\":{:e}}}",
        first_answer_ms,
        exact_wall_ms,
        answer.first_bound,
        refined.error_bound(),
    );

    let stage_json: Vec<String> = stages
        .iter()
        .map(|s| {
            let mut fields = vec![
                format!("\"name\":\"{}\"", s.name),
                format!("\"wall_ms\":{:.3}", s.wall_ms),
            ];
            if let Some(ms) = s.solve_stage_ms {
                fields.push(format!("\"solve_stage_ms\":{ms:.3}"));
            }
            if let Some(w) = s.solve_workers {
                fields.push(format!("\"solve_workers\":{w}"));
            }
            fields.push(format!("\"sdp_solves\":{}", s.sdp_solves));
            fields.push(format!("\"cache_hits\":{}", s.cache_hits));
            fields.push(format!("\"error_bound\":{:e}", s.error_bound));
            if let Some(n) = s.prefix_gates_reused {
                fields.push(format!("\"prefix_gates_reused\":{n}"));
            }
            if let Some(snap) = &s.latency {
                fields.push(format!(
                    "\"latency_ms\":{{\"samples\":{},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}}",
                    snap.count,
                    snap.quantile_ms(0.50),
                    snap.quantile_ms(0.95),
                    snap.quantile_ms(0.99),
                ));
            }
            format!("{{{}}}", fields.join(","))
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"pipeline\",\"workload\":{{\"name\":\"qaoa_maxcut_cycle6\",\"qubits\":{},\"gates\":{}}},\"pool_threads\":{},\"batch_worker_threads\":{},\"anytime\":{},\"stages\":[{}]}}\n",
        p.n_qubits(),
        p.gate_count(),
        batch_engine.threads(),
        outcome.worker_threads,
        anytime_json,
        stage_json.join(",")
    );
    // Default to the repo root so `cargo bench` from anywhere in the
    // workspace drops the artifact where CI collects it.
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_json(_c: &mut Criterion) {
    // The JSON pass runs its stages exactly once (each stage is itself a
    // whole analysis), both under `cargo bench` and `--test` smoke runs.
    emit_json();
}

criterion_group!(benches, bench_pipeline, bench_json);
criterion_main!(benches);
