//! Rank-3 MPS site tensors.

use gleipnir_linalg::{CMat, C64};

/// A rank-3 MPS site tensor `A[l, s, r]` with physical dimension 2.
///
/// Storage is row-major over the fused index `(l·2 + s)·right + r`, i.e. a
/// matrix whose rows enumerate `(left, spin)` pairs — the "left-fused" view
/// used for QR canonicalization — so reshapes are free.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor3 {
    left: usize,
    right: usize,
    data: Vec<C64>,
}

impl Tensor3 {
    /// A zero tensor of the given bond dimensions.
    pub fn zeros(left: usize, right: usize) -> Self {
        Tensor3 {
            left,
            right,
            data: vec![C64::ZERO; left * 2 * right],
        }
    }

    /// The product-state tensor for a definite bit value (bond dims 1).
    pub fn basis(bit: bool) -> Self {
        let mut t = Self::zeros(1, 1);
        t.set(0, usize::from(bit), 0, C64::ONE);
        t
    }

    /// Left bond dimension.
    #[inline(always)]
    pub fn left(&self) -> usize {
        self.left
    }

    /// Right bond dimension.
    #[inline(always)]
    pub fn right(&self) -> usize {
        self.right
    }

    /// Element `A[l, s, r]`.
    #[inline(always)]
    pub fn at(&self, l: usize, s: usize, r: usize) -> C64 {
        self.data[(l * 2 + s) * self.right + r]
    }

    /// Sets element `A[l, s, r]`.
    #[inline(always)]
    pub fn set(&mut self, l: usize, s: usize, r: usize, v: C64) {
        self.data[(l * 2 + s) * self.right + r] = v;
    }

    /// The left-fused matrix view `(l·2 + s) × r` (zero-copy clone of the
    /// buffer).
    pub fn left_fused(&self) -> CMat {
        CMat::from_flat(self.left * 2, self.right, self.data.clone())
    }

    /// The right-fused matrix view `l × (s·right + r)`.
    ///
    /// Note the physical index sits **major** within the column index, so
    /// this is a genuine reshape of `A[l, s, r]` to `l × (2·right)`.
    pub fn right_fused(&self) -> CMat {
        // Data layout (l·2+s)·right + r ≠ l·(2·right) + s·right + r… they
        // are actually identical: (l·2+s)·right + r = l·2·right + s·right + r. ✓
        CMat::from_flat(self.left, 2 * self.right, self.data.clone())
    }

    /// Rebuilds a tensor from a left-fused matrix.
    ///
    /// # Panics
    ///
    /// Panics if the row count is odd.
    pub fn from_left_fused(m: &CMat) -> Self {
        assert!(m.rows() % 2 == 0, "left-fused row count must be even");
        Tensor3 {
            left: m.rows() / 2,
            right: m.cols(),
            data: m.as_slice().to_vec(),
        }
    }

    /// Rebuilds a tensor from a right-fused matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count is odd.
    pub fn from_right_fused(m: &CMat) -> Self {
        assert!(m.cols() % 2 == 0, "right-fused column count must be even");
        Tensor3 {
            left: m.rows(),
            right: m.cols() / 2,
            data: m.as_slice().to_vec(),
        }
    }

    /// Applies a 1-qubit gate to the physical index:
    /// `A'[l, s, r] = Σ_{s'} G[s][s'] A[l, s', r]`.
    pub fn apply_1q(&mut self, g: &CMat) {
        debug_assert_eq!(g.rows(), 2);
        let r = self.right;
        for l in 0..self.left {
            for rr in 0..r {
                let a0 = self.at(l, 0, rr);
                let a1 = self.at(l, 1, rr);
                self.set(l, 0, rr, g.at(0, 0) * a0 + g.at(0, 1) * a1);
                self.set(l, 1, rr, g.at(1, 0) * a0 + g.at(1, 1) * a1);
            }
        }
    }

    /// Contracts a matrix into the left bond: `A'[l', s, r] = Σ_l M[l', l]·A[l, s, r]`.
    pub fn absorb_left(&self, m: &CMat) -> Tensor3 {
        debug_assert_eq!(m.cols(), self.left);
        let mut out = Tensor3::zeros(m.rows(), self.right);
        for lp in 0..m.rows() {
            for l in 0..self.left {
                let coeff = m.at(lp, l);
                if coeff.re == 0.0 && coeff.im == 0.0 {
                    continue;
                }
                for s in 0..2 {
                    for r in 0..self.right {
                        let v = out.at(lp, s, r).add_prod(coeff, self.at(l, s, r));
                        out.set(lp, s, r, v);
                    }
                }
            }
        }
        out
    }

    /// Contracts a matrix into the right bond: `A'[l, s, r'] = Σ_r A[l, s, r]·M[r, r']`.
    pub fn absorb_right(&self, m: &CMat) -> Tensor3 {
        debug_assert_eq!(m.rows(), self.right);
        let mut out = Tensor3::zeros(self.left, m.cols());
        for l in 0..self.left {
            for s in 0..2 {
                for r in 0..self.right {
                    let a = self.at(l, s, r);
                    if a.re == 0.0 && a.im == 0.0 {
                        continue;
                    }
                    for rp in 0..m.cols() {
                        let v = out.at(l, s, rp).add_prod(a, m.at(r, rp));
                        out.set(l, s, rp, v);
                    }
                }
            }
        }
        out
    }

    /// Squared Frobenius norm of the tensor.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Scales every entry by a real factor.
    pub fn scale(&mut self, s: f64) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }

    /// Zeroes the physical slice `s = bit`, projecting onto the complement.
    pub fn project_out(&mut self, bit: usize) {
        for l in 0..self.left {
            for r in 0..self.right {
                self.set(l, bit, r, C64::ZERO);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::Gate;
    use gleipnir_linalg::c64;

    #[test]
    fn basis_tensor_shape() {
        let t = Tensor3::basis(true);
        assert_eq!((t.left(), t.right()), (1, 1));
        assert!(t.at(0, 1, 0).approx_eq(C64::ONE, 0.0));
        assert!(t.at(0, 0, 0).approx_eq(C64::ZERO, 0.0));
    }

    #[test]
    fn fused_views_round_trip() {
        let mut t = Tensor3::zeros(2, 3);
        let mut v = 0.0;
        for l in 0..2 {
            for s in 0..2 {
                for r in 0..3 {
                    v += 1.0;
                    t.set(l, s, r, c64(v, -v));
                }
            }
        }
        assert_eq!(Tensor3::from_left_fused(&t.left_fused()), t);
        assert_eq!(Tensor3::from_right_fused(&t.right_fused()), t);
    }

    #[test]
    fn apply_1q_hadamard() {
        let mut t = Tensor3::basis(false);
        t.apply_1q(&Gate::H.matrix());
        let s = 1.0 / 2f64.sqrt();
        assert!(t.at(0, 0, 0).approx_eq(c64(s, 0.0), 1e-12));
        assert!(t.at(0, 1, 0).approx_eq(c64(s, 0.0), 1e-12));
    }

    #[test]
    fn absorb_left_right_identity() {
        let mut t = Tensor3::zeros(2, 2);
        t.set(0, 1, 1, c64(0.5, 0.25));
        t.set(1, 0, 0, c64(-1.0, 2.0));
        let id2 = CMat::identity(2);
        assert_eq!(t.absorb_left(&id2), t);
        assert_eq!(t.absorb_right(&id2), t);
    }

    #[test]
    fn project_out_zeroes_slice() {
        let mut t = Tensor3::basis(false);
        t.apply_1q(&Gate::H.matrix());
        t.project_out(1);
        assert!(t.at(0, 1, 0).approx_eq(C64::ZERO, 0.0));
        assert!((t.norm_sqr() - 0.5).abs() < 1e-12);
    }
}
