//! # gleipnir-mps
//!
//! Gleipnir's Matrix Product State tensor-network engine (paper §5).
//!
//! The MPS approximator is what makes Gleipnir *adaptive*: with bond
//! dimension `w` it represents an `n`-qubit state in `O(n·w²)` memory,
//! applies gates in polynomial time, and — crucially — reports a **sound
//! over-approximation δ of the truncation error** it incurs, which the
//! error logic feeds into the `(ρ̂, δ)`-diamond norm.
//!
//! * [`Mps`] — the state: gate application with SVD truncation, exact
//!   Schmidt-coefficient error accounting in mixed-canonical form, internal
//!   swap routing for non-adjacent gates, reduced density matrices,
//!   measurement collapse;
//! * [`tn_approximate`] — `TN(ρ₀, P) = (ρ̂, δ)` over whole programs with
//!   branch forking (Theorem 5.1);
//! * [`MpsConfig`] — the width knob `w` (precision ↔ cost trade-off of
//!   Fig. 14).
//!
//! ## Example
//!
//! ```
//! use gleipnir_circuit::ProgramBuilder;
//! use gleipnir_mps::{tn_approximate, MpsConfig};
//!
//! let mut b = ProgramBuilder::new(3);
//! b.h(0).cnot(0, 1).cnot(1, 2);
//! let (mps, delta) = tn_approximate(&b.build(), &[false; 3], MpsConfig::with_width(8))
//!     .into_single();
//! assert!(delta < 1e-12); // w = 8 is exact for 3 qubits
//! assert_eq!(mps.n_qubits(), 3);
//! ```

#![warn(missing_docs)]

mod approx;
mod mps;
mod tensor;

pub use approx::{tn_approximate, TnBranch, TnResult};
pub use mps::{Mps, MpsConfig, MpsError};
pub use tensor::Tensor3;
