//! Matrix Product States with rigorous truncation-error accounting (§5).
//!
//! ## Error convention
//!
//! The per-step truncation error follows the paper's §5.2 formula
//! `δ = ‖|φ⟩⟨φ| − |ψ⟩⟨ψ|‖₁ = 2·√(1 − |⟨φ|ψ⟩|²)` — the **full** trace norm
//! (range `[0, 2]`), not the halved trace distance. Accumulated over gates
//! by the triangle inequality (Eq. 1), [`Mps::delta`] soundly bounds
//! `‖ρ̂ − ρ_ideal‖₁` for the state the MPS represents, which is exactly the
//! `δ` consumed by the `(ρ̂, δ)`-diamond norm constraint of Theorem 6.1.
//!
//! ## Canonical form
//!
//! The implementation keeps the MPS in *mixed-canonical form*: every site
//! left of the orthogonality center is left-canonical and every site right
//! of it right-canonical (maintained by QR/LQ sweeps). With the center
//! inside the two-site window being truncated, the SVD's singular values
//! are exact Schmidt coefficients, so `|⟨φ|ψ⟩|² = Σ_kept σ² / Σ_all σ²` is
//! computed *exactly* — the same quantity the paper obtains by contracting
//! the full MPS inner product (Fig. 13), at `O(w³)` instead of `O(n·w³)`
//! per gate. The contraction route is still available as [`Mps::inner`] and
//! is used by the test-suite to validate the shortcut.
//!
//! ## Non-adjacent gates
//!
//! Two-qubit gates on non-adjacent qubits are routed by internal SWAP
//! applications (§5.2), each truncated and accounted like any other 2-site
//! update. The MPS tracks the resulting logical↔site permutation, so callers
//! keep addressing *logical* qubits throughout.

use crate::tensor::Tensor3;
use gleipnir_circuit::Gate;
use gleipnir_linalg::{c64, lq_thin, qr_thin, svd_gram, CMat, CVec, C64};
use std::fmt;

/// Configuration for MPS construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MpsConfig {
    /// Maximum bond dimension `w` (the paper's MPS "size").
    pub max_bond: usize,
}

impl MpsConfig {
    /// Config with the given maximum bond dimension.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn with_width(w: usize) -> Self {
        assert!(w > 0, "bond dimension must be positive");
        MpsConfig { max_bond: w }
    }
}

impl Default for MpsConfig {
    /// The paper's best-performing width, `w = 128` (§7.1).
    fn default() -> Self {
        MpsConfig { max_bond: 128 }
    }
}

/// Errors from MPS operations.
#[derive(Clone, Debug, PartialEq)]
pub enum MpsError {
    /// A measurement collapse targeted an outcome with (near-)zero
    /// probability.
    ZeroProbabilityOutcome {
        /// The logical qubit measured.
        qubit: usize,
        /// The requested outcome.
        outcome: bool,
    },
}

impl fmt::Display for MpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpsError::ZeroProbabilityOutcome { qubit, outcome } => write!(
                f,
                "collapse of qubit {qubit} onto outcome {} has zero probability",
                u8::from(*outcome)
            ),
        }
    }
}

impl std::error::Error for MpsError {}

/// A Matrix Product State over `n` qubits with bounded bond dimension.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::Gate;
/// use gleipnir_mps::{Mps, MpsConfig};
///
/// // The paper's worked example (§5.3): GHZ with w = 2 is exact…
/// let mut mps = Mps::zero_state(2, MpsConfig::with_width(2));
/// mps.apply_gate(&Gate::H, &[0]);
/// mps.apply_gate(&Gate::Cnot, &[0, 1]);
/// assert!(mps.delta() < 1e-12);
///
/// // …while w = 1 truncates with δ = √2.
/// let mut narrow = Mps::zero_state(2, MpsConfig::with_width(1));
/// narrow.apply_gate(&Gate::H, &[0]);
/// narrow.apply_gate(&Gate::Cnot, &[0, 1]);
/// assert!((narrow.delta() - 2f64.sqrt()).abs() < 1e-10);
/// ```
#[derive(Clone, Debug)]
pub struct Mps {
    tensors: Vec<Tensor3>,
    center: usize,
    max_bond: usize,
    site_to_logical: Vec<usize>,
    logical_to_site: Vec<usize>,
    delta: f64,
}

impl Mps {
    /// The `|0…0⟩` product state.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zero_state(n: usize, config: MpsConfig) -> Self {
        Self::basis_state(&vec![false; n], config)
    }

    /// A computational basis state (MSB-first bits, one per qubit).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn basis_state(bits: &[bool], config: MpsConfig) -> Self {
        assert!(!bits.is_empty(), "MPS needs at least one qubit");
        let n = bits.len();
        Mps {
            tensors: bits.iter().map(|&b| Tensor3::basis(b)).collect(),
            center: 0,
            max_bond: config.max_bond,
            site_to_logical: (0..n).collect(),
            logical_to_site: (0..n).collect(),
            delta: 0.0,
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.tensors.len()
    }

    /// Maximum bond dimension `w`.
    pub fn max_bond(&self) -> usize {
        self.max_bond
    }

    /// Returns the same state with the bond-dimension budget replaced.
    ///
    /// Raising the budget never changes the represented state; lowering it
    /// only affects *future* truncations (existing bonds are kept), so the
    /// accumulated `δ` remains a sound bound either way.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn with_max_bond(mut self, w: usize) -> Self {
        assert!(w > 0, "bond dimension must be positive");
        self.max_bond = w;
        self
    }

    /// Accumulated truncation error `δ` (full trace-norm convention; see
    /// the module docs).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Current bond dimensions (length `n − 1`).
    pub fn bond_dims(&self) -> Vec<usize> {
        self.tensors[..self.n_qubits() - 1]
            .iter()
            .map(Tensor3::right)
            .collect()
    }

    /// The current logical → site permutation introduced by internal
    /// routing swaps (identity until a non-adjacent gate is applied).
    pub fn logical_to_site(&self) -> &[usize] {
        &self.logical_to_site
    }

    /// Applies a gate to logical qubits, returning the truncation error δ
    /// this application added (0 for 1-qubit gates; includes any internal
    /// routing swaps for non-adjacent 2-qubit gates).
    ///
    /// # Panics
    ///
    /// Panics on bad operands.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> f64 {
        self.apply_matrix(&gate.matrix(), qubits)
    }

    /// Applies an arbitrary 1- or 2-qubit unitary to logical qubits.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape and operand count disagree, or operands
    /// are out of range / repeated.
    pub fn apply_matrix(&mut self, m: &CMat, qubits: &[usize]) -> f64 {
        match qubits.len() {
            1 => {
                assert_eq!(m.rows(), 2, "matrix shape mismatch");
                let q = qubits[0];
                assert!(q < self.n_qubits(), "qubit {q} out of range");
                let site = self.logical_to_site[q];
                self.tensors[site].apply_1q(m);
                0.0
            }
            2 => {
                assert_eq!(m.rows(), 4, "matrix shape mismatch");
                let (a, b) = (qubits[0], qubits[1]);
                assert!(
                    a < self.n_qubits() && b < self.n_qubits(),
                    "qubit out of range"
                );
                assert_ne!(a, b, "repeated operand");
                let before = self.delta;
                let (site, a_is_left) = self.prepare_pair(a, b);
                let g = if a_is_left {
                    m.clone()
                } else {
                    conjugate_by_swap(m)
                };
                self.apply_pair_matrix(site, &g);
                self.delta - before
            }
            k => panic!("gates act on 1 or 2 qubits, got {k}"),
        }
    }

    /// Moves the orthogonality center to `site` via QR/LQ sweeps.
    fn move_center_to(&mut self, site: usize) {
        while self.center < site {
            let k = self.center;
            let (q, r) = qr_thin(&self.tensors[k].left_fused());
            self.tensors[k] = Tensor3::from_left_fused(&q);
            self.tensors[k + 1] = self.tensors[k + 1].absorb_left(&r);
            self.center += 1;
        }
        while self.center > site {
            let k = self.center;
            let (l, q) = lq_thin(&self.tensors[k].right_fused());
            self.tensors[k] = Tensor3::from_right_fused(&q);
            self.tensors[k - 1] = self.tensors[k - 1].absorb_right(&l);
            self.center -= 1;
        }
    }

    /// Brings logical qubits `a` and `b` to adjacent sites via internal
    /// swaps (updating the permutation); returns `(left_site, a_is_left)`.
    fn prepare_pair(&mut self, a: usize, b: usize) -> (usize, bool) {
        let mut sa = self.logical_to_site[a];
        let sb = self.logical_to_site[b];
        // Move a's site toward b's one internal swap at a time.
        while sa + 1 < sb {
            self.internal_swap(sa);
            sa += 1;
        }
        while sa > sb + 1 {
            self.internal_swap(sa - 1);
            sa -= 1;
        }
        let sb = self.logical_to_site[b];
        debug_assert!(sa.abs_diff(sb) == 1);
        (sa.min(sb), sa < sb)
    }

    /// Swaps the states of sites `k` and `k+1` (a truncated 2-site update)
    /// and updates the logical↔site permutation.
    fn internal_swap(&mut self, k: usize) {
        self.apply_pair_matrix(k, &Gate::Swap.matrix());
        let (la, lb) = (self.site_to_logical[k], self.site_to_logical[k + 1]);
        self.site_to_logical[k] = lb;
        self.site_to_logical[k + 1] = la;
        self.logical_to_site[lb] = k;
        self.logical_to_site[la] = k + 1;
    }

    /// Builds the two-site tensor Θ over sites `(k, k+1)` with the center
    /// inside the window, returned as the `(L·2) × (2·R)` matrix
    /// `M[(l,s₁), (s₂,r)]`.
    fn theta(&mut self, k: usize) -> CMat {
        if self.center < k {
            self.move_center_to(k);
        } else if self.center > k + 1 {
            self.move_center_to(k + 1);
        }
        let a = &self.tensors[k];
        let b = &self.tensors[k + 1];
        let (l_dim, m_dim, r_dim) = (a.left(), a.right(), b.right());
        let mut theta = CMat::zeros(l_dim * 2, 2 * r_dim);
        for l in 0..l_dim {
            for s1 in 0..2 {
                for m in 0..m_dim {
                    let alm = a.at(l, s1, m);
                    if alm.re == 0.0 && alm.im == 0.0 {
                        continue;
                    }
                    for s2 in 0..2 {
                        for r in 0..r_dim {
                            let v = theta
                                .at(l * 2 + s1, s2 * r_dim + r)
                                .add_prod(alm, b.at(m, s2, r));
                            theta.set(l * 2 + s1, s2 * r_dim + r, v);
                        }
                    }
                }
            }
        }
        theta
    }

    /// Applies a 4×4 matrix to the fused two-site window at `(k, k+1)` and
    /// re-splits with truncation; updates `delta` and leaves the center at
    /// `k + 1`.
    fn apply_pair_matrix(&mut self, k: usize, g: &CMat) {
        let r_dim = self.tensors[k + 1].right();
        let theta = self.theta(k);
        let l_dim = theta.rows() / 2;
        // Θ'[(l,t1),(t2,r)] = Σ_{s1,s2} G[(t1 t2),(s1 s2)]·Θ[(l,s1),(s2,r)].
        let mut rotated = CMat::zeros(l_dim * 2, 2 * r_dim);
        for l in 0..l_dim {
            for r in 0..r_dim {
                let mut local = [C64::ZERO; 4];
                for (s1, slot2) in [(0usize, 0usize), (1, 1)] {
                    for s2 in 0..2 {
                        local[slot2 * 2 + s2] = theta.at(l * 2 + s1, s2 * r_dim + r);
                    }
                }
                for t1 in 0..2 {
                    for t2 in 0..2 {
                        let mut acc = C64::ZERO;
                        for (s, &v) in local.iter().enumerate() {
                            acc = acc.add_prod(g.at(t1 * 2 + t2, s), v);
                        }
                        rotated.set(l * 2 + t1, t2 * r_dim + r, acc);
                    }
                }
            }
        }
        // SVD + truncate to w. With the center inside the window the σ are
        // exact Schmidt coefficients of the bipartition.
        let svd = svd_gram(&rotated).expect("SVD of two-site tensor");
        let total: f64 = svd.sigma.iter().map(|s| s * s).sum::<f64>() + svd.discarded_sqr;
        let keep = svd.rank().min(self.max_bond).max(1).min(svd.rank().max(1));
        // Dropped Schmidt mass: explicitly truncated σ plus the sub-rank
        // residue the SVD already set aside. Computing the dropped side
        // directly (instead of total − kept) avoids catastrophic
        // cancellation when nothing is truncated.
        let dropped: f64 = svd.sigma[keep.min(svd.rank())..]
            .iter()
            .map(|s| s * s)
            .sum::<f64>()
            + svd.discarded_sqr;
        if total > 0.0 {
            let frac = (dropped / total).clamp(0.0, 1.0);
            // Below the double-precision noise floor the "dropped" mass is
            // rounding error, not truncation; counting it would report a
            // spurious δ ≈ 1e-8 per exact gate application.
            if frac > NUMERICAL_NOISE_FLOOR {
                self.delta += 2.0 * frac.sqrt();
            }
        }
        let kept: f64 = svd.sigma[..keep.min(svd.rank())]
            .iter()
            .map(|s| s * s)
            .sum();
        // Left tensor: U columns (already orthonormal → left-canonical).
        let u = svd.u.submatrix(0, l_dim * 2, 0, keep);
        self.tensors[k] = Tensor3::from_left_fused(&u);
        // Right tensor: renormalized Σ'·V†.
        let scale = if kept > 0.0 { 1.0 / kept.sqrt() } else { 1.0 };
        let mut sv = CMat::zeros(keep, 2 * r_dim);
        for m in 0..keep {
            let s = svd.sigma[m] * scale;
            for c in 0..2 * r_dim {
                sv.set(m, c, svd.v.at(c, m).conj().scale(s));
            }
        }
        self.tensors[k + 1] = Tensor3::from_right_fused(&sv);
        self.center = k + 1;
    }

    /// The reduced density matrix of one logical qubit (2×2, unit trace).
    pub fn local_density_1(&mut self, q: usize) -> CMat {
        let site = self.logical_to_site[q];
        self.move_center_to(site);
        let a = &self.tensors[site];
        let mut rho = CMat::zeros(2, 2);
        for s in 0..2 {
            for t in 0..2 {
                let mut acc = C64::ZERO;
                for l in 0..a.left() {
                    for r in 0..a.right() {
                        acc = acc.add_prod(a.at(l, s, r), a.at(l, t, r).conj());
                    }
                }
                rho.set(s, t, acc);
            }
        }
        normalize_density(rho)
    }

    /// The reduced density matrix of two logical qubits in the operand
    /// order `(a, b)` — `a` is the MSB of the 4-dim result.
    ///
    /// Non-adjacent qubits are first routed together with internal swaps,
    /// which may add truncation error (reflected in [`Mps::delta`]); with
    /// `w` at least the current maximal bond dimension this is exact.
    pub fn local_density_2(&mut self, a: usize, b: usize) -> CMat {
        assert_ne!(a, b, "repeated qubit");
        let (site, a_is_left) = self.prepare_pair(a, b);
        let r_dim = self.tensors[site + 1].right();
        let theta = self.theta(site);
        let l_dim = theta.rows() / 2;
        let mut rho = CMat::zeros(4, 4);
        for s1 in 0..2 {
            for s2 in 0..2 {
                for t1 in 0..2 {
                    for t2 in 0..2 {
                        let mut acc = C64::ZERO;
                        for l in 0..l_dim {
                            for r in 0..r_dim {
                                acc = acc.add_prod(
                                    theta.at(l * 2 + s1, s2 * r_dim + r),
                                    theta.at(l * 2 + t1, t2 * r_dim + r).conj(),
                                );
                            }
                        }
                        rho.set(s1 * 2 + s2, t1 * 2 + t2, acc);
                    }
                }
            }
        }
        let rho = normalize_density(rho);
        if a_is_left {
            rho
        } else {
            // Site order is (b, a); flip to operand order (a, b).
            let sw = Gate::Swap.matrix();
            sw.mul_mat(&rho).mul_mat(&sw)
        }
    }

    /// The per-gate judgment snapshot the analysis planner consumes: the
    /// reduced density matrix ρ′ of the operand qubits (in operand order)
    /// together with the accumulated truncation error δ, read *after* any
    /// routing the extraction required.
    ///
    /// Non-adjacent operands are routed together with internal swaps whose
    /// truncation lands in δ before it is returned — exactly the ordering
    /// the `(ρ̂, δ)`-diamond judgment needs (the routing error belongs to
    /// the gate about to be applied). The caller can therefore materialize
    /// the snapshot into a solve obligation and come back to
    /// [`Mps::apply_gate`] later without re-deriving either quantity.
    ///
    /// # Panics
    ///
    /// Panics unless `qubits` has length 1 or 2 (with distinct, in-range
    /// entries).
    pub fn gate_snapshot(&mut self, qubits: &[usize]) -> (CMat, f64) {
        let rho = match *qubits {
            [q] => self.local_density_1(q),
            [a, b] => self.local_density_2(a, b),
            ref other => panic!("gates act on 1 or 2 qubits, got {}", other.len()),
        };
        (rho, self.delta())
    }

    /// Measures logical qubit `q`, collapsing onto `outcome`, and returns
    /// the outcome probability (computed before collapse).
    ///
    /// # Errors
    ///
    /// [`MpsError::ZeroProbabilityOutcome`] when the outcome probability is
    /// below 1e-12 (collapse would be numerically meaningless).
    pub fn collapse(&mut self, q: usize, outcome: bool) -> Result<f64, MpsError> {
        let site = self.logical_to_site[q];
        self.move_center_to(site);
        let t = &self.tensors[site];
        let total = t.norm_sqr();
        let mut hit = 0.0;
        let bit = usize::from(outcome);
        for l in 0..t.left() {
            for r in 0..t.right() {
                hit += t.at(l, bit, r).norm_sqr();
            }
        }
        let p = hit / total;
        if p < 1e-12 {
            return Err(MpsError::ZeroProbabilityOutcome { qubit: q, outcome });
        }
        let t = &mut self.tensors[site];
        t.project_out(1 - bit);
        t.scale(1.0 / hit.sqrt());
        Ok(p)
    }

    /// `⟨self|other⟩` by full left-to-right contraction (Fig. 13).
    ///
    /// # Panics
    ///
    /// Panics if the widths or internal permutations differ.
    pub fn inner(&self, other: &Mps) -> C64 {
        assert_eq!(self.n_qubits(), other.n_qubits(), "width mismatch");
        assert_eq!(
            self.site_to_logical, other.site_to_logical,
            "MPS permutations differ; cannot contract directly"
        );
        // D[ra, rb] environment, conjugating self.
        let mut d = CMat::from_rows(&[vec![C64::ONE]]);
        for (a, b) in self.tensors.iter().zip(&other.tensors) {
            let mut next = CMat::zeros(a.right(), b.right());
            for la in 0..a.left() {
                for lb in 0..b.left() {
                    let env = d.at(la, lb);
                    if env.re == 0.0 && env.im == 0.0 {
                        continue;
                    }
                    for s in 0..2 {
                        for ra in 0..a.right() {
                            let left = env * a.at(la, s, ra).conj();
                            if left.re == 0.0 && left.im == 0.0 {
                                continue;
                            }
                            for rb in 0..b.right() {
                                let v = next.at(ra, rb).add_prod(left, b.at(lb, s, rb));
                                next.set(ra, rb, v);
                            }
                        }
                    }
                }
            }
            d = next;
        }
        d.at(0, 0)
    }

    /// `‖ψ‖` of the represented state.
    pub fn norm(&self) -> f64 {
        self.inner(self).re.max(0.0).sqrt()
    }

    /// Scales the state back to unit norm (after non-unitary operations).
    pub fn renormalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let c = self.center;
            self.tensors[c].scale(1.0 / n);
        }
    }

    /// Materializes the full state vector in **logical** qubit order.
    ///
    /// # Panics
    ///
    /// Panics for more than 20 qubits (exponential blow-up guard).
    pub fn to_statevector(&self) -> CVec {
        let n = self.n_qubits();
        assert!(n <= 20, "to_statevector is for ≤ 20 qubits");
        // Contract left to right in site order.
        let mut acc = self.tensors[0].left_fused(); // rows = 2, cols = r0
        for t in &self.tensors[1..] {
            let rows = acc.rows();
            let mut next = CMat::zeros(rows * 2, t.right());
            for i in 0..rows {
                for m in 0..acc.cols() {
                    let base = acc.at(i, m);
                    if base.re == 0.0 && base.im == 0.0 {
                        continue;
                    }
                    for s in 0..2 {
                        for r in 0..t.right() {
                            let v = next.at(i * 2 + s, r).add_prod(base, t.at(m, s, r));
                            next.set(i * 2 + s, r, v);
                        }
                    }
                }
            }
            acc = next;
        }
        debug_assert_eq!(acc.cols(), 1);
        // Reorder site-major amplitudes into logical-major order.
        let dim = 1usize << n;
        let mut out = CVec::zeros(dim);
        for site_idx in 0..dim {
            let mut logical_idx = 0usize;
            for (site, &logical) in self.site_to_logical.iter().enumerate() {
                let bit = (site_idx >> (n - 1 - site)) & 1;
                logical_idx |= bit << (n - 1 - logical);
            }
            out[logical_idx] = acc.at(site_idx, 0);
        }
        out
    }

    /// The dense density matrix `|ψ⟩⟨ψ|` in logical order (≤ 20 qubits...
    /// realistically ≤ 10 for the `2ⁿ × 2ⁿ` matrix).
    pub fn to_density_matrix(&self) -> CMat {
        let v = self.to_statevector();
        CMat::outer(&v, &v)
    }

    /// Verifies the mixed-canonical invariants (test support): sites left
    /// of the center are left-canonical, right of it right-canonical.
    pub fn check_canonical(&self, tol: f64) -> bool {
        for (k, t) in self.tensors.iter().enumerate() {
            if k < self.center {
                let m = t.left_fused();
                if !m.adjoint_mul(&m).approx_eq(&CMat::identity(m.cols()), tol) {
                    return false;
                }
            } else if k > self.center {
                let m = t.right_fused();
                if !m.mul_adjoint(&m).approx_eq(&CMat::identity(m.rows()), tol) {
                    return false;
                }
            }
        }
        true
    }
}

/// Relative Schmidt-mass threshold below which "dropped" weight is treated
/// as floating-point rounding rather than genuine truncation. The resulting
/// under-report is at most `2·√(1e-13) ≈ 6e-7` per gate and only in the
/// regime where the true truncation is itself at the rounding floor.
const NUMERICAL_NOISE_FLOOR: f64 = 1e-13;

/// `SWAP · M · SWAP` — reverses the operand order of a 4×4 two-qubit matrix.
fn conjugate_by_swap(m: &CMat) -> CMat {
    let sw = Gate::Swap.matrix();
    sw.mul_mat(m).mul_mat(&sw)
}

/// Hermitizes and trace-normalizes a small density matrix.
fn normalize_density(rho: CMat) -> CMat {
    let rho = rho.hermitize();
    let t = rho.trace().re;
    if t > 0.0 {
        rho.scaled(c64(1.0 / t, 0.0))
    } else {
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz_mps(w: usize) -> Mps {
        let mut mps = Mps::zero_state(2, MpsConfig::with_width(w));
        mps.apply_gate(&Gate::H, &[0]);
        mps.apply_gate(&Gate::Cnot, &[0, 1]);
        mps
    }

    #[test]
    fn paper_example_wide() {
        // §5.3: w = 2 represents GHZ exactly, δ = 0.
        let mps = ghz_mps(2);
        assert!(mps.delta() < 1e-12);
        let v = mps.to_statevector();
        let s = 1.0 / 2f64.sqrt();
        assert!((v[0].re - s).abs() < 1e-12);
        assert!((v[3].re - s).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12 && v[2].abs() < 1e-12);
    }

    #[test]
    fn paper_example_narrow() {
        // §5.3: w = 1 truncates GHZ to |00⟩ with δ = √2.
        let mps = ghz_mps(1);
        assert!(
            (mps.delta() - 2f64.sqrt()).abs() < 1e-10,
            "δ = {}",
            mps.delta()
        );
        let v = mps.to_statevector();
        assert!((v[0].abs() - 1.0).abs() < 1e-10);
        assert!(v[3].abs() < 1e-10);
    }

    #[test]
    fn bond_dims_respect_width() {
        let mut mps = Mps::zero_state(6, MpsConfig::with_width(3));
        for q in 0..6 {
            mps.apply_gate(&Gate::H, &[q]);
        }
        for layer in 0..4 {
            for q in 0..5 {
                mps.apply_gate(&Gate::Rzz(0.3 + 0.1 * layer as f64), &[q, q + 1]);
            }
            for q in 0..6 {
                mps.apply_gate(&Gate::Rx(0.7), &[q]);
            }
        }
        assert!(mps.bond_dims().iter().all(|&d| d <= 3));
        assert!((mps.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn canonical_invariants_hold() {
        let mut mps = Mps::zero_state(5, MpsConfig::with_width(8));
        for q in 0..5 {
            mps.apply_gate(&Gate::H, &[q]);
        }
        mps.apply_gate(&Gate::Cnot, &[0, 1]);
        mps.apply_gate(&Gate::Rzz(0.5), &[2, 3]);
        mps.apply_gate(&Gate::Cnot, &[3, 4]);
        assert!(mps.check_canonical(1e-10));
        mps.move_center_to(0);
        assert!(mps.check_canonical(1e-10));
        mps.move_center_to(4);
        assert!(mps.check_canonical(1e-10));
    }

    #[test]
    fn norm_is_one_after_unitaries() {
        let mut mps = Mps::zero_state(4, MpsConfig::with_width(16));
        mps.apply_gate(&Gate::H, &[0]);
        mps.apply_gate(&Gate::Cnot, &[0, 3]); // non-adjacent
        mps.apply_gate(&Gate::Rx(1.2), &[2]);
        mps.apply_gate(&Gate::Rzz(0.8), &[1, 3]);
        assert!((mps.norm() - 1.0).abs() < 1e-10);
        assert!(mps.delta() < 1e-10, "wide MPS should not truncate");
    }

    #[test]
    fn non_adjacent_gate_matches_dense() {
        // CNOT(0, 3) on |1000⟩ gives |1001⟩.
        let mut bits = vec![false; 4];
        bits[0] = true;
        let mut mps = Mps::basis_state(&bits, MpsConfig::with_width(8));
        mps.apply_gate(&Gate::Cnot, &[0, 3]);
        let v = mps.to_statevector();
        assert!((v[0b1001].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reversed_operand_gate_matches_dense() {
        // CNOT with control 3, target 0 on |0001⟩ → |1001⟩.
        let mut bits = vec![false; 4];
        bits[3] = true;
        let mut mps = Mps::basis_state(&bits, MpsConfig::with_width(8));
        mps.apply_gate(&Gate::Cnot, &[3, 0]);
        let v = mps.to_statevector();
        assert!((v[0b1001].abs() - 1.0).abs() < 1e-10, "{v:?}");
    }

    #[test]
    fn local_density_of_plus_state() {
        let mut mps = Mps::zero_state(3, MpsConfig::with_width(4));
        mps.apply_gate(&Gate::H, &[1]);
        let rho = mps.local_density_1(1);
        for i in 0..2 {
            for j in 0..2 {
                assert!((rho.at(i, j).re - 0.5).abs() < 1e-10);
                assert!(rho.at(i, j).im.abs() < 1e-10);
            }
        }
        // Qubit 0 is still |0⟩.
        let rho0 = mps.local_density_1(0);
        assert!((rho0.at(0, 0).re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pair_density_of_ghz() {
        let mut mps = ghz_mps(4);
        let rho = mps.local_density_2(0, 1);
        assert!((rho.at(0, 0).re - 0.5).abs() < 1e-10);
        assert!((rho.at(3, 3).re - 0.5).abs() < 1e-10);
        assert!((rho.at(0, 3).re - 0.5).abs() < 1e-10);
        assert!((rho.trace().re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pair_density_operand_order() {
        // |01⟩: density in order (0,1) has support on index 1; in order
        // (1,0) on index 2.
        let mut mps = Mps::basis_state(&[false, true], MpsConfig::with_width(2));
        let rho01 = mps.local_density_2(0, 1);
        assert!((rho01.at(1, 1).re - 1.0).abs() < 1e-10);
        let rho10 = mps.local_density_2(1, 0);
        assert!((rho10.at(2, 2).re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gate_snapshot_matches_direct_extraction() {
        // Adjacent pair: snapshot ≡ local_density_2 and adds no δ.
        let mut a = ghz_mps(4);
        let mut b = ghz_mps(4);
        let (rho_snap, delta_snap) = a.gate_snapshot(&[0, 1]);
        let rho_direct = b.local_density_2(0, 1);
        assert!(rho_snap.approx_eq(&rho_direct, 1e-12));
        assert_eq!(delta_snap, b.delta());

        // Single qubit.
        let mut c = ghz_mps(4);
        let (rho1, d1) = c.gate_snapshot(&[1]);
        assert!((rho1.at(0, 0).re - 0.5).abs() < 1e-10);
        assert!(d1 < 1e-12);
    }

    #[test]
    fn gate_snapshot_routing_truncation_lands_in_delta() {
        // A narrow MPS forced to route distant qubits together: the swap
        // truncation must be inside the returned δ (the judgment's δ, read
        // after routing), and must equal the MPS's own accounting.
        let build = || {
            let mut mps = Mps::zero_state(5, MpsConfig::with_width(2));
            for q in 0..5 {
                mps.apply_gate(&Gate::H, &[q]);
            }
            for q in 0..4 {
                mps.apply_gate(&Gate::Rzz(0.9), &[q, q + 1]);
            }
            mps
        };
        let mut mps = build();
        let before = mps.delta();
        let (_rho, snap_delta) = mps.gate_snapshot(&[0, 4]);
        assert_eq!(snap_delta, mps.delta(), "snapshot δ is the post-routing δ");
        assert!(
            snap_delta >= before,
            "routing must never shrink δ: {snap_delta} < {before}"
        );
    }

    #[test]
    fn collapse_probabilities() {
        let mut mps = ghz_mps(4);
        let mut zero_branch = mps.clone();
        let p0 = zero_branch.collapse(0, false).unwrap();
        assert!((p0 - 0.5).abs() < 1e-10);
        // After collapsing qubit 0 to 0, qubit 1 must be 0 too.
        let rho1 = zero_branch.local_density_1(1);
        assert!((rho1.at(0, 0).re - 1.0).abs() < 1e-10);
        let p1 = mps.collapse(0, true).unwrap();
        assert!((p1 - 0.5).abs() < 1e-10);
        let rho1 = mps.local_density_1(1);
        assert!((rho1.at(1, 1).re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn collapse_zero_probability_errors() {
        let mut mps = Mps::zero_state(2, MpsConfig::with_width(2));
        let err = mps.collapse(0, true).unwrap_err();
        assert!(matches!(
            err,
            MpsError::ZeroProbabilityOutcome {
                qubit: 0,
                outcome: true
            }
        ));
    }

    #[test]
    fn inner_product_of_known_states() {
        let a = ghz_mps(2);
        let b = ghz_mps(2);
        assert!((a.inner(&b).re - 1.0).abs() < 1e-10);
        let zero = Mps::zero_state(2, MpsConfig::with_width(2));
        let ov = a.inner(&zero);
        assert!((ov.re - 1.0 / 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn truncation_error_bounds_true_distance() {
        // Deep entangling circuit at w = 2: the accumulated δ must bound the
        // true full trace-norm distance 2·√(1−|⟨ψ̂|ψ⟩|²) against an exact
        // (wide) reference.
        let build = |w: usize| {
            let mut mps = Mps::zero_state(5, MpsConfig::with_width(w));
            for q in 0..5 {
                mps.apply_gate(&Gate::H, &[q]);
            }
            for layer in 0..3 {
                for q in 0..4 {
                    mps.apply_gate(&Gate::Rzz(0.9 + 0.2 * layer as f64), &[q, q + 1]);
                }
                for q in 0..5 {
                    mps.apply_gate(&Gate::Rx(0.6), &[q]);
                }
            }
            mps
        };
        let exact = build(32); // 2^⌊5/2⌋ = 4 < 32: exact
        assert!(exact.delta() < 1e-9);
        let approx = build(2);
        assert!(approx.delta() > 0.0, "narrow MPS must truncate");
        let ve = exact.to_statevector();
        let va = approx.to_statevector();
        let overlap = {
            let mut acc = C64::ZERO;
            for i in 0..ve.len() {
                acc = acc.add_prod(ve[i].conj(), va[i]);
            }
            acc
        };
        let true_dist = 2.0 * (1.0 - overlap.norm_sqr()).max(0.0).sqrt();
        assert!(
            true_dist <= approx.delta() + 1e-9,
            "true {true_dist} > δ {}",
            approx.delta()
        );
    }

    #[test]
    fn permutation_tracking_after_routing() {
        let mut mps = Mps::zero_state(4, MpsConfig::with_width(8));
        mps.apply_gate(&Gate::X, &[0]);
        mps.apply_gate(&Gate::Cnot, &[0, 3]);
        // Now logical 0 may live elsewhere; a further 1q gate must still
        // address the right qubit.
        mps.apply_gate(&Gate::X, &[0]);
        let v = mps.to_statevector();
        // X(0); CNOT(0,3); X(0) on |0000⟩ = |0001⟩.
        assert!((v[0b0001].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut mps = ghz_mps(4);
        mps.collapse(0, false).unwrap();
        mps.renormalize();
        assert!((mps.norm() - 1.0).abs() < 1e-10);
    }
}
