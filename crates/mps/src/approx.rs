//! The tensor-network approximator `TN(ρ₀, P) = (ρ̂, δ)` (paper §5.2,
//! Theorem 5.1) lifted to whole programs, including measurement branches.
//!
//! Straight-line programs produce a single branch; each `if` statement
//! forks the MPS into both collapsed branches (§5.2 "Supporting branches"),
//! whose count may grow exponentially with the number of measurements —
//! exactly the cost model the paper describes.

use crate::{Mps, MpsConfig, MpsError};
use gleipnir_circuit::{Program, Stmt};

/// One branch of an approximated program execution.
#[derive(Clone, Debug)]
pub struct TnBranch {
    /// The approximate state ρ̂ (as a normalized MPS).
    pub mps: Mps,
    /// Probability of this branch (product of measured-outcome
    /// probabilities along the path; 1 for straight-line programs).
    pub probability: f64,
    /// Measurement outcomes taken along this branch, in program order.
    pub outcomes: Vec<(usize, bool)>,
}

/// The result of approximating a program: all reachable branches and the
/// total approximation error.
#[derive(Clone, Debug)]
pub struct TnResult {
    /// All reachable branches (unreachable zero-probability branches are
    /// pruned).
    pub branches: Vec<TnBranch>,
    /// The total truncation error δ — the sum over all branches, matching
    /// §5.2 ("the overall approximation error is taken to be the sum of
    /// approximation errors incurred on all branches").
    pub delta: f64,
}

impl TnResult {
    /// The single branch of a straight-line program.
    ///
    /// # Panics
    ///
    /// Panics if the program branched.
    pub fn into_single(mut self) -> (Mps, f64) {
        assert_eq!(self.branches.len(), 1, "program branched");
        let b = self.branches.pop().expect("one branch");
        (b.mps, self.delta)
    }
}

/// Runs the approximator over a program from a basis input state.
///
/// Returns every reachable execution branch with its approximate output
/// state, plus the accumulated truncation error δ such that the represented
/// (mixture of) states is within full trace-norm distance δ of the ideal
/// program output (Theorem 5.1).
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
/// use gleipnir_mps::{tn_approximate, MpsConfig};
///
/// let mut b = ProgramBuilder::new(2);
/// b.h(0).cnot(0, 1);
/// let result = tn_approximate(&b.build(), &[false, false], MpsConfig::with_width(4));
/// assert_eq!(result.branches.len(), 1);
/// assert!(result.delta < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `input_bits.len()` differs from the program register width.
pub fn tn_approximate(program: &Program, input_bits: &[bool], config: MpsConfig) -> TnResult {
    assert_eq!(input_bits.len(), program.n_qubits(), "input width mismatch");
    let root = TnBranch {
        mps: Mps::basis_state(input_bits, config),
        probability: 1.0,
        outcomes: Vec::new(),
    };
    let mut branches = vec![root];
    run_stmt(program.body(), &mut branches);
    let delta = branches.iter().map(|b| b.mps.delta()).sum();
    TnResult { branches, delta }
}

fn run_stmt(s: &Stmt, branches: &mut Vec<TnBranch>) {
    match s {
        Stmt::Skip => {}
        Stmt::Seq(ss) => {
            for s in ss {
                run_stmt(s, branches);
            }
        }
        Stmt::Gate(g) => {
            let qubits: Vec<usize> = g.qubits.iter().map(|q| q.0).collect();
            for b in branches.iter_mut() {
                b.mps.apply_gate(&g.gate, &qubits);
            }
        }
        Stmt::IfMeasure { qubit, zero, one } => {
            let mut next = Vec::with_capacity(branches.len() * 2);
            for b in branches.drain(..) {
                for outcome in [false, true] {
                    let mut fork = b.clone();
                    match fork.mps.collapse(qubit.0, outcome) {
                        Ok(p) => {
                            fork.probability *= p;
                            fork.outcomes.push((qubit.0, outcome));
                            let mut sub = vec![fork];
                            run_stmt(if outcome { one } else { zero }, &mut sub);
                            next.extend(sub);
                        }
                        Err(MpsError::ZeroProbabilityOutcome { .. }) => {
                            // Unreachable branch: prune.
                        }
                    }
                }
            }
            *branches = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::ProgramBuilder;

    #[test]
    fn straight_line_single_branch() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).cnot(1, 2);
        let r = tn_approximate(&b.build(), &[false; 3], MpsConfig::with_width(8));
        assert_eq!(r.branches.len(), 1);
        let (mps, delta) = r.into_single();
        assert!(delta < 1e-12);
        let v = mps.to_statevector();
        assert!((v[0].abs() - 1.0 / 2f64.sqrt()).abs() < 1e-10);
        assert!((v[7].abs() - 1.0 / 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn measurement_forks_branches() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.z(1);
            },
        );
        let r = tn_approximate(&b.build(), &[false; 2], MpsConfig::with_width(4));
        assert_eq!(r.branches.len(), 2);
        for br in &r.branches {
            assert!((br.probability - 0.5).abs() < 1e-10);
            assert_eq!(br.outcomes.len(), 1);
        }
    }

    #[test]
    fn unreachable_branch_is_pruned() {
        // Qubit 0 is deterministically |1⟩, so the zero branch never runs.
        let mut b = ProgramBuilder::new(2);
        b.x(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.skip();
            },
        );
        let r = tn_approximate(&b.build(), &[false; 2], MpsConfig::with_width(4));
        assert_eq!(r.branches.len(), 1);
        assert_eq!(r.branches[0].outcomes, vec![(0, true)]);
        assert!((r.branches[0].probability - 1.0).abs() < 1e-10);
    }

    #[test]
    fn nested_measurements_multiply_branches() {
        let mut b = ProgramBuilder::new(3);
        b.h(0).h(1);
        b.if_measure(
            0,
            |z| {
                z.skip();
            },
            |o| {
                o.skip();
            },
        );
        b.if_measure(
            1,
            |z| {
                z.skip();
            },
            |o| {
                o.skip();
            },
        );
        let r = tn_approximate(&b.build(), &[false; 3], MpsConfig::with_width(4));
        assert_eq!(r.branches.len(), 4);
        let total: f64 = r.branches.iter().map(|b| b.probability).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn branch_probabilities_match_born_rule() {
        // Rx(θ) on |0⟩: p(1) = sin²(θ/2).
        let theta = 1.1f64;
        let mut b = ProgramBuilder::new(1);
        b.rx(0, theta);
        b.if_measure(
            0,
            |z| {
                z.skip();
            },
            |o| {
                o.skip();
            },
        );
        let r = tn_approximate(&b.build(), &[false], MpsConfig::with_width(2));
        let p1 = r
            .branches
            .iter()
            .find(|b| b.outcomes[0].1)
            .map(|b| b.probability)
            .unwrap();
        assert!((p1 - (theta / 2.0).sin().powi(2)).abs() < 1e-10);
    }

    #[test]
    fn delta_sums_over_branches() {
        // Entangle deeply at w = 1 inside both branches; δ must accumulate
        // from both.
        let mut b = ProgramBuilder::new(3);
        b.h(0).h(1).h(2);
        b.rzz(0, 1, 1.0).rzz(1, 2, 1.0);
        b.if_measure(
            0,
            |z| {
                z.rzz(1, 2, 0.5).rx(1, 0.3).rzz(1, 2, 0.9);
            },
            |o| {
                o.rzz(1, 2, 0.7).rx(2, 0.4).rzz(1, 2, 1.1);
            },
        );
        let r = tn_approximate(&b.build(), &[false; 3], MpsConfig::with_width(1));
        assert!(r.delta > 0.0);
        let sum: f64 = r.branches.iter().map(|b| b.mps.delta()).sum();
        assert!((r.delta - sum).abs() < 1e-12);
    }
}
