//! Cross-validation of the MPS engine against the dense simulators, plus
//! property tests of the Theorem 5.1 soundness invariant.

use gleipnir_circuit::{Gate, Program, ProgramBuilder};
use gleipnir_linalg::{ptrace_keep, C64};
use gleipnir_mps::{tn_approximate, Mps, MpsConfig};
use gleipnir_sim::StateVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random straight-line circuit over `n` qubits.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..6) {
            0 => {
                b.h(rng.gen_range(0..n));
            }
            1 => {
                b.rx(rng.gen_range(0..n), rng.gen_range(-3.0..3.0));
            }
            2 => {
                b.rz(rng.gen_range(0..n), rng.gen_range(-3.0..3.0));
            }
            3 => {
                let a = rng.gen_range(0..n);
                let mut c = rng.gen_range(0..n);
                while c == a {
                    c = rng.gen_range(0..n);
                }
                b.cnot(a, c);
            }
            4 => {
                let a = rng.gen_range(0..n);
                let mut c = rng.gen_range(0..n);
                while c == a {
                    c = rng.gen_range(0..n);
                }
                b.rzz(a, c, rng.gen_range(-2.0..2.0));
            }
            _ => {
                b.t(rng.gen_range(0..n));
            }
        }
    }
    b.build()
}

fn overlap(a: &gleipnir_linalg::CVec, b: &gleipnir_linalg::CVec) -> f64 {
    let mut acc = C64::ZERO;
    for i in 0..a.len() {
        acc = acc.add_prod(a[i].conj(), b[i]);
    }
    acc.norm_sqr()
}

#[test]
fn wide_mps_matches_statevector_on_random_circuits() {
    for seed in 0..8 {
        let n = 5;
        let p = random_circuit(n, 30, seed);
        let mut sv = StateVector::zero_state(n);
        sv.run(&p).unwrap();
        let (mps, delta) =
            tn_approximate(&p, &vec![false; n], MpsConfig::with_width(32)).into_single();
        assert!(
            delta < 1e-9,
            "seed {seed}: wide MPS truncated (δ = {delta})"
        );
        let fidelity = overlap(&mps.to_statevector(), sv.amplitudes());
        assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "seed {seed}: fidelity {fidelity}"
        );
    }
}

#[test]
fn truncated_mps_delta_is_sound() {
    // Theorem 5.1: the reported δ bounds the true full trace-norm distance
    // 2√(1 − |⟨ψ̂|ψ⟩|²) between the truncated and exact states.
    for seed in 0..10 {
        let n = 6;
        let p = random_circuit(n, 40, 100 + seed);
        let mut sv = StateVector::zero_state(n);
        sv.run(&p).unwrap();
        for w in [1usize, 2, 3] {
            let (mps, delta) =
                tn_approximate(&p, &vec![false; n], MpsConfig::with_width(w)).into_single();
            let fid = overlap(&mps.to_statevector(), sv.amplitudes()).min(1.0);
            let true_dist = 2.0 * (1.0 - fid).max(0.0).sqrt();
            assert!(
                true_dist <= delta + 1e-7,
                "seed {seed} w {w}: true distance {true_dist} exceeds δ {delta}"
            );
        }
    }
}

#[test]
fn local_densities_match_dense_partial_trace() {
    for seed in 0..6 {
        let n = 4;
        let p = random_circuit(n, 25, 200 + seed);
        let mut sv = StateVector::zero_state(n);
        sv.run(&p).unwrap();
        let rho_full = sv.to_density_matrix();
        let (mut mps, delta) =
            tn_approximate(&p, &vec![false; n], MpsConfig::with_width(16)).into_single();
        assert!(delta < 1e-9);
        for q in 0..n {
            let dense = ptrace_keep(&rho_full, n, &[q]);
            let local = mps.local_density_1(q);
            assert!(
                local.approx_eq(&dense, 1e-8),
                "seed {seed} qubit {q}: local density mismatch"
            );
        }
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let mut keep = [a.min(b), a.max(b)];
                keep.sort_unstable();
                let dense = ptrace_keep(&rho_full, n, &keep);
                // ptrace keeps ascending order; local_density_2 gives
                // operand order (a, b). Align by swapping when a > b.
                let local = mps.local_density_2(keep[0], keep[1]);
                assert!(
                    local.approx_eq(&dense, 1e-8),
                    "seed {seed} pair {a},{b}: pair density mismatch"
                );
            }
        }
    }
}

#[test]
fn collapse_matches_dense_probabilities() {
    for seed in 0..5 {
        let n = 4;
        let p = random_circuit(n, 20, 300 + seed);
        let mut sv = StateVector::zero_state(n);
        sv.run(&p).unwrap();
        let (mps, _) = tn_approximate(&p, &vec![false; n], MpsConfig::with_width(16)).into_single();
        for q in 0..n {
            let dense_p1 = sv.prob_one(gleipnir_circuit::Qubit(q));
            let mut fork = mps.clone();
            match fork.collapse(q, true) {
                Ok(p1) => assert!(
                    (p1 - dense_p1).abs() < 1e-8,
                    "seed {seed} qubit {q}: {p1} vs {dense_p1}"
                ),
                Err(_) => assert!(dense_p1 < 1e-9, "seed {seed} qubit {q}"),
            }
        }
    }
}

#[test]
fn ising_layers_stay_bounded_at_small_width() {
    // A deep Ising-style evolution at w = 4 must keep bond dims ≤ 4, keep
    // the state normalized, and accumulate a finite, monotone δ.
    let n = 8;
    let mut mps = Mps::zero_state(n, MpsConfig::with_width(4));
    for q in 0..n {
        mps.apply_gate(&Gate::H, &[q]);
    }
    let mut last_delta = 0.0;
    for layer in 0..6 {
        for q in 0..n - 1 {
            mps.apply_gate(&Gate::Rzz(0.7), &[q, q + 1]);
        }
        for q in 0..n {
            mps.apply_gate(&Gate::Rx(0.9), &[q]);
        }
        assert!(mps.delta() >= last_delta, "δ decreased in layer {layer}");
        last_delta = mps.delta();
        assert!(
            (mps.norm() - 1.0).abs() < 1e-8,
            "norm drifted in layer {layer}"
        );
    }
    assert!(mps.bond_dims().iter().all(|&d| d <= 4));
    assert!(
        mps.delta() > 0.0,
        "w = 4 must truncate a deep Ising evolution"
    );
    assert!(mps.delta().is_finite());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_delta_monotone_in_width(seed in 0u64..500) {
        // Wider MPS never reports more truncation error on the same circuit.
        let n = 5;
        let p = random_circuit(n, 30, seed);
        let d1 = tn_approximate(&p, &vec![false; n], MpsConfig::with_width(1)).delta;
        let d2 = tn_approximate(&p, &vec![false; n], MpsConfig::with_width(2)).delta;
        let d4 = tn_approximate(&p, &vec![false; n], MpsConfig::with_width(4)).delta;
        let d16 = tn_approximate(&p, &vec![false; n], MpsConfig::with_width(16)).delta;
        // Strict per-pair monotonicity is not guaranteed gate-by-gate (different
        // truncations steer different trajectories), but the exact regime must
        // dominate and w=16 (exact for 5 qubits) must be ~0.
        prop_assert!(d16 < 1e-9);
        prop_assert!(d4 <= d2 + 1e-6 || d4 < 0.1);
        prop_assert!(d2 <= d1 + 1e-6 || d2 < d1 || d1 == 0.0);
    }

    #[test]
    fn prop_norm_preserved(seed in 500u64..700, w in 1usize..6) {
        let n = 4;
        let p = random_circuit(n, 20, seed);
        let (mps, _) = tn_approximate(&p, &vec![false; n], MpsConfig::with_width(w)).into_single();
        prop_assert!((mps.norm() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn prop_local_density_is_valid(seed in 700u64..850, w in 2usize..8) {
        let n = 4;
        let p = random_circuit(n, 15, seed);
        let (mut mps, _) = tn_approximate(&p, &vec![false; n], MpsConfig::with_width(w)).into_single();
        for q in 0..n {
            let rho = mps.local_density_1(q);
            prop_assert!(gleipnir_linalg::is_density_matrix(&rho, 1e-7));
        }
        let rho2 = mps.local_density_2(0, 2);
        prop_assert!(gleipnir_linalg::is_density_matrix(&rho2, 1e-7));
    }
}
