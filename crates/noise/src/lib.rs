//! # gleipnir-noise
//!
//! Quantum noise for the Gleipnir workspace: Kraus [`Channel`]s, gate-level
//! [`NoiseModel`]s (including the paper's §7.1 uniform bit-flip model), and
//! calibrated [`DeviceModel`]s with the coupling maps of the paper's Fig. 15
//! (IBM Boeblingen and Lima; synthetic calibration — see DESIGN.md §3).
//!
//! The [`choi_from_apply`] / [`choi_of_unitary`] helpers provide the
//! Choi–Jamiołkowski representations the diamond-norm SDPs are built from,
//! and the [`classify`](mod@classify) module detects analytic channel
//! structure (Pauli /
//! depolarizing / dephasing / unital) with certified closed-form diamond
//! bounds for the Pauli-type classes — the Tier 0 of `gleipnir-core`'s
//! tiered bound engine.
//!
//! ## Example
//!
//! ```
//! use gleipnir_circuit::{Gate, Qubit};
//! use gleipnir_noise::{Channel, NoiseModel};
//!
//! let nm = NoiseModel::uniform_bit_flip(1e-4);
//! let noisy_h = nm.noisy_gate(&Gate::H, &[Qubit(0)]);
//! // The noisy gate is a 2-Kraus channel: √(1−p)·H and √p·X·H.
//! assert_eq!(noisy_h.kraus().len(), 2);
//! ```

#![warn(missing_docs)]

mod channel;
pub mod classify;
mod device;
mod model;

pub use channel::{choi_from_apply, choi_of_unitary, Channel};
pub use classify::{classify, classify_kraus, classify_residual, ChannelClass, PauliProfile};
pub use device::DeviceModel;
pub use model::NoiseModel;
