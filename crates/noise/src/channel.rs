//! Quantum noise channels as Kraus-operator sets.
//!
//! All quantum noise effects are completely-positive trace-preserving (CPTP)
//! superoperators (§2.3); this module represents them by their Kraus
//! operators `{Kᵢ}` with `Φ(ρ) = Σᵢ KᵢρKᵢ†` and `Σᵢ Kᵢ†Kᵢ = I`, and
//! provides the conversions (superoperator matrix, Choi matrix) the
//! diamond-norm SDPs consume.

use gleipnir_circuit::Gate;
use gleipnir_linalg::{c64, CMat, C64};
use std::fmt;

/// A CPTP map on `k ∈ {1, 2}` qubits, represented by Kraus operators.
///
/// # Examples
///
/// ```
/// use gleipnir_noise::Channel;
/// use gleipnir_linalg::CMat;
///
/// let flip = Channel::bit_flip(0.25);
/// let rho0 = {
///     let mut m = CMat::zeros(2, 2);
///     m.set(0, 0, gleipnir_linalg::C64::ONE);
///     m
/// };
/// let out = flip.apply(&rho0);
/// assert!((out.at(0, 0).re - 0.75).abs() < 1e-12);
/// assert!((out.at(1, 1).re - 0.25).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Channel {
    name: String,
    kraus: Vec<CMat>,
    dim: usize,
}

impl Channel {
    /// Builds a channel from Kraus operators, checking trace preservation.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, dimensions are inconsistent or not
    /// `2^k × 2^k` for `k ∈ {1, 2}`, or `Σ K†K ≠ I` to 1e-9.
    pub fn from_kraus(name: impl Into<String>, kraus: Vec<CMat>) -> Self {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        let dim = kraus[0].rows();
        assert!(dim == 2 || dim == 4, "channels act on 1 or 2 qubits");
        let mut sum = CMat::zeros(dim, dim);
        for k in &kraus {
            assert_eq!(
                (k.rows(), k.cols()),
                (dim, dim),
                "inconsistent Kraus shapes"
            );
            sum = &sum + &k.adjoint_mul(k);
        }
        assert!(
            sum.approx_eq(&CMat::identity(dim), 1e-9),
            "Kraus operators do not satisfy Σ K†K = I"
        );
        Channel {
            name: name.into(),
            kraus,
            dim,
        }
    }

    /// The identity channel on `k` qubits.
    pub fn identity(k: usize) -> Self {
        Channel {
            name: "identity".into(),
            kraus: vec![CMat::identity(1 << k)],
            dim: 1 << k,
        }
    }

    /// Bit-flip channel `Φ(ρ) = (1−p)ρ + p·XρX` (the paper's §7.1 noise).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Channel {
            name: format!("bit_flip({p})"),
            kraus: vec![
                CMat::identity(2).scaled(c64((1.0 - p).sqrt(), 0.0)),
                Gate::X.matrix().scaled(c64(p.sqrt(), 0.0)),
            ],
            dim: 2,
        }
    }

    /// Phase-flip channel `Φ(ρ) = (1−p)ρ + p·ZρZ`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Channel {
            name: format!("phase_flip({p})"),
            kraus: vec![
                CMat::identity(2).scaled(c64((1.0 - p).sqrt(), 0.0)),
                Gate::Z.matrix().scaled(c64(p.sqrt(), 0.0)),
            ],
            dim: 2,
        }
    }

    /// Single-qubit depolarizing channel
    /// `Φ(ρ) = (1−p)ρ + (p/3)(XρX + YρY + ZρZ)`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let s = (p / 3.0).sqrt();
        Channel {
            name: format!("depolarizing({p})"),
            kraus: vec![
                CMat::identity(2).scaled(c64((1.0 - p).sqrt(), 0.0)),
                Gate::X.matrix().scaled(c64(s, 0.0)),
                Gate::Y.matrix().scaled(c64(s, 0.0)),
                Gate::Z.matrix().scaled(c64(s, 0.0)),
            ],
            dim: 2,
        }
    }

    /// Two-qubit depolarizing channel over the 15 non-identity Paulis.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn depolarizing2(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let paulis = [
            CMat::identity(2),
            Gate::X.matrix(),
            Gate::Y.matrix(),
            Gate::Z.matrix(),
        ];
        let s = (p / 15.0).sqrt();
        let mut kraus = Vec::with_capacity(16);
        for (i, a) in paulis.iter().enumerate() {
            for (j, b) in paulis.iter().enumerate() {
                let k = a.kron(b);
                if i == 0 && j == 0 {
                    kraus.push(k.scaled(c64((1.0 - p).sqrt(), 0.0)));
                } else {
                    kraus.push(k.scaled(c64(s, 0.0)));
                }
            }
        }
        Channel {
            name: format!("depolarizing2({p})"),
            kraus,
            dim: 4,
        }
    }

    /// Amplitude damping with decay probability `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `γ ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let mut k0 = CMat::identity(2);
        k0.set(1, 1, c64((1.0 - gamma).sqrt(), 0.0));
        let mut k1 = CMat::zeros(2, 2);
        k1.set(0, 1, c64(gamma.sqrt(), 0.0));
        Channel {
            name: format!("amplitude_damping({gamma})"),
            kraus: vec![k0, k1],
            dim: 2,
        }
    }

    /// Phase damping with probability `γ`.
    ///
    /// # Panics
    ///
    /// Panics if `γ ∉ [0, 1]`.
    pub fn phase_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let mut k0 = CMat::identity(2);
        k0.set(1, 1, c64((1.0 - gamma).sqrt(), 0.0));
        let mut k1 = CMat::zeros(2, 2);
        k1.set(1, 1, c64(gamma.sqrt(), 0.0));
        Channel {
            name: format!("phase_damping({gamma})"),
            kraus: vec![k0, k1],
            dim: 2,
        }
    }

    /// Amplitude damping on the **first** operand qubit of a two-qubit
    /// gate (`K ⊗ I` for each single-qubit damping Kraus `K`) — the
    /// two-qubit arm of
    /// [`NoiseModel::UniformAmplitudeDamping`](crate::NoiseModel::UniformAmplitudeDamping).
    ///
    /// # Panics
    ///
    /// Panics if `γ ∉ [0, 1]`.
    pub fn amplitude_damping_first_of_two(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let i2 = CMat::identity(2);
        let kraus = Channel::amplitude_damping(gamma)
            .kraus
            .iter()
            .map(|k| k.kron(&i2))
            .collect();
        Channel {
            name: format!("amplitude_damping_first({gamma})"),
            kraus,
            dim: 4,
        }
    }

    /// The paper's two-qubit gate noise: a bit flip on the **first** operand
    /// qubit with probability `p` (`Φ(ρ) = (1−p)ρ + p(X⊗I)ρ(X⊗I)`).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn bit_flip_first_of_two(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let xi = Gate::X.matrix().kron(&CMat::identity(2));
        Channel {
            name: format!("bit_flip_first({p})"),
            kraus: vec![
                CMat::identity(4).scaled(c64((1.0 - p).sqrt(), 0.0)),
                xi.scaled(c64(p.sqrt(), 0.0)),
            ],
            dim: 4,
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hilbert-space dimension (`2` or `4`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of qubits the channel acts on.
    pub fn arity(&self) -> usize {
        if self.dim == 2 {
            1
        } else {
            2
        }
    }

    /// The Kraus operators.
    pub fn kraus(&self) -> &[CMat] {
        &self.kraus
    }

    /// Applies the channel to a density matrix of matching dimension.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, rho: &CMat) -> CMat {
        assert_eq!(rho.rows(), self.dim, "dimension mismatch");
        let mut out = CMat::zeros(self.dim, self.dim);
        for k in &self.kraus {
            out = &out + &k.mul_mat(rho).mul_adjoint(k);
        }
        out
    }

    /// The channel after first applying a unitary: `ρ ↦ Σ Kᵢ U ρ U† Kᵢ†`.
    ///
    /// This is the paper's noisy gate `Ũ_ω = Φ ∘ U`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn after_unitary(&self, u: &CMat) -> Channel {
        assert_eq!(u.rows(), self.dim, "dimension mismatch");
        Channel {
            name: format!("{}∘U", self.name),
            kraus: self.kraus.iter().map(|k| k.mul_mat(u)).collect(),
            dim: self.dim,
        }
    }

    /// Sequential composition `other ∘ self` (apply `self` first).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn then(&self, other: &Channel) -> Channel {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut kraus = Vec::with_capacity(self.kraus.len() * other.kraus.len());
        for b in &other.kraus {
            for a in &self.kraus {
                kraus.push(b.mul_mat(a));
            }
        }
        Channel {
            name: format!("{}∘{}", other.name, self.name),
            kraus,
            dim: self.dim,
        }
    }

    /// The Choi matrix `J(Φ) = Σᵢⱼ Φ(Eᵢⱼ) ⊗ Eᵢⱼ` (dimension `d² × d²`).
    pub fn choi(&self) -> CMat {
        choi_from_apply(|e| self.apply(e), self.dim)
    }

    /// The superoperator matrix `S = Σᵢ Kᵢ ⊗ conj(Kᵢ)` acting on row-major
    /// vectorized density matrices.
    pub fn superoperator(&self) -> CMat {
        let d2 = self.dim * self.dim;
        let mut s = CMat::zeros(d2, d2);
        for k in &self.kraus {
            s = &s + &k.kron(&k.conj());
        }
        s
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The Choi matrix of an arbitrary linear map given by its action on matrix
/// units: `J(Φ) = Σᵢⱼ Φ(Eᵢⱼ) ⊗ Eᵢⱼ`.
pub fn choi_from_apply(apply: impl Fn(&CMat) -> CMat, dim: usize) -> CMat {
    let d2 = dim * dim;
    let mut j = CMat::zeros(d2, d2);
    let mut e = CMat::zeros(dim, dim);
    for r in 0..dim {
        for c in 0..dim {
            e.set(r, c, C64::ONE);
            let phi = apply(&e);
            e.set(r, c, C64::ZERO);
            // Accumulate Φ(E_rc) ⊗ E_rc.
            for pr in 0..dim {
                for pc in 0..dim {
                    let v = phi.at(pr, pc);
                    if v.re != 0.0 || v.im != 0.0 {
                        let row = pr * dim + r;
                        let col = pc * dim + c;
                        let old = j.at(row, col);
                        j.set(row, col, old + v);
                    }
                }
            }
        }
    }
    j
}

/// The Choi matrix of the unitary conjugation map `ρ ↦ UρU†`.
pub fn choi_of_unitary(u: &CMat) -> CMat {
    choi_from_apply(|e| u.mul_mat(e).mul_adjoint(u), u.rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_linalg::eigh_vals;

    fn plus_rho() -> CMat {
        CMat::from_fn(2, 2, |_, _| c64(0.5, 0.0))
    }

    #[test]
    fn bit_flip_fixes_plus_state() {
        // X|+⟩ = |+⟩, so the bit-flip channel leaves |+⟩⟨+| alone — the
        // paper's §2.3 motivating example.
        let flip = Channel::bit_flip(0.3);
        let out = flip.apply(&plus_rho());
        assert!(out.approx_eq(&plus_rho(), 1e-12));
    }

    #[test]
    fn channels_are_trace_preserving() {
        let rho = {
            let m = CMat::from_fn(2, 2, |i, j| c64((i + j) as f64, i as f64 - j as f64));
            let p = m.mul_adjoint(&m);
            let t = p.trace().re;
            p.scaled(c64(1.0 / t, 0.0))
        };
        for ch in [
            Channel::bit_flip(0.1),
            Channel::phase_flip(0.2),
            Channel::depolarizing(0.15),
            Channel::amplitude_damping(0.3),
            Channel::phase_damping(0.25),
        ] {
            let out = ch.apply(&rho);
            assert!((out.trace().re - 1.0).abs() < 1e-10, "{ch} not TP");
        }
    }

    #[test]
    fn two_qubit_channels_are_valid() {
        for ch in [
            Channel::depolarizing2(0.1),
            Channel::bit_flip_first_of_two(0.2),
            Channel::amplitude_damping_first_of_two(0.3),
        ] {
            assert_eq!(ch.arity(), 2);
            let mut sum = CMat::zeros(4, 4);
            for k in ch.kraus() {
                sum = &sum + &k.adjoint_mul(k);
            }
            assert!(sum.approx_eq(&CMat::identity(4), 1e-10), "{ch}");
        }
    }

    #[test]
    fn depolarizing_sends_to_mixed() {
        // p = 3/4 depolarizing is the fully depolarizing channel.
        let ch = Channel::depolarizing(0.75);
        let mut rho0 = CMat::zeros(2, 2);
        rho0.set(0, 0, C64::ONE);
        let out = ch.apply(&rho0);
        assert!(out.approx_eq(&CMat::identity(2).scaled(c64(0.5, 0.0)), 1e-12));
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let ch = Channel::amplitude_damping(0.4);
        let mut rho1 = CMat::zeros(2, 2);
        rho1.set(1, 1, C64::ONE);
        let out = ch.apply(&rho1);
        assert!((out.at(0, 0).re - 0.4).abs() < 1e-12);
        assert!((out.at(1, 1).re - 0.6).abs() < 1e-12);
    }

    #[test]
    fn choi_of_identity_is_maximally_entangled() {
        let j = Channel::identity(1).choi();
        // J(I) = Σ E_ij ⊗ E_ij = |Ω⟩⟨Ω|·d with |Ω⟩ = Σ|ii⟩/√d; entries at
        // (i·d+i, j·d+j) equal 1.
        for i in 0..2 {
            for jj in 0..2 {
                assert!(j.at(i * 2 + i, jj * 2 + jj).approx_eq(C64::ONE, 1e-12));
            }
        }
        assert!((j.trace().re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn choi_is_psd_and_has_trace_d() {
        for ch in [
            Channel::bit_flip(0.2),
            Channel::depolarizing(0.1),
            Channel::amplitude_damping(0.35),
        ] {
            let j = ch.choi();
            assert!(j.is_hermitian(1e-10), "{ch}");
            let vals = eigh_vals(&j.hermitize()).unwrap();
            assert!(vals[0] > -1e-10, "{ch} Choi not PSD");
            assert!((j.trace().re - 2.0).abs() < 1e-10, "{ch}");
        }
    }

    #[test]
    fn choi_linearity_matches_difference() {
        // J(Φ − I-map) = J(Φ) − J(I).
        let ch = Channel::bit_flip(0.25);
        let diff = choi_from_apply(|e| &ch.apply(e) - e, 2);
        let expect = &ch.choi() - &Channel::identity(1).choi();
        assert!(diff.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn superoperator_matches_apply() {
        let ch = Channel::amplitude_damping(0.3);
        let s = ch.superoperator();
        let rho = {
            let m = CMat::from_fn(2, 2, |i, j| c64(0.3 * (i as f64 + 1.0), 0.2 * j as f64));
            let p = m.mul_adjoint(&m);
            let t = p.trace().re;
            p.scaled(c64(1.0 / t, 0.0))
        };
        // Row-major vectorization.
        let vec_rho = rho.to_cvec();
        let out_vec = s.mul_vec(&vec_rho);
        let direct = ch.apply(&rho);
        for i in 0..2 {
            for j in 0..2 {
                assert!(out_vec[i * 2 + j].approx_eq(direct.at(i, j), 1e-12));
            }
        }
    }

    #[test]
    fn after_unitary_composes() {
        let ch = Channel::bit_flip(0.1);
        let noisy_h = ch.after_unitary(&Gate::H.matrix());
        let mut rho0 = CMat::zeros(2, 2);
        rho0.set(0, 0, C64::ONE);
        // H|0⟩ = |+⟩, bit flip fixes |+⟩.
        let out = noisy_h.apply(&rho0);
        assert!(out.approx_eq(&plus_rho(), 1e-12));
    }

    #[test]
    fn then_composes_in_order() {
        // X then Z = ZX conjugation.
        let x = Channel::from_kraus("x", vec![Gate::X.matrix()]);
        let z = Channel::from_kraus("z", vec![Gate::Z.matrix()]);
        let both = x.then(&z);
        let mut rho = CMat::zeros(2, 2);
        rho.set(0, 1, C64::ONE);
        rho.set(1, 0, C64::ONE);
        rho.set(0, 0, C64::ONE);
        rho.set(1, 1, C64::ONE);
        let direct = {
            let zx = Gate::Z.matrix().mul_mat(&Gate::X.matrix());
            zx.mul_mat(&rho).mul_adjoint(&zx)
        };
        assert!(both.apply(&rho).approx_eq(&direct, 1e-12));
    }

    #[test]
    #[should_panic(expected = "K†K")]
    fn from_kraus_validates_completeness() {
        let _ = Channel::from_kraus("bad", vec![CMat::identity(2).scaled(c64(0.5, 0.0))]);
    }
}
