//! Device models: coupling maps plus per-qubit / per-edge calibration.
//!
//! The paper's §7.2 experiments ran on the IBM Boeblingen 20-qubit machine
//! (coupling map in Fig. 15) with a noise model constructed from IBM's
//! public calibration data. Real calibration feeds are not available here,
//! so the presets below pair the **published coupling maps** with
//! **synthetic calibration tables** in the realistic range for devices of
//! that generation (1q gate error ≈ 4×10⁻⁴–7×10⁻⁴, 2q ≈ 0.9–2.6×10⁻²,
//! readout ≈ 1.7–3.5×10⁻²), deliberately non-uniform across qubits. The
//! experiment's claims are relational (bounds dominate and rank-order the
//! measured errors), and both sides of the comparison consume this same
//! model — see DESIGN.md §3.

use crate::Channel;
use gleipnir_circuit::{CouplingMap, Gate, Qubit};
use std::collections::BTreeMap;

/// A quantum device: coupling map + calibration.
///
/// # Examples
///
/// ```
/// use gleipnir_noise::DeviceModel;
///
/// let dev = DeviceModel::boeblingen20();
/// assert_eq!(dev.coupling().n_qubits(), 20);
/// assert!(dev.coupling().are_adjacent(0, 1));
/// assert!(dev.q2_error(0, 1).unwrap() > dev.q2_error(2, 3).unwrap());
/// ```
#[derive(Clone, Debug)]
pub struct DeviceModel {
    name: String,
    coupling: CouplingMap,
    q1_error: Vec<f64>,
    q2_error: BTreeMap<(usize, usize), f64>,
    readout_error: Vec<f64>,
}

impl DeviceModel {
    /// Builds a device model.
    ///
    /// # Panics
    ///
    /// Panics if the calibration vectors don't match the coupling map size,
    /// or an error entry references a non-edge.
    pub fn new(
        name: impl Into<String>,
        coupling: CouplingMap,
        q1_error: Vec<f64>,
        q2_error: Vec<((usize, usize), f64)>,
        readout_error: Vec<f64>,
    ) -> Self {
        let n = coupling.n_qubits();
        assert_eq!(q1_error.len(), n, "q1 calibration size mismatch");
        assert_eq!(readout_error.len(), n, "readout calibration size mismatch");
        let mut map = BTreeMap::new();
        for ((a, b), e) in q2_error {
            assert!(
                coupling.are_adjacent(a, b),
                "calibrated pair ({a},{b}) is not an edge"
            );
            map.insert((a.min(b), a.max(b)), e);
        }
        for (a, b) in coupling.edges() {
            assert!(
                map.contains_key(&(a, b)),
                "edge ({a},{b}) missing 2q calibration"
            );
        }
        DeviceModel {
            name: name.into(),
            coupling,
            q1_error,
            q2_error: map,
            readout_error,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coupling map.
    pub fn coupling(&self) -> &CouplingMap {
        &self.coupling
    }

    /// 1-qubit gate error rate of physical qubit `q`.
    pub fn q1_error(&self, q: usize) -> f64 {
        self.q1_error[q]
    }

    /// 2-qubit gate error rate of the edge `{a, b}`, if coupled.
    pub fn q2_error(&self, a: usize, b: usize) -> Option<f64> {
        self.q2_error.get(&(a.min(b), a.max(b))).copied()
    }

    /// Readout (measurement bit-flip) error of physical qubit `q`.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error[q]
    }

    /// The noise channel following a gate on the given **physical** qubits:
    /// depolarizing with the calibrated rate.
    ///
    /// # Panics
    ///
    /// Panics if a 2-qubit gate is applied across a non-edge (programs must
    /// be routed first; see [`gleipnir_circuit::route`]).
    pub fn channel_for(&self, gate: &Gate, qubits: &[Qubit]) -> Option<Channel> {
        match gate.arity() {
            1 => Some(Channel::depolarizing(self.q1_error[qubits[0].0])),
            _ => {
                let (a, b) = (qubits[0].0, qubits[1].0);
                let e = self.q2_error(a, b).unwrap_or_else(|| {
                    panic!("2-qubit gate on uncoupled pair ({a},{b}); route the program first")
                });
                Some(Channel::depolarizing2(e))
            }
        }
    }

    /// Applies per-qubit readout confusion to a measured distribution over
    /// the listed qubits (`probs.len() == 2^qubits.len()`, MSB-first).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn apply_readout(&self, probs: &[f64], qubits: &[usize]) -> Vec<f64> {
        let k = qubits.len();
        assert_eq!(probs.len(), 1 << k, "distribution length mismatch");
        let mut p = probs.to_vec();
        for (pos, &q) in qubits.iter().enumerate() {
            let r = self.readout_error[q];
            let sh = k - 1 - pos;
            let mut next = vec![0.0; p.len()];
            for (idx, &val) in p.iter().enumerate() {
                let flipped = idx ^ (1 << sh);
                next[idx] += val * (1.0 - r);
                next[flipped] += val * r;
            }
            p = next;
        }
        p
    }

    /// A sound upper bound on the statistical distance added by readout
    /// confusion on the listed qubits: `Σ_q r_q` (union bound).
    pub fn readout_error_bound(&self, qubits: &[usize]) -> f64 {
        qubits.iter().map(|&q| self.readout_error[q]).sum()
    }

    /// The IBM Boeblingen 20-qubit device (paper Fig. 15, left) with
    /// synthetic calibration (see module docs).
    pub fn boeblingen20() -> Self {
        let edges = [
            (0usize, 1usize),
            (1, 2),
            (2, 3),
            (3, 4),
            (1, 6),
            (3, 8),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (5, 10),
            (7, 12),
            (9, 14),
            (10, 11),
            (11, 12),
            (12, 13),
            (13, 14),
            (11, 16),
            (13, 18),
            (15, 16),
            (16, 17),
            (17, 18),
            (18, 19),
        ];
        let coupling = CouplingMap::from_edges(20, &edges);
        let q1 = vec![
            4.2e-4, 5.1e-4, 3.8e-4, 4.9e-4, 6.0e-4, 5.5e-4, 4.4e-4, 3.9e-4, 5.8e-4, 7.2e-4, 4.1e-4,
            5.3e-4, 4.7e-4, 3.6e-4, 6.4e-4, 5.0e-4, 4.3e-4, 5.6e-4, 4.8e-4, 6.8e-4,
        ];
        let q2 = vec![
            ((0, 1), 2.6e-2),
            ((1, 2), 1.4e-2),
            ((2, 3), 0.9e-2),
            ((3, 4), 1.9e-2),
            ((1, 6), 1.6e-2),
            ((3, 8), 1.2e-2),
            ((5, 6), 1.1e-2),
            ((6, 7), 1.3e-2),
            ((7, 8), 1.0e-2),
            ((8, 9), 1.7e-2),
            ((5, 10), 1.5e-2),
            ((7, 12), 1.2e-2),
            ((9, 14), 2.1e-2),
            ((10, 11), 1.0e-2),
            ((11, 12), 0.9e-2),
            ((12, 13), 1.1e-2),
            ((13, 14), 1.6e-2),
            ((11, 16), 1.4e-2),
            ((13, 18), 1.3e-2),
            ((15, 16), 1.2e-2),
            ((16, 17), 1.0e-2),
            ((17, 18), 1.5e-2),
            ((18, 19), 1.8e-2),
        ];
        let readout = vec![
            3.2e-2, 2.1e-2, 1.8e-2, 2.4e-2, 2.9e-2, 2.6e-2, 2.2e-2, 1.9e-2, 2.7e-2, 3.5e-2, 2.0e-2,
            2.3e-2, 2.1e-2, 1.7e-2, 3.0e-2, 2.4e-2, 2.0e-2, 2.6e-2, 2.2e-2, 3.3e-2,
        ];
        Self::new(
            "ibm-boeblingen (synthetic calibration)",
            coupling,
            q1,
            q2,
            readout,
        )
    }

    /// The IBM Lima 5-qubit device (paper Fig. 15, right — T topology) with
    /// synthetic calibration.
    pub fn lima5() -> Self {
        let coupling = CouplingMap::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        let q1 = vec![3.1e-4, 2.8e-4, 4.0e-4, 3.5e-4, 5.2e-4];
        let q2 = vec![
            ((0, 1), 0.9e-2),
            ((1, 2), 1.3e-2),
            ((1, 3), 1.1e-2),
            ((3, 4), 1.6e-2),
        ];
        let readout = vec![2.0e-2, 1.5e-2, 2.8e-2, 2.2e-2, 3.1e-2];
        Self::new(
            "ibm-lima (synthetic calibration)",
            coupling,
            q1,
            q2,
            readout,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boeblingen_topology_matches_figure() {
        let dev = DeviceModel::boeblingen20();
        let c = dev.coupling();
        assert_eq!(c.n_qubits(), 20);
        assert_eq!(c.edges().len(), 23);
        // Spot checks from Fig. 15.
        assert!(c.are_adjacent(0, 1));
        assert!(c.are_adjacent(1, 6));
        assert!(c.are_adjacent(9, 14));
        assert!(!c.are_adjacent(0, 5));
        assert!(!c.are_adjacent(4, 9));
        assert!(c.is_connected());
    }

    #[test]
    fn lima_topology_is_t_shaped() {
        let dev = DeviceModel::lima5();
        let c = dev.coupling();
        assert_eq!(c.edges().len(), 4);
        assert!(c.are_adjacent(1, 3));
        assert!(!c.are_adjacent(2, 3));
        assert!(c.is_connected());
    }

    #[test]
    fn calibration_lookup() {
        let dev = DeviceModel::boeblingen20();
        assert!(dev.q2_error(1, 0).is_some()); // order-insensitive
        assert!(dev.q2_error(0, 2).is_none());
        assert!(dev.q1_error(0) > 0.0);
        assert!(dev.readout_error(19) > 0.0);
    }

    #[test]
    fn channel_for_uses_calibration() {
        let dev = DeviceModel::lima5();
        let ch = dev.channel_for(&Gate::Cnot, &[Qubit(3), Qubit(4)]).unwrap();
        assert_eq!(ch.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "uncoupled")]
    fn channel_for_rejects_uncoupled_pair() {
        let dev = DeviceModel::lima5();
        let _ = dev.channel_for(&Gate::Cnot, &[Qubit(0), Qubit(4)]);
    }

    #[test]
    fn readout_confusion_preserves_normalization() {
        let dev = DeviceModel::lima5();
        let probs = vec![0.5, 0.0, 0.0, 0.5];
        let out = dev.apply_readout(&probs, &[0, 1]);
        let total: f64 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Mass leaked off the ideal support.
        assert!(out[1] > 0.0 && out[2] > 0.0);
    }

    #[test]
    fn readout_bound_dominates_observed_shift() {
        let dev = DeviceModel::lima5();
        let probs = vec![1.0, 0.0, 0.0, 0.0];
        let out = dev.apply_readout(&probs, &[0, 1]);
        let tv: f64 = 0.5
            * probs
                .iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(tv <= dev.readout_error_bound(&[0, 1]) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "missing 2q calibration")]
    fn constructor_requires_full_edge_calibration() {
        let coupling = CouplingMap::from_edges(2, &[(0, 1)]);
        let _ = DeviceModel::new("bad", coupling, vec![1e-4; 2], vec![], vec![1e-2; 2]);
    }
}
