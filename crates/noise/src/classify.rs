//! Channel classification and certified closed-form diamond bounds — the
//! analytic half of the tiered bound engine.
//!
//! Many noise channels met in practice are **Pauli-type**: every Kraus
//! operator is (numerically) a scalar multiple of a Pauli word. For those,
//! the diamond distance to the identity admits a closed-form *upper bound*
//! that is orders of magnitude cheaper than the interior-point SDP the
//! general case needs — and, crucially, it is *certified*: the detection
//! residuals are folded into the bound, so even a channel that is only
//! approximately Pauli gets a provably sound (slightly looser) answer.
//!
//! ## The certified closed form
//!
//! Write each Kraus operator as `Kᵢ = cᵢσᵢ + Rᵢ` with `σᵢ` the best-fit
//! Pauli word, `cᵢ = tr(σᵢ†Kᵢ)/d`, and residual `rᵢ = ‖Rᵢ‖_F`. Let
//! `p_σ = Σ_{i: σᵢ=σ} |cᵢ|²` and `s = Σᵢ |cᵢ|²`. Then
//!
//! ```text
//! ½‖Φ − id‖⋄  ≤  Σ_{σ≠I} p_σ  +  ½|1 − s|  +  Σᵢ (|cᵢ|·rᵢ + ½rᵢ²)
//! ```
//!
//! *Proof sketch* (spelled out in `docs/SOUNDNESS.md`): with
//! `Φ_P(ρ) = Σᵢ |cᵢ|² σᵢρσᵢ`, the triangle inequality gives
//! `½‖Φ − id‖⋄ ≤ ½‖Φ_P − id‖⋄ + ½‖Φ − Φ_P‖⋄`. The first term expands to a
//! convex-ish combination `Σ_{σ≠I} p_σ (σ·σ†) − (1 − p_I)·id` whose diamond
//! norm is at most `Σ_{σ≠I} p_σ + |1 − p_I| ≤ 2Σ_{σ≠I} p_σ + |1 − s|`,
//! halving to the first two terms. The second term is a sum of maps
//! `ρ ↦ AρB†` with `{A, B} ⊆ {cᵢσᵢ, Rᵢ}`; each satisfies
//! `‖AρB†‖₁ ≤ ‖A‖_∞‖B‖_∞‖ρ‖₁` (also under `⊗ id`), giving
//! `½‖Φ − Φ_P‖⋄ ≤ ½Σᵢ (2|cᵢ|rᵢ + rᵢ²)` via `‖σᵢ‖_∞ = 1` and
//! `‖Rᵢ‖_∞ ≤ rᵢ`.
//!
//! For a noisy gate `Ũ = Φ ∘ U` the analysis needs `½‖Ũ − U‖⋄`; since the
//! diamond norm is invariant under composition with a unitary,
//! `‖(Φ − id) ∘ U‖⋄ = ‖Φ − id‖⋄`, so [`classify_residual`] factors the
//! ideal unitary out (`Bᵢ = KᵢU†`) and classifies the residual channel.
//!
//! Because the `(ρ̂, δ)`-constrained diamond norm never exceeds the
//! unconstrained one, the closed form is a sound substitute for *any*
//! input-constrained per-gate SDP — it ignores the state and is therefore
//! looser exactly where state-awareness pays (e.g. bit flips on `|+⟩`),
//! but never unsound. The tier dispatch in `gleipnir-core` makes that
//! trade-off opt-in.
//!
//! Detection operates on the exact `f64` bits of the Kraus operators —
//! the same representation the engine's content-addressed cache keys store
//! — so a channel classifies identically whether it came from a live
//! [`Channel`] or was re-parsed from a persisted key.

use crate::Channel;
use gleipnir_linalg::{CMat, C64};

/// Per-Kraus Frobenius residual above which a channel is *not* considered
/// Pauli-type. The residuals are folded into the certified bound either
/// way; this cutoff only keeps the closed form from answering channels
/// where it would be uselessly loose.
const PAULI_RESIDUAL_TOL: f64 = 1e-8;

/// Tolerance for the subclass tests (equal depolarizing weights, unitality).
const SUBCLASS_TOL: f64 = 1e-9;

/// The analytic profile of a Pauli-type channel: everything the closed-form
/// diamond bound needs.
#[derive(Clone, Debug, PartialEq)]
pub struct PauliProfile {
    /// Total weight on the identity word, `p_I`.
    pub identity_weight: f64,
    /// Total weight off the identity, `Σ_{σ≠I} p_σ`.
    pub error_weight: f64,
    /// Certified slack covering detection residuals and any trace-
    /// preservation defect (the `½|1−s| + Σ(|c|r + ½r²)` terms).
    pub slack: f64,
}

impl PauliProfile {
    /// The certified closed-form upper bound on `½‖Φ − id‖⋄`.
    pub fn certified_bound(&self) -> f64 {
        self.error_weight + self.slack
    }
}

/// What [`classify`] detected, ordered from most to least structured.
///
/// The three Pauli-type classes carry a [`PauliProfile`] whose
/// [`PauliProfile::certified_bound`] is a sound closed-form substitute for
/// the diamond-norm SDP; `Unital` and `General` have no closed form and
/// fall through to the solver tiers.
#[derive(Clone, Debug, PartialEq)]
pub enum ChannelClass {
    /// All non-identity weight sits on diagonal Pauli words (`Z`-type):
    /// phase flips and their tensor products.
    Dephasing(PauliProfile),
    /// Equal weight on every non-identity Pauli word.
    Depolarizing(PauliProfile),
    /// A general Pauli mixture (e.g. bit flips, correlated Pauli noise).
    Pauli(PauliProfile),
    /// Not a Pauli mixture, but unital (`Φ(I) = I`, e.g. phase damping).
    Unital,
    /// No detected structure (e.g. amplitude damping).
    General,
}

impl ChannelClass {
    /// A stable machine-readable class name (used in reports and metrics).
    pub fn name(&self) -> &'static str {
        match self {
            ChannelClass::Dephasing(_) => "dephasing",
            ChannelClass::Depolarizing(_) => "depolarizing",
            ChannelClass::Pauli(_) => "pauli",
            ChannelClass::Unital => "unital",
            ChannelClass::General => "general",
        }
    }

    /// The Pauli profile, for the three Pauli-type classes.
    pub fn pauli_profile(&self) -> Option<&PauliProfile> {
        match self {
            ChannelClass::Dephasing(p) | ChannelClass::Depolarizing(p) | ChannelClass::Pauli(p) => {
                Some(p)
            }
            _ => None,
        }
    }

    /// The certified closed-form upper bound on `½‖Φ − id‖⋄`, when the
    /// class admits one (`None` for `Unital` / `General`).
    pub fn closed_form_diamond_bound(&self) -> Option<f64> {
        self.pauli_profile().map(PauliProfile::certified_bound)
    }
}

/// One Pauli word of the `d ∈ {2, 4}` basis, with enough metadata for the
/// subclass tests.
struct PauliWord {
    matrix: CMat,
    /// Identity word (`I` or `I⊗I`)?
    is_identity: bool,
    /// Diagonal in the computational basis (`I`/`Z` tensor words)?
    is_diagonal: bool,
}

fn single_paulis() -> [(CMat, bool, bool); 4] {
    use gleipnir_linalg::c64;
    let i2 = CMat::identity(2);
    let x = CMat::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]]);
    let y = CMat::from_rows(&[vec![C64::ZERO, c64(0.0, -1.0)], vec![C64::I, C64::ZERO]]);
    let z = CMat::from_rows(&[vec![C64::ONE, C64::ZERO], vec![C64::ZERO, c64(-1.0, 0.0)]]);
    [
        (i2, true, true),
        (x, false, false),
        (y, false, false),
        (z, false, true),
    ]
}

/// The Pauli word basis for dimension `d ∈ {2, 4}`; `None` otherwise.
fn pauli_basis(d: usize) -> Option<Vec<PauliWord>> {
    let singles = single_paulis();
    match d {
        2 => Some(
            singles
                .into_iter()
                .map(|(matrix, is_identity, is_diagonal)| PauliWord {
                    matrix,
                    is_identity,
                    is_diagonal,
                })
                .collect(),
        ),
        4 => {
            let singles2 = single_paulis();
            let mut words = Vec::with_capacity(16);
            for (a, ai, ad) in &singles {
                for (b, bi, bd) in &singles2 {
                    words.push(PauliWord {
                        matrix: a.kron(b),
                        is_identity: *ai && *bi,
                        is_diagonal: *ad && *bd,
                    });
                }
            }
            Some(words)
        }
        _ => None,
    }
}

/// `tr(A†B)` — the Frobenius inner product.
fn inner(a: &CMat, b: &CMat) -> C64 {
    let mut acc = C64::ZERO;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        acc += x.conj() * *y;
    }
    acc
}

/// Classifies a channel given by raw Kraus operators (not necessarily a
/// validated [`Channel`] — the residual channels of [`classify_residual`]
/// arrive here too). See the module docs for the detection contract.
pub fn classify_kraus(kraus: &[CMat]) -> ChannelClass {
    let Some(first) = kraus.first() else {
        return ChannelClass::General;
    };
    let d = first.rows();
    let Some(basis) = pauli_basis(d) else {
        return ChannelClass::General;
    };
    if kraus
        .iter()
        .any(|k| k.rows() != d || k.cols() != d || k.as_slice().iter().any(|z| !z.is_finite()))
    {
        return ChannelClass::General;
    }

    let mut weights = vec![0.0f64; basis.len()];
    let mut picked: Vec<usize> = Vec::with_capacity(kraus.len());
    let mut slack = 0.0f64;
    let mut pauli_like = true;
    for k in kraus {
        // Best-fit Pauli word by Frobenius projection (the words are
        // orthogonal with ‖σ‖_F² = d, so the largest |c| wins).
        let (best, c) = basis
            .iter()
            .enumerate()
            .map(|(idx, w)| (idx, inner(&w.matrix, k).scale(1.0 / d as f64)))
            .max_by(|(_, a), (_, b)| a.norm_sqr().total_cmp(&b.norm_sqr()))
            .expect("basis is non-empty");
        let mut residual = k.clone();
        residual.axpy(-c, &basis[best].matrix);
        let r = residual.frobenius_norm();
        if r > PAULI_RESIDUAL_TOL {
            pauli_like = false;
            break;
        }
        weights[best] += c.norm_sqr();
        picked.push(best);
        slack += c.abs() * r + 0.5 * r * r;
    }

    if !pauli_like {
        // Unital fallback: Φ(I) = Σ KᵢKᵢ† = I.
        let mut sum = CMat::zeros(d, d);
        for k in kraus {
            sum = &sum + &k.mul_adjoint(k);
        }
        return if sum.approx_eq(&CMat::identity(d), SUBCLASS_TOL) {
            ChannelClass::Unital
        } else {
            ChannelClass::General
        };
    }

    let s: f64 = weights.iter().sum();
    slack += 0.5 * (1.0 - s).abs();
    let identity_weight: f64 = basis
        .iter()
        .zip(&weights)
        .filter(|(w, _)| w.is_identity)
        .map(|(_, p)| *p)
        .sum();
    let error_weight = weights
        .iter()
        .zip(&basis)
        .filter(|(_, w)| !w.is_identity)
        .map(|(p, _)| *p)
        .sum::<f64>();
    let profile = PauliProfile {
        identity_weight,
        error_weight,
        slack,
    };

    // Subclasses. Dephasing: every picked word is diagonal (I/Z tensor
    // words only). Depolarizing: equal weight on every non-identity word.
    if picked.iter().all(|&i| basis[i].is_diagonal) && error_weight > 0.0 {
        return ChannelClass::Dephasing(profile);
    }
    let off_identity: Vec<f64> = basis
        .iter()
        .zip(&weights)
        .filter(|(w, _)| !w.is_identity)
        .map(|(_, p)| *p)
        .collect();
    let uniform = off_identity
        .iter()
        .all(|&p| (p - off_identity[0]).abs() <= SUBCLASS_TOL);
    if uniform && off_identity[0] > SUBCLASS_TOL {
        return ChannelClass::Depolarizing(profile);
    }
    ChannelClass::Pauli(profile)
}

/// Classifies a [`Channel`] (see the module docs).
///
/// # Examples
///
/// ```
/// use gleipnir_noise::{classify, Channel, ChannelClass};
///
/// let class = classify(&Channel::depolarizing(0.12));
/// assert!(matches!(class, ChannelClass::Depolarizing(_)));
/// // The closed form is a certified upper bound on ½‖Φ − id‖⋄ — for a
/// // Pauli mixture it equals the total non-identity weight (here p).
/// let bound = class.closed_form_diamond_bound().unwrap();
/// assert!((bound - 0.12).abs() < 1e-9);
///
/// // Amplitude damping has no Pauli structure: no closed form.
/// let damp = classify(&Channel::amplitude_damping(0.3));
/// assert!(damp.closed_form_diamond_bound().is_none());
/// ```
pub fn classify(channel: &Channel) -> ChannelClass {
    classify_kraus(channel.kraus())
}

/// Classifies the *residual* channel of a noisy gate: given the ideal
/// unitary `U` and the Kraus operators `Kᵢ` of `Ũ = Φ ∘ U`, classifies
/// `{KᵢU†}` (= the Kraus set of `Φ`). By unitary invariance of the diamond
/// norm, a closed-form bound on the residual is a bound on `½‖Ũ − U‖⋄`.
///
/// Returns [`ChannelClass::General`] when `ideal` is not (numerically)
/// unitary or the dimensions disagree — the soundness argument needs a
/// genuine unitary to factor out.
pub fn classify_residual(ideal: &CMat, noisy_kraus: &[CMat]) -> ChannelClass {
    if !ideal.is_square()
        || !ideal.is_unitary(1e-9)
        || noisy_kraus.iter().any(|k| k.rows() != ideal.rows())
    {
        return ChannelClass::General;
    }
    let residual: Vec<CMat> = noisy_kraus.iter().map(|k| k.mul_adjoint(ideal)).collect();
    classify_kraus(&residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::Gate;
    use gleipnir_linalg::c64;

    #[test]
    fn stock_channels_classify_as_expected() {
        assert!(matches!(
            classify(&Channel::bit_flip(0.1)),
            ChannelClass::Pauli(_)
        ));
        assert!(matches!(
            classify(&Channel::phase_flip(0.2)),
            ChannelClass::Dephasing(_)
        ));
        assert!(matches!(
            classify(&Channel::depolarizing(0.15)),
            ChannelClass::Depolarizing(_)
        ));
        assert!(matches!(
            classify(&Channel::depolarizing2(0.05)),
            ChannelClass::Depolarizing(_)
        ));
        assert!(matches!(
            classify(&Channel::bit_flip_first_of_two(0.1)),
            ChannelClass::Pauli(_)
        ));
        assert!(matches!(
            classify(&Channel::phase_damping(0.3)),
            ChannelClass::Unital
        ));
        assert!(matches!(
            classify(&Channel::amplitude_damping(0.3)),
            ChannelClass::General
        ));
        assert!(matches!(
            classify(&Channel::identity(1)),
            ChannelClass::Pauli(_) | ChannelClass::Dephasing(_)
        ));
    }

    #[test]
    fn closed_form_matches_known_pauli_values() {
        // For a Pauli mixture the bound is the non-identity weight (the
        // SDP-computed diamond distance for these channels — see
        // crates/core's diamond tests).
        for (ch, expect) in [
            (Channel::bit_flip(1e-3), 1e-3),
            (Channel::phase_flip(0.25), 0.25),
            (Channel::depolarizing(0.12), 0.12),
            (Channel::depolarizing2(0.07), 0.07),
            (Channel::bit_flip_first_of_two(2e-4), 2e-4),
        ] {
            let bound = classify(&ch)
                .closed_form_diamond_bound()
                .unwrap_or_else(|| panic!("{ch} should have a closed form"));
            assert!((bound - expect).abs() < 1e-9, "{ch}: {bound} vs {expect}");
        }
    }

    #[test]
    fn identity_channel_has_zero_error_weight() {
        let class = classify(&Channel::identity(1));
        let profile = class.pauli_profile().unwrap();
        assert!(profile.error_weight.abs() < 1e-12);
        assert!((profile.identity_weight - 1.0).abs() < 1e-12);
        assert!(class.closed_form_diamond_bound().unwrap() < 1e-12);
    }

    #[test]
    fn residual_classification_factors_out_the_unitary() {
        // Φ ∘ U is nothing like a Pauli channel as a whole, but its
        // residual against U is.
        for gate in [Gate::H, Gate::S, Gate::Ry(0.7)] {
            let noisy = Channel::bit_flip(0.05).after_unitary(&gate.matrix());
            let class = classify_residual(&gate.matrix(), noisy.kraus());
            let bound = class
                .closed_form_diamond_bound()
                .unwrap_or_else(|| panic!("{gate}: residual should be Pauli"));
            assert!((bound - 0.05).abs() < 1e-9, "{gate}: {bound}");
        }
        // Two-qubit version.
        let noisy = Channel::bit_flip_first_of_two(1e-3).after_unitary(&Gate::Cnot.matrix());
        let bound = classify_residual(&Gate::Cnot.matrix(), noisy.kraus())
            .closed_form_diamond_bound()
            .expect("residual is Pauli");
        assert!((bound - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn non_unitary_ideal_is_rejected() {
        let not_unitary = CMat::identity(2).scaled(c64(0.5, 0.0));
        let noisy = Channel::bit_flip(0.1);
        assert!(matches!(
            classify_residual(&not_unitary, noisy.kraus()),
            ChannelClass::General
        ));
    }

    #[test]
    fn near_pauli_perturbation_is_not_misclassified() {
        // A Kraus set nudged beyond the residual tolerance must not get a
        // closed form (the bound would be loose and the class a lie).
        let eps = 1e-4;
        let mut k0 = CMat::identity(2).scaled(c64((1.0f64 - 0.1).sqrt(), 0.0));
        k0.set(0, 1, c64(eps, 0.0));
        let k1 = {
            // Re-normalize so Σ K†K = I still holds approximately: use the
            // exact complement of k0.
            let mut complement = &CMat::identity(2) - &k0.adjoint_mul(&k0);
            // Cholesky-free square root for this nearly-diagonal 2×2: the
            // off-diagonal is O(eps), so classify sees a genuine non-Pauli.
            complement.set(0, 0, c64(complement.at(0, 0).re.max(0.0).sqrt(), 0.0));
            complement.set(1, 1, c64(complement.at(1, 1).re.max(0.0).sqrt(), 0.0));
            complement.set(0, 1, C64::ZERO);
            complement.set(1, 0, C64::ZERO);
            complement
        };
        let class = classify_kraus(&[k0, k1]);
        assert!(
            class.closed_form_diamond_bound().is_none(),
            "perturbed channel must not be Pauli-type, got {class:?}"
        );
    }

    #[test]
    fn detection_is_stable_under_bit_roundtrip() {
        // The engine's cache keys store Kraus operators as raw f64 bits;
        // classification must agree between the live matrices and the
        // bit-roundtripped ones.
        let ch = Channel::depolarizing(0.03).after_unitary(&Gate::H.matrix());
        let round_tripped: Vec<CMat> = ch
            .kraus()
            .iter()
            .map(|k| {
                CMat::from_fn(k.rows(), k.cols(), |i, j| {
                    let z = k.at(i, j);
                    c64(
                        f64::from_bits(z.re.to_bits()),
                        f64::from_bits(z.im.to_bits()),
                    )
                })
            })
            .collect();
        let live = classify_residual(&Gate::H.matrix(), ch.kraus());
        let parsed = classify_residual(&Gate::H.matrix(), &round_tripped);
        assert_eq!(live, parsed);
        assert!(matches!(parsed, ChannelClass::Depolarizing(_)));
    }

    #[test]
    fn profile_slack_is_tiny_for_exact_constructions() {
        let class = classify(&Channel::depolarizing(0.2));
        let p = class.pauli_profile().unwrap();
        assert!(p.slack < 1e-9, "slack {} should be negligible", p.slack);
        assert!((p.identity_weight + p.error_weight - 1.0).abs() < 1e-12);
    }
}
