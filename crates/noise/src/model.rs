//! Gate-level noise models: which noise channel follows each gate.

use crate::{Channel, DeviceModel};
use gleipnir_circuit::{Gate, Qubit};

/// A noise model `ω`: assigns each gate application its trailing noise
/// channel, defining the noisy program `P̃_ω` of §2.3.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::{Gate, Qubit};
/// use gleipnir_noise::NoiseModel;
///
/// // The paper's §7.1 model: every gate suffers a bit flip with p = 1e-4.
/// let nm = NoiseModel::uniform_bit_flip(1e-4);
/// let ch = nm.channel_for(&Gate::H, &[Qubit(0)]).expect("noisy");
/// assert_eq!(ch.arity(), 1);
/// ```
#[derive(Clone, Debug)]
pub enum NoiseModel {
    /// No noise: `P̃_ω = P`.
    Noiseless,
    /// The paper's §7.1 evaluation model: every 1-qubit gate is followed by
    /// a bit flip with probability `p`; every 2-qubit gate by a bit flip on
    /// its **first** operand qubit.
    UniformBitFlip {
        /// The flip probability.
        p: f64,
    },
    /// Uniform depolarizing noise with separate 1- and 2-qubit rates.
    UniformDepolarizing {
        /// 1-qubit gate error rate.
        p1: f64,
        /// 2-qubit gate error rate.
        p2: f64,
    },
    /// Uniform amplitude damping: every gate is followed by decay with
    /// probability `γ` on its (first) operand qubit. Unlike the bit-flip
    /// and depolarizing models this channel is **not** a Pauli mixture —
    /// it is the stock model that exercises the SDP tiers (warm-started
    /// and cold interior-point solves) rather than the closed form.
    UniformAmplitudeDamping {
        /// The decay probability.
        gamma: f64,
    },
    /// Device-calibrated noise (per-qubit / per-edge rates).
    Device(DeviceModel),
}

impl NoiseModel {
    /// The paper's §7.1 model with flip probability `p`.
    pub fn uniform_bit_flip(p: f64) -> Self {
        NoiseModel::UniformBitFlip { p }
    }

    /// Uniform depolarizing noise.
    pub fn uniform_depolarizing(p1: f64, p2: f64) -> Self {
        NoiseModel::UniformDepolarizing { p1, p2 }
    }

    /// Uniform amplitude damping with decay probability `gamma`.
    pub fn uniform_amplitude_damping(gamma: f64) -> Self {
        NoiseModel::UniformAmplitudeDamping { gamma }
    }

    /// The noise channel following the given gate application, on the
    /// gate's own qubits. `None` means the gate is noiseless.
    pub fn channel_for(&self, gate: &Gate, qubits: &[Qubit]) -> Option<Channel> {
        match self {
            NoiseModel::Noiseless => None,
            NoiseModel::UniformBitFlip { p } => Some(match gate.arity() {
                1 => Channel::bit_flip(*p),
                _ => Channel::bit_flip_first_of_two(*p),
            }),
            NoiseModel::UniformDepolarizing { p1, p2 } => Some(match gate.arity() {
                1 => Channel::depolarizing(*p1),
                _ => Channel::depolarizing2(*p2),
            }),
            NoiseModel::UniformAmplitudeDamping { gamma } => Some(match gate.arity() {
                1 => Channel::amplitude_damping(*gamma),
                _ => Channel::amplitude_damping_first_of_two(*gamma),
            }),
            NoiseModel::Device(dev) => dev.channel_for(gate, qubits),
        }
    }

    /// The full noisy gate `Ũ_ω = Φ ∘ U` as a channel on the gate's qubits.
    pub fn noisy_gate(&self, gate: &Gate, qubits: &[Qubit]) -> Channel {
        let u = gate.matrix();
        match self.channel_for(gate, qubits) {
            None => Channel::from_kraus(format!("{gate}"), vec![u]),
            Some(ch) => ch.after_unitary(&u),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_linalg::CMat;

    #[test]
    fn noiseless_has_no_channel() {
        assert!(NoiseModel::Noiseless
            .channel_for(&Gate::H, &[Qubit(0)])
            .is_none());
    }

    #[test]
    fn bit_flip_model_matches_paper() {
        let nm = NoiseModel::uniform_bit_flip(1e-4);
        let one = nm.channel_for(&Gate::H, &[Qubit(3)]).unwrap();
        assert_eq!(one.arity(), 1);
        let two = nm.channel_for(&Gate::Cnot, &[Qubit(0), Qubit(1)]).unwrap();
        assert_eq!(two.arity(), 2);
        // The 2q channel flips the first (MSB) qubit.
        let mut rho = CMat::zeros(4, 4);
        rho.set(0, 0, gleipnir_linalg::C64::ONE); // |00⟩
        let out = two.apply(&rho);
        assert!((out.at(0, 0).re - (1.0 - 1e-4)).abs() < 1e-12);
        assert!((out.at(2, 2).re - 1e-4).abs() < 1e-12); // |10⟩
    }

    #[test]
    fn noisy_gate_is_cptp() {
        let nm = NoiseModel::uniform_depolarizing(1e-3, 1e-2);
        for (g, qs) in [
            (Gate::H, vec![Qubit(0)]),
            (Gate::Cnot, vec![Qubit(0), Qubit(1)]),
        ] {
            let ch = nm.noisy_gate(&g, &qs);
            let mut sum = CMat::zeros(ch.dim(), ch.dim());
            for k in ch.kraus() {
                sum = &sum + &k.adjoint_mul(k);
            }
            assert!(sum.approx_eq(&CMat::identity(ch.dim()), 1e-9));
        }
    }

    #[test]
    fn noiseless_noisy_gate_is_the_unitary() {
        let ch = NoiseModel::Noiseless.noisy_gate(&Gate::X, &[Qubit(0)]);
        assert_eq!(ch.kraus().len(), 1);
        assert!(ch.kraus()[0].approx_eq(&Gate::X.matrix(), 0.0));
    }
}
