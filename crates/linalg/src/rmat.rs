//! Dense real matrices (row-major), used primarily by the SDP solver.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense real matrix in row-major order.
///
/// The semidefinite-programming solver works over real symmetric blocks
/// (complex Hermitian data is embedded via
/// [`crate::embed::herm_to_real_sym`]), so this type carries the real-only
/// factorizations: Cholesky, triangular solves, and symmetric
/// eigendecomposition (see [`crate::eigh::sym_eig`]).
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::RMat;
///
/// let a = RMat::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let l = a.cholesky().expect("SPD");
/// assert!(l.mul_transpose_self().approx_eq(&a, 1e-12));
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct RMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMat {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in RMat::from_rows");
            data.extend_from_slice(row);
        }
        RMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix whose entries come from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        RMat { rows, cols, data }
    }

    /// Builds a diagonal matrix.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor for hot loops.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul_mat(&self, rhs: &RMat) -> RMat {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let mut out = RMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = rhs.row(k);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `self · selfᵀ`.
    pub fn mul_transpose_self(&self) -> RMat {
        let mut out = RMat::zeros(self.rows, self.rows);
        for i in 0..self.rows {
            for j in i..self.rows {
                let s: f64 = self
                    .row(i)
                    .iter()
                    .zip(self.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                out.set(i, j, s);
                out.set(j, i, s);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> RMat {
        RMat::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// Trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self.at(i, i)).sum()
    }

    /// `tr(self · rhs)` without forming the product.
    pub fn trace_mul(&self, rhs: &RMat) -> f64 {
        assert_eq!(self.cols, rhs.rows, "trace_mul dimension mismatch");
        assert_eq!(self.rows, rhs.cols, "trace_mul dimension mismatch");
        let mut acc = 0.0;
        for i in 0..self.rows {
            for k in 0..self.cols {
                acc += self.at(i, k) * rhs.at(k, i);
            }
        }
        acc
    }

    /// Scales every entry, returning a new matrix.
    pub fn scaled(&self, s: f64) -> RMat {
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// In-place `self += s·other`.
    pub fn axpy(&mut self, s: f64, other: &RMat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Symmetrization `(self + selfᵀ)/2`.
    pub fn symmetrize(&self) -> RMat {
        assert!(self.is_square(), "symmetrize of non-square matrix");
        RMat::from_fn(self.rows, self.cols, |i, j| {
            0.5 * (self.at(i, j) + self.at(j, i))
        })
    }

    /// Whether all entries match `other` within `tol`.
    pub fn approx_eq(&self, other: &RMat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Cholesky factorization of a symmetric positive-definite matrix.
    ///
    /// Returns the lower-triangular `L` with `L·Lᵀ = self`, or `None` when a
    /// non-positive pivot is encountered (the matrix is not numerically
    /// positive definite).
    pub fn cholesky(&self) -> Option<RMat> {
        assert!(self.is_square(), "cholesky of non-square matrix");
        let n = self.rows;
        let mut l = RMat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self.at(i, j);
                for k in 0..j {
                    s -= l.at(i, k) * l.at(j, k);
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return None;
                    }
                    l.set(i, i, s.sqrt());
                } else {
                    l.set(i, j, s / l.at(j, j));
                }
            }
        }
        Some(l)
    }

    /// Solves `L·x = b` for lower-triangular `self` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or a zero diagonal.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert!(self.is_square() && self.rows == b.len());
        let n = self.rows;
        let mut x = b.to_vec();
        for i in 0..n {
            let mut s = x[i];
            for k in 0..i {
                s -= self.at(i, k) * x[k];
            }
            x[i] = s / self.at(i, i);
        }
        x
    }

    /// Solves `Lᵀ·x = b` for lower-triangular `self` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or a zero diagonal.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert!(self.is_square() && self.rows == b.len());
        let n = self.rows;
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in i + 1..n {
                s -= self.at(k, i) * x[k];
            }
            x[i] = s / self.at(i, i);
        }
        x
    }

    /// Solves `self·x = b` given that `self` is SPD, via Cholesky.
    ///
    /// Returns `None` when the Cholesky factorization fails.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        Some(l.solve_lower_transpose(&l.solve_lower(b)))
    }

    /// Solves `L·X = B` columnwise for lower-triangular `self`.
    pub fn solve_lower_mat(&self, b: &RMat) -> RMat {
        assert!(self.is_square() && self.rows == b.rows);
        let n = self.rows;
        let mut x = b.clone();
        for i in 0..n {
            for k in 0..i {
                let lik = self.at(i, k);
                if lik == 0.0 {
                    continue;
                }
                // x.row(i) -= lik * x.row(k), done via split borrow
                let (head, tail) = x.data.split_at_mut(i * x.cols);
                let xi = &mut tail[..x.cols];
                let xk = &head[k * x.cols..(k + 1) * x.cols];
                for (a, b) in xi.iter_mut().zip(xk) {
                    *a -= lik * b;
                }
            }
            let d = self.at(i, i);
            for v in x.row_mut(i) {
                *v /= d;
            }
        }
        x
    }

    /// Solves `Lᵀ·X = B` columnwise for lower-triangular `self`.
    pub fn solve_lower_transpose_mat(&self, b: &RMat) -> RMat {
        assert!(self.is_square() && self.rows == b.rows);
        let n = self.rows;
        let mut x = b.clone();
        for i in (0..n).rev() {
            for k in i + 1..n {
                let lki = self.at(k, i);
                if lki == 0.0 {
                    continue;
                }
                let (head, tail) = x.data.split_at_mut(k * x.cols);
                let xi = &mut head[i * x.cols..(i + 1) * x.cols];
                let xk = &tail[..x.cols];
                for (a, b) in xi.iter_mut().zip(xk) {
                    *a -= lki * b;
                }
            }
            let d = self.at(i, i);
            for v in x.row_mut(i) {
                *v /= d;
            }
        }
        x
    }

    /// Inverse of a lower-triangular matrix.
    pub fn invert_lower(&self) -> RMat {
        self.solve_lower_mat(&RMat::identity(self.rows))
    }
}

impl fmt::Debug for RMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(10) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(10) {
                write!(f, "{:>12.5}", self.at(i, j))?;
            }
            if self.cols > 10 {
                write!(f, " …")?;
            }
            writeln!(f)?;
        }
        if self.rows > 10 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for RMat {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMat {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &RMat {
    type Output = RMat;
    fn add(self, rhs: &RMat) -> RMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &RMat {
    type Output = RMat;
    fn sub(self, rhs: &RMat) -> RMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &RMat {
    type Output = RMat;
    fn neg(self) -> RMat {
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| -x).collect(),
        }
    }
}

impl Mul for &RMat {
    type Output = RMat;
    fn mul(self, rhs: &RMat) -> RMat {
        self.mul_mat(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> RMat {
        // A = Bᵀ·B + I is SPD for any B.
        let b = RMat::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![-1.0, 0.0, 3.0],
            vec![0.25, -2.0, 1.0],
        ]);
        let mut a = b.transpose().mul_mat(&b);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd_example();
        let l = a.cholesky().expect("SPD");
        assert!(l.mul_transpose_self().approx_eq(&a, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = RMat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_residual() {
        let a = spd_example();
        let b = vec![1.0, -2.0, 0.5];
        let x = a.solve_spd(&b).expect("solvable");
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn triangular_matrix_solves() {
        let a = spd_example();
        let l = a.cholesky().unwrap();
        let eye = RMat::identity(3);
        let linv = l.solve_lower_mat(&eye);
        assert!(l.mul_mat(&linv).approx_eq(&eye, 1e-12));
        let ltinv = l.solve_lower_transpose_mat(&eye);
        assert!(l.transpose().mul_mat(&ltinv).approx_eq(&eye, 1e-12));
        assert!(l.invert_lower().approx_eq(&linv, 1e-15));
    }

    #[test]
    fn trace_mul_matches() {
        let a = RMat::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let b = RMat::from_fn(3, 3, |i, j| (2 * i) as f64 - j as f64);
        assert!((a.trace_mul(&b) - a.mul_mat(&b).trace()).abs() < 1e-12);
    }

    #[test]
    fn mul_transpose_self_is_gram() {
        let a = RMat::from_fn(2, 4, |i, j| (i * 4 + j) as f64);
        let g = a.mul_transpose_self();
        assert!(g.approx_eq(&a.mul_mat(&a.transpose()), 1e-12));
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let a = RMat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let s = a.symmetrize();
        assert!(s.approx_eq(&s.transpose(), 0.0));
    }
}
