//! Dense real matrices (row-major), used primarily by the SDP solver.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Sequential dot product of two equal-length slices.
///
/// Accumulates strictly left-to-right (`((0 + a₀b₀) + a₁b₁) + …`), unrolled
/// into fixed-width chunks of *sequential* adds so the compiler can drop
/// bounds checks without reassociating the sum. Bit-identical to the naive
/// `for k { s += a[k] * b[k] }` loop.
#[inline(always)]
pub fn dot_slice(a: &[f64], b: &[f64]) -> f64 {
    dot_seq(a, b)
}

/// `y += s·x` over contiguous lanes (exported unrolled kernel).
///
/// Each output element receives exactly one fused `+ s·xᵢ`, so unrolling
/// across the independent lanes cannot change bits relative to the naive
/// `for i { y[i] += s * x[i] }` loop.
///
/// # Panics
///
/// Debug-asserts equal lengths; in release the shorter length wins.
#[inline(always)]
pub fn axpy_slice(y: &mut [f64], s: f64, x: &[f64]) {
    axpy_row(y, s, x)
}

#[inline(always)]
fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        s += ca[0] * cb[0];
        s += ca[1] * cb[1];
        s += ca[2] * cb[2];
        s += ca[3] * cb[3];
    }
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        s += x * y;
    }
    s
}

/// Two independent `sᵢ - Σ aₖ·bᵢₖ` running differences advanced in lock
/// step. Each accumulator keeps the exact subtraction order of
/// [`sub_dot_seq`] — interleaving separate chains reorders nothing within
/// either — but the two chains overlap in the FP pipeline instead of
/// serializing on one accumulator's add latency.
#[inline(always)]
fn sub_dot_seq2(mut s1: f64, mut s2: f64, a: &[f64], b1: &[f64], b2: &[f64]) -> (f64, f64) {
    debug_assert_eq!(a.len(), b1.len());
    debug_assert_eq!(a.len(), b2.len());
    let mut ac = a.chunks_exact(4);
    let mut b1c = b1.chunks_exact(4);
    let mut b2c = b2.chunks_exact(4);
    for ((ca, cb1), cb2) in (&mut ac).zip(&mut b1c).zip(&mut b2c) {
        s1 -= ca[0] * cb1[0];
        s2 -= ca[0] * cb2[0];
        s1 -= ca[1] * cb1[1];
        s2 -= ca[1] * cb2[1];
        s1 -= ca[2] * cb1[2];
        s2 -= ca[2] * cb2[2];
        s1 -= ca[3] * cb1[3];
        s2 -= ca[3] * cb2[3];
    }
    for ((x, y1), y2) in ac
        .remainder()
        .iter()
        .zip(b1c.remainder())
        .zip(b2c.remainder())
    {
        s1 -= x * y1;
        s2 -= x * y2;
    }
    (s1, s2)
}

/// Sequential `s - Σ aₖ·bₖ` with the same subtraction order as the naive
/// `for k { s -= a[k] * b[k] }` loop (used by Cholesky and the triangular
/// solves, where the order of the running difference is load-bearing for
/// bit-exact reproducibility).
#[inline(always)]
fn sub_dot_seq(mut s: f64, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        s -= ca[0] * cb[0];
        s -= ca[1] * cb[1];
        s -= ca[2] * cb[2];
        s -= ca[3] * cb[3];
    }
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        s -= x * y;
    }
    s
}

/// `y += s·x` over contiguous lanes. Each output element receives exactly
/// one fused `+ s·xᵢ`, so unrolling across the independent lanes cannot
/// change bits.
#[inline(always)]
fn axpy_row(y: &mut [f64], s: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (cy, cx) in (&mut yc).zip(&mut xc) {
        cy[0] += s * cx[0];
        cy[1] += s * cx[1];
        cy[2] += s * cx[2];
        cy[3] += s * cx[3];
    }
    for (a, b) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *a += s * b;
    }
}

/// A dense real matrix in row-major order.
///
/// The semidefinite-programming solver works over real symmetric blocks
/// (complex Hermitian data is embedded via
/// [`crate::embed::herm_to_real_sym`]), so this type carries the real-only
/// factorizations: Cholesky, triangular solves, and symmetric
/// eigendecomposition (see [`crate::eigh::sym_eig`]).
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::RMat;
///
/// let a = RMat::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let l = a.cholesky().expect("SPD");
/// assert!(l.mul_transpose_self().approx_eq(&a, 1e-12));
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct RMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMat {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in RMat::from_rows");
            data.extend_from_slice(row);
        }
        RMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix whose entries come from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        RMat { rows, cols, data }
    }

    /// Builds a diagonal matrix.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor for hot loops.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul_mat(&self, rhs: &RMat) -> RMat {
        let mut out = RMat::zeros(self.rows, rhs.cols);
        self.mul_mat_into(rhs, &mut out);
        out
    }

    /// Matrix product `self · rhs`, written into `out` (fully overwritten).
    ///
    /// The inner loops are branchless and run over contiguous row slices,
    /// with a fully unrolled fast path for right-hand sides of ≤ 8 columns
    /// (the per-gate diamond-SDP blocks). Each output element accumulates
    /// its `k` terms in ascending order exactly like the naive triple loop,
    /// so results are bit-identical to [`RMat::mul_mat`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn mul_mat_into(&self, rhs: &RMat, out: &mut RMat) {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        match rhs.cols {
            1 => self.mul_mat_small::<1>(rhs, out),
            2 => self.mul_mat_small::<2>(rhs, out),
            3 => self.mul_mat_small::<3>(rhs, out),
            4 => self.mul_mat_small::<4>(rhs, out),
            5 => self.mul_mat_small::<5>(rhs, out),
            6 => self.mul_mat_small::<6>(rhs, out),
            7 => self.mul_mat_small::<7>(rhs, out),
            8 => self.mul_mat_small::<8>(rhs, out),
            _ => {
                for i in 0..self.rows {
                    let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                    let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    orow.fill(0.0);
                    for (k, &aik) in arow.iter().enumerate() {
                        axpy_row(orow, aik, &rhs.data[k * rhs.cols..(k + 1) * rhs.cols]);
                    }
                }
            }
        }
    }

    /// Small-dimension product kernel: the whole output row lives in a
    /// const-sized register accumulator, so the `j` loop unrolls completely.
    fn mul_mat_small<const N: usize>(&self, rhs: &RMat, out: &mut RMat) {
        debug_assert_eq!(rhs.cols, N);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = [0.0f64; N];
            for (k, &aik) in arow.iter().enumerate() {
                let brow: &[f64; N] = rhs.data[k * N..k * N + N].try_into().unwrap();
                for j in 0..N {
                    acc[j] += aik * brow[j];
                }
            }
            out.row_mut(i).copy_from_slice(&acc);
        }
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows).map(|i| dot_seq(self.row(i), v)).collect()
    }

    /// `self · selfᵀ`.
    pub fn mul_transpose_self(&self) -> RMat {
        let mut out = RMat::zeros(self.rows, self.rows);
        for i in 0..self.rows {
            for j in i..self.rows {
                let s = dot_seq(self.row(i), self.row(j));
                out.set(i, j, s);
                out.set(j, i, s);
            }
        }
        out
    }

    /// `selfᵀ · self`, written into `out` (fully overwritten).
    ///
    /// Matches the bit-level accumulation of
    /// `self.transpose().mul_mat(&self)` — the historical call pattern in
    /// the SPD inverse — without materializing the transpose. The per-`k`
    /// zero skip is kept deliberately: the main caller passes a lower
    /// triangle, where the skip removes half the work.
    ///
    /// # Panics
    ///
    /// Panics on output-shape mismatch.
    pub fn transpose_mul_self_into(&self, out: &mut RMat) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.cols),
            "gram output shape mismatch"
        );
        let n = self.cols;
        for i in 0..n {
            let orow = &mut out.data[i * n..(i + 1) * n];
            orow.fill(0.0);
            for k in 0..self.rows {
                let a = self.data[k * n + i];
                if a == 0.0 {
                    continue;
                }
                axpy_row(orow, a, &self.data[k * n..(k + 1) * n]);
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> RMat {
        RMat::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// Trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self.at(i, i)).sum()
    }

    /// `tr(self · rhs)` without forming the product.
    pub fn trace_mul(&self, rhs: &RMat) -> f64 {
        assert_eq!(self.cols, rhs.rows, "trace_mul dimension mismatch");
        assert_eq!(self.rows, rhs.cols, "trace_mul dimension mismatch");
        let mut acc = 0.0;
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for (k, &aik) in arow.iter().enumerate() {
                acc += aik * rhs.data[k * rhs.cols + i];
            }
        }
        acc
    }

    /// Scales every entry, returning a new matrix.
    pub fn scaled(&self, s: f64) -> RMat {
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// In-place `self += s·other`.
    pub fn axpy(&mut self, s: f64, other: &RMat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        axpy_row(&mut self.data, s, &other.data);
    }

    /// Copies every entry from `other` into `self` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &RMat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        dot_seq(&self.data, &self.data).sqrt()
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Symmetrization `(self + selfᵀ)/2`.
    pub fn symmetrize(&self) -> RMat {
        let mut out = self.clone();
        out.symmetrize_in_place();
        out
    }

    /// In-place symmetrization `(self + selfᵀ)/2`.
    ///
    /// Bit-identical to [`RMat::symmetrize`]: each mirror pair is read
    /// before either side is written, IEEE addition is commutative on
    /// non-NaN inputs so both mirrors get the same bits, and the diagonal
    /// keeps the historical `0.5·(d + d)` evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize_in_place(&mut self) {
        assert!(self.is_square(), "symmetrize of non-square matrix");
        let n = self.rows;
        for i in 0..n {
            let d = self.data[i * n + i];
            self.data[i * n + i] = 0.5 * (d + d);
            for j in i + 1..n {
                let a = self.data[i * n + j];
                let b = self.data[j * n + i];
                let v = 0.5 * (a + b);
                self.data[i * n + j] = v;
                self.data[j * n + i] = v;
            }
        }
    }

    /// Whether all entries match `other` within `tol`.
    pub fn approx_eq(&self, other: &RMat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Cholesky factorization of a symmetric positive-definite matrix.
    ///
    /// Returns the lower-triangular `L` with `L·Lᵀ = self`, or `None` when a
    /// non-positive pivot is encountered (the matrix is not numerically
    /// positive definite).
    pub fn cholesky(&self) -> Option<RMat> {
        let mut l = RMat::zeros(self.rows, self.cols);
        if self.cholesky_into(&mut l) {
            Some(l)
        } else {
            None
        }
    }

    /// Cholesky factorization written into a reusable buffer.
    ///
    /// On success every entry of `out` is overwritten (the strict upper
    /// triangle with zeros) and `true` is returned; on a non-positive pivot
    /// `out` holds partial garbage and `false` is returned. The running
    /// difference per entry subtracts `k = 0, 1, …` terms in the same order
    /// as the textbook loop, so factors are bit-identical to
    /// [`RMat::cholesky`].
    ///
    /// # Panics
    ///
    /// Panics if `self` is non-square or `out` has a different shape.
    pub fn cholesky_into(&self, out: &mut RMat) -> bool {
        assert!(self.is_square(), "cholesky of non-square matrix");
        let n = self.rows;
        assert_eq!(
            (out.rows, out.cols),
            (n, n),
            "cholesky output shape mismatch"
        );
        for i in 0..n {
            let (head, tail) = out.data.split_at_mut(i * n);
            let li = &mut tail[..n];
            // Columns are paired so two running differences share the FP
            // pipeline. The second column's chain subtracts its `p = j`
            // term (which needs the just-computed `L[i][j]`) after the
            // shared `p < j` prefix — exactly where the textbook loop
            // subtracts it, so every chain keeps its sequential order.
            let mut j = 0;
            while j + 1 < i {
                let lj = &head[j * n..j * n + j + 1];
                let lj1 = &head[(j + 1) * n..(j + 1) * n + j + 2];
                let (s1, mut s2) = sub_dot_seq2(
                    self.at(i, j),
                    self.at(i, j + 1),
                    &li[..j],
                    &lj[..j],
                    &lj1[..j],
                );
                let v = s1 / lj[j];
                li[j] = v;
                s2 -= v * lj1[j];
                li[j + 1] = s2 / lj1[j + 1];
                j += 2;
            }
            if j < i {
                let lj = &head[j * n..(j + 1) * n];
                let s = sub_dot_seq(self.at(i, j), &li[..j], &lj[..j]);
                li[j] = s / lj[j];
            }
            let s = sub_dot_seq(self.at(i, i), &li[..i], &li[..i]);
            if s <= 0.0 || !s.is_finite() {
                return false;
            }
            li[i] = s.sqrt();
            li[i + 1..].fill(0.0);
        }
        true
    }

    /// Solves `L·x = b` for lower-triangular `self` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or a zero diagonal.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_lower_in_place(&mut x);
        x
    }

    /// Forward substitution `L·x = b` performed in place on `x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower_in_place(&self, x: &mut [f64]) {
        assert!(self.is_square() && self.rows == x.len());
        let n = self.rows;
        for i in 0..n {
            let lrow = &self.data[i * n..(i + 1) * n];
            let s = sub_dot_seq(x[i], &lrow[..i], &x[..i]);
            x[i] = s / lrow[i];
        }
    }

    /// Solves `Lᵀ·x = b` for lower-triangular `self` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or a zero diagonal.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_lower_transpose_in_place(&mut x);
        x
    }

    /// Back substitution `Lᵀ·x = b` performed in place on `x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower_transpose_in_place(&self, x: &mut [f64]) {
        assert!(self.is_square() && self.rows == x.len());
        let n = self.rows;
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in i + 1..n {
                s -= self.data[k * n + i] * x[k];
            }
            x[i] = s / self.data[i * n + i];
        }
    }

    /// Solves `self·x = b` given that `self` is SPD, via Cholesky.
    ///
    /// Returns `None` when the Cholesky factorization fails.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        Some(l.solve_lower_transpose(&l.solve_lower(b)))
    }

    /// Solves `L·X = B` columnwise for lower-triangular `self`.
    pub fn solve_lower_mat(&self, b: &RMat) -> RMat {
        let mut x = b.clone();
        self.solve_lower_mat_in_place(&mut x);
        x
    }

    /// Forward substitution `L·X = B` performed in place on `x`.
    ///
    /// The zero skip on `L` entries is kept: callers routinely pass factors
    /// with structural zeros (and the identity, via
    /// [`RMat::invert_lower_into`]), where it removes real work.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower_mat_in_place(&self, x: &mut RMat) {
        assert!(self.is_square() && self.rows == x.rows);
        let n = self.rows;
        for i in 0..n {
            let (head, tail) = x.data.split_at_mut(i * x.cols);
            let xi = &mut tail[..x.cols];
            let lrow = &self.data[i * n..(i + 1) * n];
            for (k, &lik) in lrow[..i].iter().enumerate() {
                if lik == 0.0 {
                    continue;
                }
                let xk = &head[k * x.cols..(k + 1) * x.cols];
                for (a, b) in xi.iter_mut().zip(xk) {
                    *a -= lik * b;
                }
            }
            let d = lrow[i];
            for v in xi {
                *v /= d;
            }
        }
    }

    /// Solves `Lᵀ·X = B` columnwise for lower-triangular `self`.
    pub fn solve_lower_transpose_mat(&self, b: &RMat) -> RMat {
        assert!(self.is_square() && self.rows == b.rows);
        let n = self.rows;
        let mut x = b.clone();
        for i in (0..n).rev() {
            for k in i + 1..n {
                let lki = self.at(k, i);
                if lki == 0.0 {
                    continue;
                }
                let (head, tail) = x.data.split_at_mut(k * x.cols);
                let xi = &mut head[i * x.cols..(i + 1) * x.cols];
                let xk = &tail[..x.cols];
                for (a, b) in xi.iter_mut().zip(xk) {
                    *a -= lki * b;
                }
            }
            let d = self.at(i, i);
            for v in x.row_mut(i) {
                *v /= d;
            }
        }
        x
    }

    /// Inverse of a lower-triangular matrix.
    pub fn invert_lower(&self) -> RMat {
        let mut out = RMat::zeros(self.rows, self.rows);
        self.invert_lower_into(&mut out);
        out
    }

    /// Inverse of a lower-triangular matrix, written into a reusable buffer
    /// (fully overwritten). Bit-identical to [`RMat::invert_lower`].
    ///
    /// # Panics
    ///
    /// Panics if `self` is non-square or `out` has a different shape.
    pub fn invert_lower_into(&self, out: &mut RMat) {
        assert!(self.is_square(), "invert_lower of non-square matrix");
        let n = self.rows;
        assert_eq!(
            (out.rows, out.cols),
            (n, n),
            "invert_lower output shape mismatch"
        );
        out.data.fill(0.0);
        for i in 0..n {
            out.data[i * n + i] = 1.0;
        }
        self.solve_lower_mat_in_place(out);
    }
}

impl fmt::Debug for RMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(10) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(10) {
                write!(f, "{:>12.5}", self.at(i, j))?;
            }
            if self.cols > 10 {
                write!(f, " …")?;
            }
            writeln!(f)?;
        }
        if self.rows > 10 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for RMat {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMat {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &RMat {
    type Output = RMat;
    fn add(self, rhs: &RMat) -> RMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &RMat {
    type Output = RMat;
    fn sub(self, rhs: &RMat) -> RMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &RMat {
    type Output = RMat;
    fn neg(self) -> RMat {
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| -x).collect(),
        }
    }
}

impl Mul for &RMat {
    type Output = RMat;
    fn mul(self, rhs: &RMat) -> RMat {
        self.mul_mat(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> RMat {
        // A = Bᵀ·B + I is SPD for any B.
        let b = RMat::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![-1.0, 0.0, 3.0],
            vec![0.25, -2.0, 1.0],
        ]);
        let mut a = b.transpose().mul_mat(&b);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd_example();
        let l = a.cholesky().expect("SPD");
        assert!(l.mul_transpose_self().approx_eq(&a, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = RMat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_residual() {
        let a = spd_example();
        let b = vec![1.0, -2.0, 0.5];
        let x = a.solve_spd(&b).expect("solvable");
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn triangular_matrix_solves() {
        let a = spd_example();
        let l = a.cholesky().unwrap();
        let eye = RMat::identity(3);
        let linv = l.solve_lower_mat(&eye);
        assert!(l.mul_mat(&linv).approx_eq(&eye, 1e-12));
        let ltinv = l.solve_lower_transpose_mat(&eye);
        assert!(l.transpose().mul_mat(&ltinv).approx_eq(&eye, 1e-12));
        assert!(l.invert_lower().approx_eq(&linv, 1e-15));
    }

    #[test]
    fn trace_mul_matches() {
        let a = RMat::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let b = RMat::from_fn(3, 3, |i, j| (2 * i) as f64 - j as f64);
        assert!((a.trace_mul(&b) - a.mul_mat(&b).trace()).abs() < 1e-12);
    }

    #[test]
    fn mul_transpose_self_is_gram() {
        let a = RMat::from_fn(2, 4, |i, j| (i * 4 + j) as f64);
        let g = a.mul_transpose_self();
        assert!(g.approx_eq(&a.mul_mat(&a.transpose()), 1e-12));
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let a = RMat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let s = a.symmetrize();
        assert!(s.approx_eq(&s.transpose(), 0.0));
    }
}
