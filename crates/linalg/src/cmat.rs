//! Dense complex matrices (row-major).

use crate::{c64, CVec, C64};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix in row-major order.
///
/// This is the workhorse type of the whole workspace: quantum gates, density
/// matrices, Choi matrices, and MPS tensors (reshaped) are all `CMat`s.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::{c64, CMat};
///
/// let h = CMat::from_rows(&[
///     vec![c64(1.0, 0.0), c64(1.0, 0.0)],
///     vec![c64(1.0, 0.0), c64(-1.0, 0.0)],
/// ]).scaled(c64(1.0 / 2f64.sqrt(), 0.0));
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<C64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in CMat::from_rows");
            data.extend_from_slice(row);
        }
        CMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a row-major flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        CMat { rows, cols, data }
    }

    /// Builds a matrix whose entries come from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        CMat { rows, cols, data }
    }

    /// Builds a real diagonal matrix from the given diagonal entries.
    pub fn diag_real(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m.data[i * n + i] = c64(v, 0.0);
        }
        m
    }

    /// Builds a complex diagonal matrix from the given diagonal entries.
    pub fn diag(d: &[C64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// The outer product `u·v†` (a rank-1 matrix).
    pub fn outer(u: &CVec, v: &CVec) -> Self {
        Self::from_fn(u.len(), v.len(), |i, j| u[i].mul_conj(v[j]))
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[C64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [C64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as an owned vector.
    pub fn col(&self, j: usize) -> CVec {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Unchecked-by-types element accessor used in hot loops.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> C64 {
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: C64) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul_mat(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        // Cache-friendly i-k-j ordering: the inner loop walks contiguous rows
        // of `rhs` and `out`.
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in arow.iter().enumerate() {
                if aik.re == 0.0 && aik.im == 0.0 {
                    continue;
                }
                let brow = rhs.row(k);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o = o.add_prod(aik, b);
                }
            }
        }
        out
    }

    /// `self† · rhs` without materializing the adjoint.
    pub fn adjoint_mul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.rows, rhs.rows, "adjoint_mul dimension mismatch");
        let mut out = CMat::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = rhs.row(k);
            for (i, &aki) in arow.iter().enumerate() {
                if aki.re == 0.0 && aki.im == 0.0 {
                    continue;
                }
                let conj = aki.conj();
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o = o.add_prod(conj, b);
                }
            }
        }
        out
    }

    /// `self · rhs†` without materializing the adjoint.
    pub fn mul_adjoint(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.cols, "mul_adjoint dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..rhs.rows {
                let brow = rhs.row(j);
                let mut acc = C64::ZERO;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc = acc.add_prod(a, b.conj());
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    pub fn mul_vec(&self, v: &CVec) -> CVec {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = CVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = C64::ZERO;
            for (a, b) in self.row(i).iter().zip(v.as_slice()) {
                acc = acc.add_prod(*a, *b);
            }
            out[i] = acc;
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// Componentwise conjugate.
    pub fn conj(&self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Conjugate transpose `self†`.
    pub fn adjoint(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self.at(j, i).conj())
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self.at(i, i)).sum()
    }

    /// `tr(self · rhs)` computed without forming the product.
    pub fn trace_mul(&self, rhs: &CMat) -> C64 {
        assert_eq!(self.cols, rhs.rows, "trace_mul dimension mismatch");
        assert_eq!(self.rows, rhs.cols, "trace_mul dimension mismatch");
        let mut acc = C64::ZERO;
        for i in 0..self.rows {
            for k in 0..self.cols {
                acc = acc.add_prod(self.at(i, k), rhs.at(k, i));
            }
        }
        acc
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self.at(i, j);
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for p in 0..rhs.rows {
                    let orow = (i * rhs.rows + p) * out.cols + j * rhs.cols;
                    let brow = rhs.row(p);
                    for (q, &b) in brow.iter().enumerate() {
                        out.data[orow + q] = a * b;
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scaled(&self, s: C64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| *z * s).collect(),
        }
    }

    /// In-place scale by a complex factor.
    pub fn scale_mut(&mut self, s: C64) {
        for z in &mut self.data {
            *z *= s;
        }
    }

    /// In-place `self += s·other`.
    pub fn axpy(&mut self, s: C64, other: &CMat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.add_prod(s, *b);
        }
    }

    /// Frobenius norm `√Σ|aᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Whether `self` is Hermitian to tolerance `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self.at(i, j).approx_eq(self.at(j, i).conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether `self† · self = I` to tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let g = self.adjoint_mul(self);
        g.approx_eq(&CMat::identity(self.rows), tol)
    }

    /// Whether all entries match `other` within `tol`.
    pub fn approx_eq(&self, other: &CMat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Extracts the contiguous sub-matrix with rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix shape.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> CMat {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        CMat::from_fn(r1 - r0, c1 - c0, |i, j| self.at(r0 + i, c0 + j))
    }

    /// Hermitian symmetrization `(self + self†)/2`, useful for scrubbing
    /// round-off from matrices that are Hermitian by construction.
    pub fn hermitize(&self) -> CMat {
        assert!(self.is_square(), "hermitize of non-square matrix");
        CMat::from_fn(self.rows, self.cols, |i, j| {
            (self.at(i, j) + self.at(j, i).conj()).scale(0.5)
        })
    }

    /// Reinterprets the matrix as a flattened vector (row-major).
    pub fn to_cvec(&self) -> CVec {
        CVec::from(self.data.clone())
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>22}", format!("{}", self.at(i, j)))?;
            }
            if self.cols > 8 {
                write!(f, " …")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.mul_mat(rhs)
    }
}

impl Mul<&CVec> for &CMat {
    type Output = CVec;
    fn mul(self, rhs: &CVec) -> CVec {
        self.mul_vec(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]])
    }

    fn pauli_y() -> CMat {
        CMat::from_rows(&[vec![C64::ZERO, -C64::I], vec![C64::I, C64::ZERO]])
    }

    fn pauli_z() -> CMat {
        CMat::from_rows(&[vec![C64::ONE, C64::ZERO], vec![C64::ZERO, -C64::ONE]])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let i2 = CMat::identity(2);
        assert!(x.mul_mat(&i2).approx_eq(&x, 1e-15));
        assert!(i2.mul_mat(&x).approx_eq(&x, 1e-15));
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ, YZ = iX, ZX = iY
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        assert!(x.mul_mat(&y).approx_eq(&z.scaled(C64::I), 1e-15));
        assert!(y.mul_mat(&z).approx_eq(&x.scaled(C64::I), 1e-15));
        assert!(z.mul_mat(&x).approx_eq(&y.scaled(C64::I), 1e-15));
    }

    #[test]
    fn paulis_are_hermitian_unitary_traceless() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_hermitian(1e-15));
            assert!(p.is_unitary(1e-15));
            assert!(p.trace().approx_eq(C64::ZERO, 1e-15));
        }
    }

    #[test]
    fn adjoint_mul_matches_explicit() {
        let a = CMat::from_fn(3, 2, |i, j| c64(i as f64, j as f64 + 1.0));
        let b = CMat::from_fn(3, 4, |i, j| c64(j as f64 - i as f64, 0.5));
        assert!(a.adjoint_mul(&b).approx_eq(&a.adjoint().mul_mat(&b), 1e-13));
    }

    #[test]
    fn mul_adjoint_matches_explicit() {
        let a = CMat::from_fn(3, 2, |i, j| c64(i as f64, j as f64 + 1.0));
        let b = CMat::from_fn(4, 2, |i, j| c64(j as f64 - i as f64, 0.5));
        assert!(a.mul_adjoint(&b).approx_eq(&a.mul_mat(&b.adjoint()), 1e-13));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let i2 = CMat::identity(2);
        let xi = x.kron(&i2);
        assert_eq!((xi.rows(), xi.cols()), (4, 4));
        // X ⊗ I flips the leading (most significant) qubit.
        assert!(xi.at(0, 2).approx_eq(C64::ONE, 1e-15));
        assert!(xi.at(1, 3).approx_eq(C64::ONE, 1e-15));
        assert!(xi.at(2, 0).approx_eq(C64::ONE, 1e-15));
        assert!(xi.at(3, 1).approx_eq(C64::ONE, 1e-15));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = CMat::identity(2);
        let lhs = a.kron(&b).mul_mat(&c.kron(&d));
        let rhs = a.mul_mat(&c).kron(&b.mul_mat(&d));
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn trace_mul_matches_product_trace() {
        let a = CMat::from_fn(3, 3, |i, j| c64((i * 3 + j) as f64, 1.0));
        let b = CMat::from_fn(3, 3, |i, j| c64(1.0, (i + j) as f64));
        let direct = a.mul_mat(&b).trace();
        assert!(a.trace_mul(&b).approx_eq(direct, 1e-12));
    }

    #[test]
    fn outer_product_rank_one() {
        let u = CVec::from(vec![C64::ONE, C64::I]);
        let v = CVec::from(vec![c64(2.0, 0.0), C64::ZERO]);
        let m = CMat::outer(&u, &v);
        assert!(m.at(0, 0).approx_eq(c64(2.0, 0.0), 1e-15));
        assert!(m.at(1, 0).approx_eq(c64(0.0, 2.0), 1e-15));
        assert!(m.at(0, 1).approx_eq(C64::ZERO, 1e-15));
    }

    #[test]
    fn hermitize_fixes_roundoff() {
        let mut m = pauli_z();
        m.set(0, 1, c64(1e-17, 1e-17));
        let h = m.hermitize();
        assert!(h.is_hermitian(0.0));
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = CMat::from_fn(4, 4, |i, j| c64((i * 4 + j) as f64, 0.0));
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!((s.rows(), s.cols()), (2, 2));
        assert!(s.at(0, 0).approx_eq(c64(6.0, 0.0), 1e-15));
        assert!(s.at(1, 1).approx_eq(c64(11.0, 0.0), 1e-15));
    }

    #[test]
    fn frobenius_norm_of_unitary() {
        // ‖U‖_F = √n for any n×n unitary.
        assert!((pauli_y().frobenius_norm() - 2f64.sqrt()).abs() < 1e-15);
    }
}
