//! Hermitian and real-symmetric eigendecomposition.
//!
//! The implementation follows the classical EISPACK route:
//!
//! 1. Householder reduction to tridiagonal form (`tred2` for real symmetric
//!    matrices; a complex-Householder variant for Hermitian matrices whose
//!    complex subdiagonal is then made real-nonnegative by a diagonal phase
//!    similarity), and
//! 2. the implicit-QL algorithm with Wilkinson shifts (`tql2`), applying the
//!    Givens rotations to the accumulated transformation so its columns end
//!    up being the eigenvectors.
//!
//! This is the workhorse behind trace norms, SVD (via Gram matrices), and
//! every PSD check in the SDP solver.

use crate::{c64, CMat, RMat, C64};

/// Receives the Givens column rotations produced by the QL iteration.
///
/// `tql2` is written once against this trait so the same core serves the
/// real-symmetric path (rotating `RMat` columns), the Hermitian path
/// (rotating `CMat` columns), and the eigenvalue-only path (no-op).
trait ColRotate {
    /// Applies the rotation `(colᵢ, colⱼ) ← (c·colᵢ − s·colⱼ, s·colᵢ + c·colⱼ)`.
    fn col_rotate(&mut self, i: usize, j: usize, c: f64, s: f64);
}

struct NoRotate;

impl ColRotate for NoRotate {
    #[inline(always)]
    fn col_rotate(&mut self, _i: usize, _j: usize, _c: f64, _s: f64) {}
}

impl ColRotate for RMat {
    #[inline]
    fn col_rotate(&mut self, i: usize, j: usize, c: f64, s: f64) {
        let cols = self.cols();
        for row in self.as_mut_slice().chunks_exact_mut(cols) {
            let f = row[j];
            let g = row[i];
            row[j] = s * g + c * f;
            row[i] = c * g - s * f;
        }
    }
}

impl ColRotate for CMat {
    #[inline]
    fn col_rotate(&mut self, i: usize, j: usize, c: f64, s: f64) {
        for k in 0..self.rows() {
            let f = self.at(k, j);
            let g = self.at(k, i);
            self.set(k, j, g.scale(s) + f.scale(c));
            self.set(k, i, g.scale(c) - f.scale(s));
        }
    }
}

/// `|a|` with the sign of `b` (the Fortran `SIGN` intrinsic).
#[inline(always)]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Errors from the eigendecomposition routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// The QL iteration failed to converge within the iteration budget.
    NoConvergence,
    /// The input matrix was not square.
    NotSquare,
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NoConvergence => write!(f, "QL iteration did not converge"),
            EigError::NotSquare => write!(f, "eigendecomposition requires a square matrix"),
        }
    }
}

impl std::error::Error for EigError {}

/// Implicit QL with Wilkinson shifts on a symmetric tridiagonal matrix.
///
/// On entry `d` holds the diagonal and `e[1..]` the subdiagonal (`e[0]` is
/// ignored). On successful exit `d` holds the (unsorted) eigenvalues and all
/// applied rotations have been forwarded to `z`.
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut impl ColRotate) -> Result<(), EigError> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    let eps = f64::EPSILON;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= eps * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(EigError::NoConvergence);
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + sign(r, g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            let mut i = m; // will walk i = m-1 down to l
            while i > l {
                i -= 1;
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                z.col_rotate(i, i + 1, c, s);
            }
            if underflow && i > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transformation (classic `tred2`).
///
/// On exit `z` holds the accumulated orthogonal matrix `Q` with
/// `Qᵀ·A·Q = tridiag(d, e)`.
fn tred2(z: &mut RMat, d: &mut [f64], e: &mut [f64]) {
    householder_tridiag::<true>(z, d, e);
}

/// Eigenvalue-only Householder reduction (classic `tred1`): identical
/// arithmetic to [`tred2`] minus the orthogonal-transform accumulation.
///
/// The reduction's `d`/`e` outputs are produced entirely by the forward
/// Householder sweep, whose reads all live in the lower triangle; the
/// upper-triangle stores and the O(n³) back-accumulation in `tred2` exist
/// only to build `Q`. Skipping them leaves `d` and `e` bit-identical, which
/// is what keeps `sym_eigvals` on the solver's line-search hot path without
/// perturbing the pinned interior-point trajectories.
fn tred1(z: &mut RMat, d: &mut [f64], e: &mut [f64]) {
    householder_tridiag::<false>(z, d, e);
}

fn householder_tridiag<const ACCUMULATE: bool>(z: &mut RMat, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    let cols = z.cols();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for v in &z.row(i)[..i] {
                scale += v.abs();
            }
            if scale == 0.0 {
                e[i] = z.at(i, l);
            } else {
                for v in &mut z.row_mut(i)[..i] {
                    *v /= scale;
                    h += *v * *v;
                }
                let f = z.at(i, l);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z.set(i, l, f - g);
                // Split at row i: the sweep reads row i (the Householder
                // vector) while updating the leading i×i block, so the two
                // borrows are disjoint.
                let (lo, hi) = z.as_mut_slice().split_at_mut(i * cols);
                let ri = &hi[..i];
                let mut f_acc = 0.0;
                for j in 0..i {
                    if ACCUMULATE {
                        lo[j * cols + i] = ri[j] / h;
                    }
                    let mut g_acc = 0.0;
                    for (zv, uv) in lo[j * cols..j * cols + j + 1].iter().zip(ri) {
                        g_acc += zv * uv;
                    }
                    for (k, uv) in ri.iter().enumerate().skip(j + 1) {
                        g_acc += lo[k * cols + j] * uv;
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * ri[j];
                }
                let hh = f_acc / (h + h);
                for j in 0..i {
                    let f = ri[j];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for (k, v) in lo[j * cols..j * cols + j + 1].iter_mut().enumerate() {
                        *v -= f * e[k] + g * ri[k];
                    }
                }
            }
        } else {
            e[i] = z.at(i, l);
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    if ACCUMULATE {
        for i in 0..n {
            if d[i] != 0.0 {
                for j in 0..i {
                    let mut g = 0.0;
                    for k in 0..i {
                        g += z.at(i, k) * z.at(k, j);
                    }
                    for k in 0..i {
                        let v = z.at(k, j) - g * z.at(k, i);
                        z.set(k, j, v);
                    }
                }
            }
            d[i] = z.at(i, i);
            z.set(i, i, 1.0);
            for j in 0..i {
                z.set(j, i, 0.0);
                z.set(i, j, 0.0);
            }
        }
    } else {
        // The diagonal of the reduced matrix never sees the accumulation
        // pass, so it can be read off directly.
        for i in 0..n {
            d[i] = z.at(i, i);
        }
    }
}

/// Sorted eigendecomposition of a real symmetric matrix.
///
/// Returns `(eigenvalues, Q)` with eigenvalues ascending and the `j`-th
/// column of `Q` the eigenvector of the `j`-th eigenvalue, so that
/// `A = Q·diag(λ)·Qᵀ`.
///
/// Only the lower triangle of `a` is referenced semantically; the matrix is
/// assumed symmetric.
///
/// # Errors
///
/// Returns [`EigError`] if the matrix is not square or QL fails to converge.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::{sym_eig, RMat};
///
/// let a = RMat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let (vals, _q) = sym_eig(&a)?;
/// assert!((vals[0] - 1.0).abs() < 1e-12 && (vals[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), gleipnir_linalg::EigError>(())
/// ```
pub fn sym_eig(a: &RMat) -> Result<(Vec<f64>, RMat), EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = a.rows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    if n > 0 {
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut d, &mut e, &mut z)?;
    }
    let (d, z) = sort_real_pairs(d, z);
    Ok((d, z))
}

/// Eigenvalues only (ascending) of a real symmetric matrix.
///
/// # Errors
///
/// Returns [`EigError`] if the matrix is not square or QL fails to converge.
pub fn sym_eigvals(a: &RMat) -> Result<Vec<f64>, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = a.rows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    if n > 0 {
        tred1(&mut z, &mut d, &mut e);
        tql2(&mut d, &mut e, &mut NoRotate)?;
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN eigenvalues"));
    Ok(d)
}

fn sort_real_pairs(d: Vec<f64>, z: RMat) -> (Vec<f64>, RMat) {
    let n = d.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("non-NaN eigenvalues"));
    let sorted: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let zs = RMat::from_fn(n, n, |r, c| z.at(r, idx[c]));
    (sorted, zs)
}

fn sort_complex_pairs(d: Vec<f64>, z: CMat) -> (Vec<f64>, CMat) {
    let n = d.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("non-NaN eigenvalues"));
    let sorted: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let zs = CMat::from_fn(n, n, |r, c| z.at(r, idx[c]));
    (sorted, zs)
}

/// Reduces a Hermitian matrix to real symmetric tridiagonal form via complex
/// Householder reflections followed by a diagonal phase similarity.
///
/// Returns `(d, e, Q)` with `Q` unitary and `Q†·A·Q = tridiag(d, e)`;
/// `e[0] = 0` and `e[i]` couples sites `i−1, i`.
fn hermitian_tridiag(a: &CMat) -> (Vec<f64>, Vec<f64>, CMat) {
    let n = a.rows();
    let mut b = a.clone();
    // Superdiagonal entries T[i−1][i] (complex before phase absorption).
    let mut sup = vec![C64::ZERO; n];
    // Householder vectors (acting on coordinates 0..u.len()) and their H values,
    // pushed in creation order i = n−1, n−2, …
    let mut reflections: Vec<Option<(Vec<C64>, f64)>> = Vec::new();

    for i in (1..n).rev() {
        // Column above the diagonal in column i: c_k = b[k][i], k < i.
        let c: Vec<C64> = (0..i).map(|k| b.at(k, i)).collect();
        let tail_scale: f64 = c[..i - 1].iter().map(|z| z.re.abs() + z.im.abs()).sum();
        if tail_scale == 0.0 {
            // Already tridiagonal at this column.
            sup[i] = c[i - 1];
            reflections.push(None);
            continue;
        }
        let norm_c = c.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let last = c[i - 1];
        let alpha = if last.abs() > 0.0 {
            last.scale(norm_c / last.abs())
        } else {
            c64(norm_c, 0.0)
        };
        let mut u = c;
        u[i - 1] += alpha;
        // H = u†c = ‖c‖² + |c_{i−1}|·‖c‖ (real, strictly positive here).
        let h = norm_c * norm_c + last.abs() * norm_c;

        // p = B·u / H over the leading i×i block.
        let mut p = vec![C64::ZERO; i];
        for (r, pr) in p.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for (j, &uj) in u.iter().enumerate() {
                acc = acc.add_prod(b.at(r, j), uj);
            }
            *pr = acc.scale(1.0 / h);
        }
        // K = (u†p)/(2H); u†p is real because B is Hermitian and H real.
        let upd: f64 = u
            .iter()
            .zip(&p)
            .map(|(uk, pk)| uk.conj().mul_conj(pk.conj()).re)
            .sum();
        let k_scalar = upd / (2.0 * h);
        // q = p − K·u;  B ← B − u·q† − q·u†.
        let q: Vec<C64> = p
            .iter()
            .zip(&u)
            .map(|(pk, uk)| *pk - uk.scale(k_scalar))
            .collect();
        for r in 0..i {
            for cc in 0..i {
                let delta = u[r].mul_conj(q[cc]) + q[r].mul_conj(u[cc]);
                let v = b.at(r, cc) - delta;
                b.set(r, cc, v);
            }
        }
        // Column/row i become (0,…,0,−α) and its conjugate.
        for k in 0..i - 1 {
            b.set(k, i, C64::ZERO);
            b.set(i, k, C64::ZERO);
        }
        b.set(i - 1, i, -alpha);
        b.set(i, i - 1, (-alpha).conj());
        sup[i] = -alpha;
        reflections.push(Some((u, h)));
    }

    // Accumulate Q = P̃_{n−1}·P̃_{n−2}⋯ by left-applying reflections in
    // reverse creation order (ascending i).
    let mut qmat = CMat::identity(n);
    for refl in reflections.iter().rev().flatten() {
        let (u, h) = refl;
        let m = u.len();
        // t_j = (u† M)_j / H for each column j, then rank-1 update.
        let mut t = vec![C64::ZERO; n];
        for (k, &uk) in u.iter().enumerate() {
            let conj_uk = uk.conj();
            let row = qmat.row(k);
            for (tj, &mkj) in t.iter_mut().zip(row) {
                *tj = tj.add_prod(conj_uk, mkj);
            }
        }
        let inv_h = 1.0 / *h;
        for tj in &mut t {
            *tj = tj.scale(inv_h);
        }
        for (k, &uk) in u.iter().enumerate().take(m) {
            let row = qmat.row_mut(k);
            for (mkj, &tj) in row.iter_mut().zip(&t) {
                *mkj = *mkj - uk * tj;
            }
        }
    }

    // Phase absorption: make the subdiagonal real non-negative.
    // Subdiagonal T[i][i−1] = conj(sup[i]).
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    for (k, dk) in d.iter_mut().enumerate() {
        *dk = b.at(k, k).re;
    }
    let mut phase = vec![C64::ONE; n];
    for i in 1..n {
        let sub = sup[i].conj();
        let m = sub.abs();
        e[i] = m;
        phase[i] = if m > 0.0 {
            phase[i - 1] * sub.scale(1.0 / m)
        } else {
            phase[i - 1]
        };
    }
    // Q ← Q·D (scale column k by phase[k]).
    for r in 0..n {
        for k in 0..n {
            let v = qmat.at(r, k) * phase[k];
            qmat.set(r, k, v);
        }
    }
    (d, e, qmat)
}

/// Sorted eigendecomposition of a complex Hermitian matrix.
///
/// Returns `(eigenvalues, V)` with eigenvalues ascending and the `j`-th
/// column of the unitary `V` the eigenvector of the `j`-th eigenvalue, so
/// that `A = V·diag(λ)·V†`.
///
/// The input is assumed Hermitian; round-off asymmetry should be scrubbed
/// with [`CMat::hermitize`] first when the matrix is Hermitian only by
/// construction.
///
/// # Errors
///
/// Returns [`EigError`] if the matrix is not square or QL fails to converge.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::{c64, eigh, CMat, C64};
///
/// // Pauli Y has eigenvalues ±1.
/// let y = CMat::from_rows(&[
///     vec![C64::ZERO, -C64::I],
///     vec![C64::I, C64::ZERO],
/// ]);
/// let (vals, v) = eigh(&y)?;
/// assert!((vals[0] + 1.0).abs() < 1e-12 && (vals[1] - 1.0).abs() < 1e-12);
/// assert!(v.is_unitary(1e-12));
/// # Ok::<(), gleipnir_linalg::EigError>(())
/// ```
pub fn eigh(a: &CMat) -> Result<(Vec<f64>, CMat), EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = a.rows();
    if n == 0 {
        return Ok((Vec::new(), CMat::zeros(0, 0)));
    }
    let (mut d, mut e, mut q) = hermitian_tridiag(a);
    tql2(&mut d, &mut e, &mut q)?;
    let (d, q) = sort_complex_pairs(d, q);
    Ok((d, q))
}

/// Eigenvalues only (ascending) of a complex Hermitian matrix.
///
/// # Errors
///
/// Returns [`EigError`] if the matrix is not square or QL fails to converge.
pub fn eigh_vals(a: &CMat) -> Result<Vec<f64>, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let (mut d, mut e, _q) = hermitian_tridiag(a);
    tql2(&mut d, &mut e, &mut NoRotate)?;
    d.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN eigenvalues"));
    Ok(d)
}

/// Hermitian matrix function: applies `f` to the eigenvalues.
///
/// Computes `V·diag(f(λ))·V†`. Used for matrix square roots
/// (`f = |λ|^{1/2}` with clamping) and PSD projections.
///
/// # Errors
///
/// Propagates [`EigError`] from [`eigh`].
pub fn herm_fn(a: &CMat, mut f: impl FnMut(f64) -> f64) -> Result<CMat, EigError> {
    let (vals, v) = eigh(a)?;
    let n = vals.len();
    let mut scaled = v.clone();
    for j in 0..n {
        let fj = c64(f(vals[j]), 0.0);
        for i in 0..n {
            let x = scaled.at(i, j) * fj;
            scaled.set(i, j, x);
        }
    }
    Ok(scaled.mul_adjoint(&v))
}

/// Principal square root of a positive semidefinite Hermitian matrix.
///
/// Small negative eigenvalues from round-off are clamped to zero.
///
/// # Errors
///
/// Propagates [`EigError`] from [`eigh`].
pub fn herm_sqrt(a: &CMat) -> Result<CMat, EigError> {
    herm_fn(a, |x| x.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn check_eig(a: &CMat, tol: f64) {
        let (vals, v) = eigh(a).expect("eigh");
        assert!(v.is_unitary(tol), "eigenvector matrix not unitary");
        // A·V = V·Λ
        let av = a.mul_mat(&v);
        let vl = v.mul_mat(&CMat::diag_real(&vals));
        assert!(av.approx_eq(&vl, tol * 10.0), "A·V != V·Λ");
        // ascending
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn pauli_eigenvalues() {
        let x = CMat::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]]);
        let y = CMat::from_rows(&[vec![C64::ZERO, -C64::I], vec![C64::I, C64::ZERO]]);
        let z = CMat::from_rows(&[vec![C64::ONE, C64::ZERO], vec![C64::ZERO, -C64::ONE]]);
        for p in [&x, &y, &z] {
            let vals = eigh_vals(p).unwrap();
            assert!((vals[0] + 1.0).abs() < 1e-12);
            assert!((vals[1] - 1.0).abs() < 1e-12);
            check_eig(p, 1e-10);
        }
    }

    #[test]
    fn identity_eigendecomposition() {
        let id = CMat::identity(5);
        let (vals, v) = eigh(&id).unwrap();
        for lam in vals {
            assert!((lam - 1.0).abs() < 1e-13);
        }
        assert!(v.is_unitary(1e-12));
    }

    #[test]
    fn degenerate_spectrum() {
        // X ⊗ I has eigenvalues ±1, each twice.
        let x = CMat::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]]);
        let xi = x.kron(&CMat::identity(2));
        let vals = eigh_vals(&xi).unwrap();
        assert!((vals[0] + 1.0).abs() < 1e-12);
        assert!((vals[1] + 1.0).abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
        assert!((vals[3] - 1.0).abs() < 1e-12);
        check_eig(&xi, 1e-10);
    }

    #[test]
    fn random_hermitian_reconstruction() {
        // Deterministic pseudo-random Hermitian matrix.
        let n = 12;
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        let m = CMat::from_fn(n, n, |_, _| c64(rng(), rng()));
        let h = (&m + &m.adjoint()).scaled(c64(0.5, 0.0));
        check_eig(&h, 1e-9);
        // Reconstruct.
        let (vals, v) = eigh(&h).unwrap();
        let recon = v.mul_mat(&CMat::diag_real(&vals)).mul_adjoint(&v);
        assert!(recon.approx_eq(&h, 1e-9));
    }

    #[test]
    fn trace_matches_eigenvalue_sum() {
        let n = 8;
        let mut k = 0.0f64;
        let m = CMat::from_fn(n, n, |i, j| {
            k += 0.37;
            c64((i + j) as f64 * 0.1 + k.sin(), (i as f64 - j as f64) * 0.2)
        });
        let h = (&m + &m.adjoint()).scaled(c64(0.5, 0.0));
        let vals = eigh_vals(&h).unwrap();
        let sum: f64 = vals.iter().sum();
        assert!((sum - h.trace().re).abs() < 1e-9);
    }

    #[test]
    fn real_symmetric_eig() {
        let a = RMat::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let (vals, q) = sym_eig(&a).unwrap();
        // QᵀQ = I
        assert!(q
            .transpose()
            .mul_mat(&q)
            .approx_eq(&RMat::identity(3), 1e-12));
        // A = QΛQᵀ
        let recon = q.mul_mat(&RMat::diag(&vals)).mul_mat(&q.transpose());
        assert!(recon.approx_eq(&a, 1e-11));
        // Sum/product invariants.
        assert!((vals.iter().sum::<f64>() - 9.0).abs() < 1e-11);
        let eigvals_only = sym_eigvals(&a).unwrap();
        for (a, b) in vals.iter().zip(&eigvals_only) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn already_tridiagonal_input() {
        // Exercises the tail_scale == 0 skip path.
        let a = CMat::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.0, 2.0), C64::ZERO],
            vec![c64(0.0, -2.0), c64(3.0, 0.0), c64(1.0, 0.0)],
            vec![C64::ZERO, c64(1.0, 0.0), c64(-1.0, 0.0)],
        ]);
        check_eig(&a, 1e-11);
    }

    #[test]
    fn herm_sqrt_squares_back() {
        let m = CMat::from_fn(4, 4, |i, j| {
            c64((i * 4 + j) as f64 * 0.1, (i as f64) - (j as f64))
        });
        let psd = m.mul_adjoint(&m); // M·M† is PSD
        let s = herm_sqrt(&psd).unwrap();
        assert!(s.mul_mat(&s).approx_eq(&psd, 1e-9));
    }

    #[test]
    fn one_by_one_matrix() {
        let a = CMat::from_rows(&[vec![c64(5.0, 0.0)]]);
        let (vals, v) = eigh(&a).unwrap();
        assert!((vals[0] - 5.0).abs() < 1e-15);
        assert!((v.at(0, 0).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn not_square_errors() {
        let a = CMat::zeros(2, 3);
        assert_eq!(eigh(&a).unwrap_err(), EigError::NotSquare);
        assert_eq!(
            sym_eig(&RMat::zeros(2, 3)).unwrap_err(),
            EigError::NotSquare
        );
    }
}
