//! # gleipnir-linalg
//!
//! Hand-rolled dense linear algebra for the Gleipnir workspace.
//!
//! Everything downstream — the circuit IR, the simulators, the MPS tensor
//! network engine, the SDP solver, and the diamond-norm machinery — is built
//! on this crate. It provides:
//!
//! * [`C64`] — a double-precision complex scalar;
//! * [`CVec`] / [`CMat`] — dense complex vectors and row-major matrices with
//!   the full product/adjoint/Kronecker toolkit;
//! * [`RMat`] — dense real matrices with Cholesky and triangular solves
//!   (used by the SDP solver);
//! * [`eigh()`] / [`sym_eig`] — Hermitian and real-symmetric
//!   eigendecomposition (Householder tridiagonalization + implicit QL);
//! * [`svd_gram`] / [`svd_jacobi`] — singular value decompositions;
//! * [`qr_thin`] / [`lq_thin`] — Householder QR/LQ (MPS gauge fixing);
//! * [`ptrace_keep`], [`trace_distance`], [`fidelity`] — the quantum
//!   information utilities the paper's metrics are made of;
//! * [`herm_to_real_sym`] — the Hermitian → real-symmetric embedding used to
//!   pose complex SDPs over real blocks.
//!
//! The crate is dependency-free (tests use `rand`/`proptest`).

#![warn(missing_docs)]

mod cmat;
mod complex;
mod cvec;
pub mod eigh;
mod embed;
mod qr;
mod quantum;
mod rmat;
mod svd;

pub use cmat::CMat;
pub use complex::{c64, C64};
pub use cvec::CVec;
pub use eigh::{eigh, eigh_vals, herm_fn, herm_sqrt, sym_eig, sym_eigvals, EigError};
pub use embed::{herm_to_real_sym, real_sym_to_herm};
pub use qr::{lq_thin, qr_thin};
pub use quantum::{
    fidelity, is_density_matrix, ptrace_keep, purity, trace_distance, trace_norm_hermitian,
};
pub use rmat::{axpy_slice, dot_slice, RMat};
pub use svd::{svd_gram, svd_jacobi, Svd, JACOBI_RANK_TOL, RANK_TOL};
