//! Dense complex vectors.

use crate::{c64, C64};
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex column vector.
///
/// Thin wrapper around `Vec<C64>` with the inner-product and norm operations
/// quantum state manipulation needs.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::{c64, CVec};
///
/// let v = CVec::from(vec![c64(1.0, 0.0), c64(0.0, 1.0)]);
/// assert!((v.norm() - 2f64.sqrt()).abs() < 1e-15);
/// assert!((v.dot(&v).re - 2.0).abs() < 1e-15);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CVec {
    data: Vec<C64>,
}

impl CVec {
    /// A zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        CVec {
            data: vec![C64::ZERO; n],
        }
    }

    /// The `k`-th standard basis vector of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn basis(n: usize, k: usize) -> Self {
        assert!(k < n, "basis index {k} out of range for length {n}");
        let mut v = Self::zeros(n);
        v.data[k] = C64::ONE;
        v
    }

    /// Vector length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    #[inline]
    pub fn into_inner(self) -> Vec<C64> {
        self.data
    }

    /// Hermitian inner product `⟨self|other⟩ = Σ conj(selfᵢ)·otherᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &CVec) -> C64 {
        assert_eq!(self.len(), other.len(), "dot of mismatched lengths");
        let mut acc = C64::ZERO;
        for (a, b) in self.data.iter().zip(&other.data) {
            acc = acc.add_prod(a.conj(), *b);
        }
        acc
    }

    /// Squared Euclidean norm.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales every component by a complex factor in place.
    pub fn scale_mut(&mut self, s: C64) {
        for z in &mut self.data {
            *z *= s;
        }
    }

    /// Returns a normalized copy, or `None` when the norm is (near) zero.
    pub fn normalized(&self) -> Option<CVec> {
        let n = self.norm();
        if n <= f64::EPSILON {
            return None;
        }
        let mut v = self.clone();
        v.scale_mut(c64(1.0 / n, 0.0));
        Some(v)
    }

    /// In-place `self += s·other` (complex axpy).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, s: C64, other: &CVec) {
        assert_eq!(self.len(), other.len(), "axpy of mismatched lengths");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.add_prod(s, *b);
        }
    }

    /// Componentwise conjugate.
    pub fn conj(&self) -> CVec {
        CVec {
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Largest componentwise modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Whether `‖self − other‖_∞ ≤ tol`.
    pub fn approx_eq(&self, other: &CVec, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Iterator over components.
    pub fn iter(&self) -> std::slice::Iter<'_, C64> {
        self.data.iter()
    }
}

impl From<Vec<C64>> for CVec {
    fn from(data: Vec<C64>) -> Self {
        CVec { data }
    }
}

impl FromIterator<C64> for CVec {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        CVec {
            data: iter.into_iter().collect(),
        }
    }
}

impl Index<usize> for CVec {
    type Output = C64;
    #[inline(always)]
    fn index(&self, i: usize) -> &C64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVec {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut C64 {
        &mut self.data[i]
    }
}

impl Add for &CVec {
    type Output = CVec;
    fn add(self, rhs: &CVec) -> CVec {
        assert_eq!(
            self.len(),
            rhs.len(),
            "adding vectors of mismatched lengths"
        );
        CVec {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CVec {
    type Output = CVec;
    fn sub(self, rhs: &CVec) -> CVec {
        assert_eq!(
            self.len(),
            rhs.len(),
            "subtracting vectors of mismatched lengths"
        );
        CVec {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CVec {
    type Output = CVec;
    fn neg(self) -> CVec {
        CVec {
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul<C64> for &CVec {
    type Output = CVec;
    fn mul(self, s: C64) -> CVec {
        CVec {
            data: self.data.iter().map(|z| *z * s).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_vectors_are_orthonormal() {
        for i in 0..4 {
            for j in 0..4 {
                let d = CVec::basis(4, i).dot(&CVec::basis(4, j));
                let expect = if i == j { C64::ONE } else { C64::ZERO };
                assert!(d.approx_eq(expect, 1e-15));
            }
        }
    }

    #[test]
    fn dot_is_conjugate_linear_in_first_argument() {
        let u = CVec::from(vec![c64(1.0, 1.0), c64(0.0, -2.0)]);
        let v = CVec::from(vec![c64(2.0, 0.0), c64(1.0, 1.0)]);
        let lhs = u.dot(&v).conj();
        let rhs = v.dot(&u);
        assert!(lhs.approx_eq(rhs, 1e-15));
    }

    #[test]
    fn axpy_accumulates() {
        let mut u = CVec::zeros(3);
        let v = CVec::from(vec![C64::ONE, C64::I, c64(1.0, 1.0)]);
        u.axpy(c64(2.0, 0.0), &v);
        assert!(u.approx_eq(&(&v + &v), 1e-15));
    }

    #[test]
    fn normalized_unit_norm() {
        let v = CVec::from(vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert!(CVec::zeros(2).normalized().is_none());
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn dot_length_mismatch_panics() {
        let _ = CVec::zeros(2).dot(&CVec::zeros(3));
    }
}
