//! Complex QR and LQ factorizations via Householder reflections.
//!
//! These are the gauge-fixing primitives behind MPS canonicalization: a site
//! tensor reshaped to a matrix is replaced by the orthonormal `Q` factor
//! while `R` is absorbed into the neighboring site.

use crate::{c64, CMat, C64};

/// Thin QR factorization `A = Q·R`.
///
/// For an `m × n` input, returns `Q` of shape `m × k` with orthonormal
/// columns and upper-triangular `R` of shape `k × n`, where
/// `k = min(m, n)`. The diagonal of `R` is made real and non-negative so
/// the factorization is unique for full-column-rank inputs.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::{c64, qr_thin, CMat};
///
/// let a = CMat::from_fn(4, 2, |i, j| c64(i as f64 + 1.0, j as f64 - 1.0));
/// let (q, r) = qr_thin(&a);
/// assert!(q.adjoint_mul(&q).approx_eq(&CMat::identity(2), 1e-12));
/// assert!(q.mul_mat(&r).approx_eq(&a, 1e-12));
/// ```
pub fn qr_thin(a: &CMat) -> (CMat, CMat) {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut r = a.clone();
    // Householder vectors, one per step; vector j has support on rows j..m.
    let mut vs: Vec<(usize, Vec<C64>, f64)> = Vec::with_capacity(k);

    for j in 0..k {
        // x = R[j..m, j]
        let x: Vec<C64> = (j..m).map(|i| r.at(i, j)).collect();
        let norm_x = x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let tail: f64 = x[1..].iter().map(|z| z.norm_sqr()).sum();
        if norm_x == 0.0 || (tail == 0.0 && x[0].im == 0.0 && x[0].re >= 0.0) {
            // Column already reduced with a non-negative real pivot.
            continue;
        }
        let x0 = x[0];
        let alpha = if x0.abs() > 0.0 {
            x0.scale(norm_x / x0.abs())
        } else {
            c64(norm_x, 0.0)
        };
        // u = x + α·e₀ maps x to −α·e₀; H = u†x = ‖x‖² + |x₀|·‖x‖.
        let mut u = x;
        u[0] += alpha;
        let h = norm_x * norm_x + x0.abs() * norm_x;
        // Apply P = I − u·u†/H to R[j.., j..].
        apply_reflector_left(&mut r, j, &u, h);
        // Exact column: (0,…,0) below pivot, pivot −α.
        r.set(j, j, -alpha);
        for i in j + 1..m {
            r.set(i, j, C64::ZERO);
        }
        vs.push((j, u, h));
    }

    // Build thin Q by applying the reflections (in reverse order) to the
    // first k columns of the identity: Q = P_0·P_1⋯P_{k−1}·I[:, 0..k].
    let mut q = CMat::from_fn(m, k, |i, j| if i == j { C64::ONE } else { C64::ZERO });
    for (j, u, h) in vs.iter().rev() {
        apply_reflector_left(&mut q, *j, u, *h);
    }

    // Make the diagonal of R real non-negative: R ← D†R, Q ← Q·D with
    // D = diag(phase(R_jj)).
    let mut rk = CMat::from_fn(k, n, |i, j| r.at(i, j));
    for j in 0..k {
        let d = rk.at(j, j);
        let ad = d.abs();
        if ad > 0.0 && (d.im != 0.0 || d.re < 0.0) {
            let phase = d.scale(1.0 / ad);
            let conj_phase = phase.conj();
            for c in j..n {
                let v = rk.at(j, c) * conj_phase;
                rk.set(j, c, v);
            }
            for i in 0..m {
                let v = q.at(i, j) * phase;
                q.set(i, j, v);
            }
        }
    }
    (q, rk)
}

/// Applies `P = I − u·u†/h` to rows `j..` of `m` (all columns), where `u`
/// has support on rows `j..j+u.len()`.
fn apply_reflector_left(m: &mut CMat, j: usize, u: &[C64], h: f64) {
    let cols = m.cols();
    let inv_h = 1.0 / h;
    let mut t = vec![C64::ZERO; cols];
    for (offset, &uk) in u.iter().enumerate() {
        let conj_uk = uk.conj();
        let row = m.row(j + offset);
        for (tj, &v) in t.iter_mut().zip(row) {
            *tj = tj.add_prod(conj_uk, v);
        }
    }
    for tj in &mut t {
        *tj = tj.scale(inv_h);
    }
    for (offset, &uk) in u.iter().enumerate() {
        let row = m.row_mut(j + offset);
        for (v, &tj) in row.iter_mut().zip(&t) {
            *v = *v - uk * tj;
        }
    }
}

/// Thin LQ factorization `A = L·Q`.
///
/// For an `m × n` input, returns lower-triangular `L` of shape `m × k` and
/// `Q` of shape `k × n` with orthonormal rows, where `k = min(m, n)`.
///
/// Computed as the adjoint of [`qr_thin`] applied to `A†`.
pub fn lq_thin(a: &CMat) -> (CMat, CMat) {
    let (q, r) = qr_thin(&a.adjoint());
    (r.adjoint(), q.adjoint())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(m: usize, n: usize, seed: u64) -> CMat {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        CMat::from_fn(m, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = pseudo_random(6, 3, 1);
        let (q, r) = qr_thin(&a);
        assert_eq!((q.rows(), q.cols()), (6, 3));
        assert_eq!((r.rows(), r.cols()), (3, 3));
        assert!(q.adjoint_mul(&q).approx_eq(&CMat::identity(3), 1e-12));
        assert!(q.mul_mat(&r).approx_eq(&a, 1e-12));
        for j in 0..3 {
            assert!(r.at(j, j).im.abs() < 1e-14);
            assert!(r.at(j, j).re >= -1e-14);
        }
    }

    #[test]
    fn qr_reconstructs_wide() {
        let a = pseudo_random(3, 7, 2);
        let (q, r) = qr_thin(&a);
        assert_eq!((q.rows(), q.cols()), (3, 3));
        assert_eq!((r.rows(), r.cols()), (3, 7));
        assert!(q.adjoint_mul(&q).approx_eq(&CMat::identity(3), 1e-12));
        assert!(q.mul_mat(&r).approx_eq(&a, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = pseudo_random(5, 5, 3);
        let (_q, r) = qr_thin(&a);
        for i in 0..5 {
            for j in 0..i {
                assert!(r.at(i, j).abs() < 1e-13, "R[{i}][{j}] not zero");
            }
        }
    }

    #[test]
    fn lq_reconstructs() {
        let a = pseudo_random(3, 6, 4);
        let (l, q) = lq_thin(&a);
        assert_eq!((l.rows(), l.cols()), (3, 3));
        assert_eq!((q.rows(), q.cols()), (3, 6));
        // Q has orthonormal rows.
        assert!(q.mul_adjoint(&q).approx_eq(&CMat::identity(3), 1e-12));
        assert!(l.mul_mat(&q).approx_eq(&a, 1e-12));
        // L is lower-triangular.
        for i in 0..3 {
            for j in i + 1..3 {
                assert!(l.at(i, j).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let id = CMat::identity(4);
        let (q, r) = qr_thin(&id);
        assert!(q.approx_eq(&id, 1e-14));
        assert!(r.approx_eq(&id, 1e-14));
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // Two identical columns.
        let mut a = pseudo_random(4, 1, 5);
        let col: Vec<C64> = (0..4).map(|i| a.at(i, 0)).collect();
        a = CMat::from_fn(4, 2, |i, j| if j == 0 { col[i] } else { col[i] });
        let (q, r) = qr_thin(&a);
        assert!(q.mul_mat(&r).approx_eq(&a, 1e-12));
    }
}
