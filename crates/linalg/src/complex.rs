//! Hand-rolled double-precision complex scalar.
//!
//! The calibration for this reproduction calls for hand-rolling the linear
//! algebra stack, so we provide our own complex type rather than depending on
//! `num-complex`. [`C64`] is a plain `Copy` struct with the full arithmetic
//! operator set, polar helpers, and the handful of transcendental functions
//! quantum gate construction needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-15);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`C64`].
///
/// ```
/// use gleipnir_linalg::{c64, C64};
/// assert_eq!(c64(1.0, -2.0), C64::new(1.0, -2.0));
/// ```
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`, a unit-modulus phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − i·im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for overflow safety.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return C64::ZERO;
        }
        Self::from_polar(r.sqrt(), 0.5 * self.arg())
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// `self * other.conj()`, the elementary inner-product kernel.
    #[inline(always)]
    pub fn mul_conj(self, other: Self) -> Self {
        // self * conj(other)
        c64(
            self.re * other.re + self.im * other.im,
            self.im * other.re - self.re * other.im,
        )
    }

    /// Fused multiply-add convenience: `self + a * b`.
    #[inline(always)]
    pub fn add_prod(self, a: Self, b: Self) -> Self {
        c64(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns true when `|self − other| ≤ tol` componentwise.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 || self.im.is_nan() {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}-{}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, rhs: C64) -> C64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, rhs: C64) -> C64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        c64(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, rhs: f64) -> C64 {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, rhs: f64) -> C64 {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn div(self, rhs: f64) -> C64 {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Add<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, rhs: C64) -> C64 {
        c64(self + rhs.re, rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constants_behave() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::ONE.conj(), C64::ONE);
        assert_eq!(C64::I.conj(), -C64::I);
    }

    #[test]
    fn arithmetic_identities() {
        let a = c64(1.5, -2.5);
        let b = c64(-0.25, 3.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a * a.inv()).approx_eq(C64::ONE, TOL));
        assert!((-a + a).approx_eq(C64::ZERO, TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = c64(-1.0, 1.0);
        let w = C64::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(w, TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            c64(4.0, 0.0),
            c64(0.0, 2.0),
            c64(-3.0, 4.0),
            c64(-1.0, -1.0),
        ] {
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt({z}) = {s}");
        }
        assert_eq!(C64::ZERO.sqrt(), C64::ZERO);
    }

    #[test]
    fn exp_of_pi_i() {
        let e = c64(0.0, std::f64::consts::PI).exp();
        assert!(e.approx_eq(-C64::ONE, TOL));
    }

    #[test]
    fn mul_conj_matches_definition() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -4.0);
        assert!(a.mul_conj(b).approx_eq(a * b.conj(), TOL));
    }

    #[test]
    fn add_prod_matches_definition() {
        let acc = c64(0.5, 0.5);
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -4.0);
        assert!(acc.add_prod(a, b).approx_eq(acc + a * b, TOL));
    }

    #[test]
    fn scalar_ops() {
        let a = c64(2.0, -6.0);
        assert_eq!(a * 0.5, c64(1.0, -3.0));
        assert_eq!(a / 2.0, c64(1.0, -3.0));
        assert_eq!(0.5 * a, c64(1.0, -3.0));
        assert_eq!(a + 1.0, c64(3.0, -6.0));
        assert_eq!(a - 1.0, c64(1.0, -6.0));
        assert_eq!(1.0 + a, c64(3.0, -6.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(c64(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_folds() {
        let total: C64 = (0..4).map(|k| c64(k as f64, -(k as f64))).sum();
        assert_eq!(total, c64(6.0, -6.0));
    }
}
