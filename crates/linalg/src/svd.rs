//! Singular value decomposition for complex matrices.
//!
//! Two routes are provided:
//!
//! * [`svd_gram`] — the production route used by the MPS truncation hot
//!   path. It eigendecomposes the Gram matrix (`M†M` or `MM†`, whichever is
//!   smaller) and reconstructs the other singular-vector set by applying
//!   `M`. Singular values below `rank_tol · σ_max` get no vectors; for the
//!   MPS use case (and the paper's truncation rule) only the retained
//!   directions ever need vectors, while the *discarded weight*
//!   `‖M‖²_F − Σ_kept σ²` is exact by construction.
//! * [`svd_jacobi`] — a one-sided Jacobi SVD. Slower but accurate for small
//!   singular values; used as the test oracle and in the ablation bench.

use crate::eigh::{eigh, EigError};
use crate::{c64, CMat};

/// Relative rank cutoff used by [`svd_gram`]: singular values below
/// `RANK_TOL · σ_max` are dropped (their mass goes to `discarded_sqr`).
///
/// The Gram route squares the condition number, so singular values below
/// `≈ √ε · σ_max ≈ 1e-8 · σ_max` carry no reliable information; the cutoff
/// sits safely above that floor. The discarded mass these directions
/// represent (`≤ n · (1e-7·σ_max)²`) is negligible for the MPS truncation
/// bounds this routine feeds.
pub const RANK_TOL: f64 = 1e-7;

/// Relative rank cutoff for [`svd_jacobi`], which computes small singular
/// values to full relative precision.
pub const JACOBI_RANK_TOL: f64 = 1e-12;

/// A (possibly rank-truncated) singular value decomposition `A ≈ U·Σ·V†`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, shape `m × r`.
    pub u: CMat,
    /// Singular values for the `r` retained directions, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors, shape `n × r` (so `A ≈ U·diag(σ)·V†`).
    pub v: CMat,
    /// Squared Frobenius mass not captured by the retained directions
    /// (`‖A‖²_F − Σ σᵢ²`, clamped to zero).
    pub discarded_sqr: f64,
}

impl Svd {
    /// Number of retained singular directions.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Reconstructs `U·diag(σ)·V†`.
    pub fn reconstruct(&self) -> CMat {
        let mut us = self.u.clone();
        for j in 0..self.sigma.len() {
            for i in 0..us.rows() {
                let v = us.at(i, j).scale(self.sigma[j]);
                us.set(i, j, v);
            }
        }
        us.mul_adjoint(&self.v)
    }
}

/// Gram-matrix SVD (production route).
///
/// Retains every singular direction with `σ > RANK_TOL · σ_max` (all of them
/// for well-conditioned inputs). The sum of retained `σ²` plus
/// `discarded_sqr` equals `‖A‖²_F` to machine precision.
///
/// # Errors
///
/// Propagates [`EigError`] from the Hermitian eigendecomposition.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::{c64, svd_gram, CMat};
///
/// let a = CMat::from_fn(3, 2, |i, j| c64((i + j) as f64, i as f64 - j as f64));
/// let svd = svd_gram(&a)?;
/// assert!(svd.reconstruct().approx_eq(&a, 1e-10));
/// # Ok::<(), gleipnir_linalg::EigError>(())
/// ```
pub fn svd_gram(a: &CMat) -> Result<Svd, EigError> {
    let m = a.rows();
    let n = a.cols();
    let frob_sqr: f64 = a.as_slice().iter().map(|z| z.norm_sqr()).sum();
    if m == 0 || n == 0 || frob_sqr == 0.0 {
        return Ok(Svd {
            u: CMat::zeros(m, 0),
            sigma: Vec::new(),
            v: CMat::zeros(n, 0),
            discarded_sqr: frob_sqr,
        });
    }

    // Eigendecompose the smaller Gram matrix.
    let use_right = n <= m; // G = A†A (n×n) when n ≤ m, else G = AA† (m×m)
    let g = if use_right {
        a.adjoint_mul(a)
    } else {
        a.mul_adjoint(a)
    }
    .hermitize();
    let (vals, vecs) = eigh(&g)?;
    let dim = vals.len();

    // Descending order with clamped eigenvalues.
    let mut order: Vec<usize> = (0..dim).collect();
    order.sort_by(|&i, &j| vals[j].partial_cmp(&vals[i]).expect("non-NaN"));
    let sigma_max = vals[order[0]].max(0.0).sqrt();
    let cutoff = RANK_TOL * sigma_max;

    let mut sigma = Vec::new();
    let mut kept_cols = Vec::new();
    for &idx in &order {
        let s = vals[idx].max(0.0).sqrt();
        if s > cutoff {
            sigma.push(s);
            kept_cols.push(idx);
        }
    }
    let r = sigma.len();

    // Known-side singular vectors.
    let known = CMat::from_fn(dim, r, |i, j| vecs.at(i, kept_cols[j]));
    // Other side: columns (A·vᵢ)/σᵢ (or (A†·uᵢ)/σᵢ).
    let (u, v) = if use_right {
        let av = a.mul_mat(&known);
        let mut u = av;
        for j in 0..r {
            let inv = 1.0 / sigma[j];
            for i in 0..m {
                let x = u.at(i, j).scale(inv);
                u.set(i, j, x);
            }
        }
        (u, known)
    } else {
        let atu = a.adjoint_mul(&known);
        let mut v = atu;
        for j in 0..r {
            let inv = 1.0 / sigma[j];
            for i in 0..n {
                let x = v.at(i, j).scale(inv);
                v.set(i, j, x);
            }
        }
        (known, v)
    };

    let kept_sqr: f64 = sigma.iter().map(|s| s * s).sum();
    let discarded_sqr = (frob_sqr - kept_sqr).max(0.0);
    Ok(Svd {
        u,
        sigma,
        v,
        discarded_sqr,
    })
}

/// One-sided Jacobi SVD (reference route).
///
/// Iteratively rotates column pairs until all pairs are numerically
/// orthogonal, then reads off `σⱼ = ‖colⱼ‖` and `U = col/σ`. Accurate for
/// small singular values; used as the test oracle.
///
/// For `m < n` inputs the routine runs on `A†` and swaps the factors.
pub fn svd_jacobi(a: &CMat) -> Svd {
    let m = a.rows();
    let n = a.cols();
    if m < n {
        let s = svd_jacobi(&a.adjoint());
        return Svd {
            u: s.v,
            sigma: s.sigma,
            v: s.u,
            discarded_sqr: s.discarded_sqr,
        };
    }
    let frob_sqr: f64 = a.as_slice().iter().map(|z| z.norm_sqr()).sum();
    let mut work = a.clone();
    let mut v = CMat::identity(n);
    let tol = 1e-14;
    let max_sweeps = 60;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                // 2×2 Gram block of columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = c64(0.0, 0.0);
                for i in 0..m {
                    let cp = work.at(i, p);
                    let cq = work.at(i, q);
                    app += cp.norm_sqr();
                    aqq += cq.norm_sqr();
                    apq = apq.add_prod(cp.conj(), cq);
                }
                let denom = (app * aqq).sqrt();
                if denom == 0.0 || apq.abs() <= tol * denom {
                    continue;
                }
                off = off.max(apq.abs() / denom);
                // Complex Jacobi rotation R = diag(e^{iφ}, 1)·J(θ) zeroing
                // the off-diagonal Gram entry, where φ = arg(apq) and J is
                // the real symmetric Jacobi rotation for
                // [[app, |apq|], [|apq|, aqq]].
                let phi = apq.arg();
                let abs_apq = apq.abs();
                let tau = (aqq - app) / (2.0 * abs_apq);
                let t = {
                    let s = if tau >= 0.0 { 1.0 } else { -1.0 };
                    s / (tau.abs() + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // col_p ← c·e^{iφ}·col_p − s·col_q
                // col_q ← s·e^{iφ}·col_p + c·col_q
                let eip = c64(phi.cos(), phi.sin());
                for i in 0..m {
                    let cp = eip * work.at(i, p);
                    let cq = work.at(i, q);
                    work.set(i, p, cp.scale(c) - cq.scale(s));
                    work.set(i, q, cp.scale(s) + cq.scale(c));
                }
                for i in 0..n {
                    let vp = eip * v.at(i, p);
                    let vq = v.at(i, q);
                    v.set(i, p, vp.scale(c) - vq.scale(s));
                    v.set(i, q, vp.scale(s) + vq.scale(c));
                }
            }
        }
        if off < tol {
            break;
        }
    }

    // Extract singular values and left vectors.
    let mut pairs: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let s: f64 = (0..m).map(|i| work.at(i, j).norm_sqr()).sum();
            (s.sqrt(), j)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("non-NaN"));

    let sigma_max = pairs.first().map_or(0.0, |p| p.0);
    let cutoff = JACOBI_RANK_TOL * sigma_max;
    let kept: Vec<(f64, usize)> = pairs.into_iter().filter(|p| p.0 > cutoff).collect();
    let r = kept.len();
    let sigma: Vec<f64> = kept.iter().map(|p| p.0).collect();
    let u = CMat::from_fn(m, r, |i, j| work.at(i, kept[j].1).scale(1.0 / sigma[j]));
    let vkept = CMat::from_fn(n, r, |i, j| v.at(i, kept[j].1));
    let kept_sqr: f64 = sigma.iter().map(|s| s * s).sum();
    Svd {
        u,
        sigma,
        v: vkept,
        discarded_sqr: (frob_sqr - kept_sqr).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(m: usize, n: usize, seed: u64) -> CMat {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        CMat::from_fn(m, n, |_, _| c64(next(), next()))
    }

    fn check_svd(a: &CMat, svd: &Svd, tol: f64) {
        let r = svd.rank();
        assert!(
            svd.u.adjoint_mul(&svd.u).approx_eq(&CMat::identity(r), tol),
            "U not orthonormal"
        );
        assert!(
            svd.v.adjoint_mul(&svd.v).approx_eq(&CMat::identity(r), tol),
            "V not orthonormal"
        );
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-14, "sigma not descending");
        }
        assert!(
            svd.reconstruct().approx_eq(a, tol * 10.0),
            "reconstruction failed"
        );
    }

    #[test]
    fn gram_svd_random_tall() {
        let a = pseudo_random(6, 3, 10);
        let svd = svd_gram(&a).unwrap();
        check_svd(&a, &svd, 1e-9);
        assert!(svd.discarded_sqr < 1e-12);
    }

    #[test]
    fn gram_svd_random_wide() {
        let a = pseudo_random(3, 8, 11);
        let svd = svd_gram(&a).unwrap();
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn jacobi_svd_random() {
        let a = pseudo_random(5, 4, 12);
        let svd = svd_jacobi(&a);
        check_svd(&a, &svd, 1e-10);
    }

    #[test]
    fn gram_and_jacobi_agree_on_singular_values() {
        let a = pseudo_random(7, 5, 13);
        let g = svd_gram(&a).unwrap();
        let j = svd_jacobi(&a);
        assert_eq!(g.rank(), j.rank());
        for (x, y) in g.sigma.iter().zip(&j.sigma) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        // Outer product has rank 1.
        let u = pseudo_random(5, 1, 14);
        let v = pseudo_random(1, 4, 15);
        let a = u.mul_mat(&v);
        let svd = svd_gram(&a).unwrap();
        assert_eq!(svd.rank(), 1);
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = CMat::zeros(3, 3);
        let svd = svd_gram(&a).unwrap();
        assert_eq!(svd.rank(), 0);
        assert_eq!(svd.discarded_sqr, 0.0);
    }

    #[test]
    fn singular_values_of_unitary_are_ones() {
        // Hadamard-like unitary.
        let s = 1.0 / 2f64.sqrt();
        let h = CMat::from_rows(&[
            vec![c64(s, 0.0), c64(s, 0.0)],
            vec![c64(s, 0.0), c64(-s, 0.0)],
        ]);
        let svd = svd_gram(&h).unwrap();
        for sv in &svd.sigma {
            assert!((sv - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn frobenius_mass_is_conserved() {
        let a = pseudo_random(6, 6, 16);
        let svd = svd_gram(&a).unwrap();
        let frob_sqr: f64 = a.as_slice().iter().map(|z| z.norm_sqr()).sum();
        let kept: f64 = svd.sigma.iter().map(|s| s * s).sum();
        assert!((frob_sqr - kept - svd.discarded_sqr).abs() < 1e-10);
    }
}
