//! Quantum-flavoured matrix utilities: partial trace, trace norms, trace
//! distance, and fidelity.
//!
//! ## Qubit ordering convention
//!
//! Throughout the workspace, **qubit 0 is the most significant bit** of a
//! basis-state index: for `n` qubits, the computational basis state
//! `|b₀ b₁ … b_{n−1}⟩` has index `Σ_k b_k · 2^{n−1−k}`. Equivalently, a state
//! is `q₀ ⊗ q₁ ⊗ …` with earlier qubits on the left of the Kronecker
//! product. This matches the paper's `|i₁ i₂ ⋯ i_n⟩` notation.

use crate::eigh::{eigh_vals, herm_sqrt, EigError};
use crate::CMat;

/// Partial trace of an `n`-qubit density matrix, keeping the qubits listed
/// in `keep` (strictly ascending) and tracing out the rest.
///
/// The result is a `2^keep.len()` density matrix whose qubit order is the
/// order of `keep` (still MSB-first).
///
/// # Panics
///
/// Panics if `rho` is not `2ⁿ × 2ⁿ`, or `keep` is not strictly ascending
/// within range.
///
/// # Examples
///
/// ```
/// use gleipnir_linalg::{c64, ptrace_keep, CMat};
///
/// // Bell state (|00⟩+|11⟩)/√2: each qubit alone is maximally mixed.
/// let mut rho = CMat::zeros(4, 4);
/// for (i, j) in [(0, 0), (0, 3), (3, 0), (3, 3)] {
///     rho.set(i, j, c64(0.5, 0.0));
/// }
/// let r0 = ptrace_keep(&rho, 2, &[0]);
/// assert!((r0.at(0, 0).re - 0.5).abs() < 1e-12);
/// assert!((r0.at(1, 1).re - 0.5).abs() < 1e-12);
/// assert!(r0.at(0, 1).abs() < 1e-12);
/// ```
pub fn ptrace_keep(rho: &CMat, n_qubits: usize, keep: &[usize]) -> CMat {
    let dim = 1usize << n_qubits;
    assert_eq!(rho.rows(), dim, "density matrix dimension mismatch");
    assert_eq!(rho.cols(), dim, "density matrix dimension mismatch");
    for w in keep.windows(2) {
        assert!(w[0] < w[1], "keep indices must be strictly ascending");
    }
    if let Some(&last) = keep.last() {
        assert!(last < n_qubits, "keep index out of range");
    }

    let k = keep.len();
    let kd = 1usize << k;
    let traced: Vec<usize> = (0..n_qubits).filter(|q| !keep.contains(q)).collect();
    let t = traced.len();
    let td = 1usize << t;

    // Bit position (from MSB) q occupies shift n−1−q in the full index.
    let keep_shift: Vec<usize> = keep.iter().map(|&q| n_qubits - 1 - q).collect();
    let traced_shift: Vec<usize> = traced.iter().map(|&q| n_qubits - 1 - q).collect();

    // full index from (kept bits kb, traced bits tb); kept/traced bits are
    // MSB-first within their own groups.
    let compose = |kb: usize, tb: usize| -> usize {
        let mut idx = 0usize;
        for (pos, &sh) in keep_shift.iter().enumerate() {
            idx |= ((kb >> (k - 1 - pos)) & 1) << sh;
        }
        for (pos, &sh) in traced_shift.iter().enumerate() {
            idx |= ((tb >> (t - 1 - pos)) & 1) << sh;
        }
        idx
    };

    let mut out = CMat::zeros(kd, kd);
    for kb_r in 0..kd {
        for kb_c in 0..kd {
            let mut acc = crate::C64::ZERO;
            for tb in 0..td {
                acc += rho.at(compose(kb_r, tb), compose(kb_c, tb));
            }
            out.set(kb_r, kb_c, acc);
        }
    }
    out
}

/// Trace norm `‖M‖₁ = Σ|λᵢ|` of a Hermitian matrix.
///
/// # Errors
///
/// Propagates [`EigError`] from the eigendecomposition.
pub fn trace_norm_hermitian(m: &CMat) -> Result<f64, EigError> {
    Ok(eigh_vals(&m.hermitize())?.iter().map(|l| l.abs()).sum())
}

/// Trace distance `T(ρ, σ) = ½‖ρ − σ‖₁` between two Hermitian matrices.
///
/// This is the paper's error metric between quantum states (§2.3).
///
/// # Errors
///
/// Propagates [`EigError`] from the eigendecomposition.
pub fn trace_distance(rho: &CMat, sigma: &CMat) -> Result<f64, EigError> {
    Ok(0.5 * trace_norm_hermitian(&(rho - sigma))?)
}

/// Uhlmann fidelity `F(ρ, σ) = tr √(√ρ · σ · √ρ)` between density matrices.
///
/// # Errors
///
/// Propagates [`EigError`] from the eigendecompositions.
pub fn fidelity(rho: &CMat, sigma: &CMat) -> Result<f64, EigError> {
    let sr = herm_sqrt(&rho.hermitize())?;
    let inner = sr.mul_mat(sigma).mul_mat(&sr).hermitize();
    let s = herm_sqrt(&inner)?;
    Ok(s.trace().re)
}

/// Purity `tr(ρ²)` of a density matrix.
pub fn purity(rho: &CMat) -> f64 {
    rho.trace_mul(rho).re
}

/// Checks that `rho` is a density matrix: Hermitian, unit trace, and PSD up
/// to tolerance `tol`.
pub fn is_density_matrix(rho: &CMat, tol: f64) -> bool {
    if !rho.is_square() || !rho.is_hermitian(tol) {
        return false;
    }
    if (rho.trace().re - 1.0).abs() > tol {
        return false;
    }
    match eigh_vals(&rho.hermitize()) {
        Ok(vals) => vals.iter().all(|&l| l > -tol),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{c64, C64};

    fn bell_rho() -> CMat {
        let mut rho = CMat::zeros(4, 4);
        for (i, j) in [(0, 0), (0, 3), (3, 0), (3, 3)] {
            rho.set(i, j, c64(0.5, 0.0));
        }
        rho
    }

    fn ket_rho(n: usize, k: usize) -> CMat {
        let mut rho = CMat::zeros(1 << n, 1 << n);
        rho.set(k, k, C64::ONE);
        rho
    }

    #[test]
    fn ptrace_of_product_state() {
        // |01⟩⟨01| → keep qubit 0 gives |0⟩⟨0|, keep qubit 1 gives |1⟩⟨1|.
        let rho = ket_rho(2, 0b01);
        let r0 = ptrace_keep(&rho, 2, &[0]);
        assert!((r0.at(0, 0).re - 1.0).abs() < 1e-14);
        let r1 = ptrace_keep(&rho, 2, &[1]);
        assert!((r1.at(1, 1).re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn ptrace_bell_is_maximally_mixed() {
        let rho = bell_rho();
        for q in 0..2 {
            let r = ptrace_keep(&rho, 2, &[q]);
            assert!((r.at(0, 0).re - 0.5).abs() < 1e-14);
            assert!((r.at(1, 1).re - 0.5).abs() < 1e-14);
            assert!(r.at(0, 1).abs() < 1e-14);
        }
    }

    #[test]
    fn ptrace_keep_all_is_identity_map() {
        let rho = bell_rho();
        let r = ptrace_keep(&rho, 2, &[0, 1]);
        assert!(r.approx_eq(&rho, 1e-14));
    }

    #[test]
    fn ptrace_keep_none_is_trace() {
        let rho = bell_rho();
        let r = ptrace_keep(&rho, 2, &[]);
        assert_eq!(r.rows(), 1);
        assert!((r.at(0, 0).re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn ptrace_preserves_trace() {
        let rho = bell_rho();
        let r = ptrace_keep(&rho, 2, &[1]);
        assert!((r.trace().re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn trace_distance_of_orthogonal_states_is_one() {
        let a = ket_rho(1, 0);
        let b = ket_rho(1, 1);
        assert!((trace_distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_distance_of_identical_states_is_zero() {
        let a = bell_rho();
        assert!(trace_distance(&a, &a).unwrap() < 1e-12);
    }

    #[test]
    fn trace_distance_pure_states_formula() {
        // For pure states: T = √(1 − |⟨ψ|φ⟩|²).
        // |ψ⟩ = |0⟩, |φ⟩ = (|0⟩+|1⟩)/√2 → |⟨ψ|φ⟩|² = 1/2 → T = √(1/2).
        let psi = ket_rho(1, 0);
        let mut phi = CMat::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                phi.set(i, j, c64(0.5, 0.0));
            }
        }
        let t = trace_distance(&psi, &phi).unwrap();
        assert!((t - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fidelity_extremes() {
        let a = ket_rho(1, 0);
        let b = ket_rho(1, 1);
        assert!((fidelity(&a, &a).unwrap() - 1.0).abs() < 1e-9);
        assert!(fidelity(&a, &b).unwrap() < 1e-9);
    }

    #[test]
    fn purity_bounds() {
        assert!((purity(&bell_rho()) - 1.0).abs() < 1e-12); // pure
        let mixed = CMat::identity(2).scaled(c64(0.5, 0.0));
        assert!((purity(&mixed) - 0.5).abs() < 1e-12); // maximally mixed
    }

    #[test]
    fn density_matrix_validation() {
        assert!(is_density_matrix(&bell_rho(), 1e-10));
        let not_unit_trace = CMat::identity(2);
        assert!(!is_density_matrix(&not_unit_trace, 1e-10));
        let mut not_psd = CMat::zeros(2, 2);
        not_psd.set(0, 0, c64(1.5, 0.0));
        not_psd.set(1, 1, c64(-0.5, 0.0));
        assert!(!is_density_matrix(&not_psd, 1e-10));
    }
}
