//! Embedding complex Hermitian matrices into real symmetric ones.
//!
//! The SDP solver works over real symmetric blocks. A complex Hermitian
//! matrix `H = A + iB` (with `A` symmetric, `B` antisymmetric) embeds as
//!
//! ```text
//!        ⎡ A  −B ⎤
//! E(H) = ⎣ B   A ⎦
//! ```
//!
//! which is real symmetric, and `H ⪰ 0 ⟺ E(H) ⪰ 0`. Traces double:
//! `tr E(H) = 2·tr H`, and for Hermitian `G`, `tr(G·H) = ½·tr(E(G)·E(H))`.
//! The inverse map averages the two diagonal (resp. off-diagonal) blocks,
//! which also projects out the embedding's redundant degrees of freedom.

use crate::{c64, CMat, RMat};

/// Embeds a complex Hermitian (or arbitrary complex) matrix into its real
/// representation `[[A, −B], [B, A]]`.
///
/// # Panics
///
/// Panics if the input is not square.
pub fn herm_to_real_sym(h: &CMat) -> RMat {
    assert!(h.is_square(), "embedding requires a square matrix");
    let n = h.rows();
    let mut e = RMat::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            let z = h.at(i, j);
            e.set(i, j, z.re);
            e.set(n + i, n + j, z.re);
            e.set(i, n + j, -z.im);
            e.set(n + i, j, z.im);
        }
    }
    e
}

/// Recovers a complex matrix from its real embedding, averaging the
/// redundant blocks (the adjoint of [`herm_to_real_sym`] up to scale).
///
/// # Panics
///
/// Panics if the input is not square with even dimension.
pub fn real_sym_to_herm(e: &RMat) -> CMat {
    assert!(e.is_square(), "inverse embedding requires a square matrix");
    let n2 = e.rows();
    assert!(n2 % 2 == 0, "inverse embedding requires even dimension");
    let n = n2 / 2;
    CMat::from_fn(n, n, |i, j| {
        let re = 0.5 * (e.at(i, j) + e.at(n + i, n + j));
        let im = 0.5 * (e.at(n + i, j) - e.at(i, n + j));
        c64(re, im)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh::{eigh_vals, sym_eigvals};
    use crate::C64;

    fn hermitian_example() -> CMat {
        CMat::from_rows(&[
            vec![c64(2.0, 0.0), c64(1.0, -1.0)],
            vec![c64(1.0, 1.0), c64(3.0, 0.0)],
        ])
    }

    #[test]
    fn embedding_is_symmetric() {
        let e = herm_to_real_sym(&hermitian_example());
        assert!(e.approx_eq(&e.transpose(), 1e-15));
    }

    #[test]
    fn round_trip() {
        let h = hermitian_example();
        let back = real_sym_to_herm(&herm_to_real_sym(&h));
        assert!(back.approx_eq(&h, 1e-15));
    }

    #[test]
    fn eigenvalues_double_up() {
        let h = hermitian_example();
        let ch = eigh_vals(&h).unwrap();
        let rh = sym_eigvals(&herm_to_real_sym(&h)).unwrap();
        // Each complex eigenvalue appears twice in the embedding.
        assert!((rh[0] - ch[0]).abs() < 1e-12);
        assert!((rh[1] - ch[0]).abs() < 1e-12);
        assert!((rh[2] - ch[1]).abs() < 1e-12);
        assert!((rh[3] - ch[1]).abs() < 1e-12);
    }

    #[test]
    fn trace_inner_product_halves() {
        let g = hermitian_example();
        let h = CMat::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.0, 2.0)],
            vec![c64(0.0, -2.0), c64(-1.0, 0.0)],
        ]);
        let complex_ip = g.trace_mul(&h).re;
        let real_ip = herm_to_real_sym(&g).trace_mul(&herm_to_real_sym(&h));
        assert!((real_ip - 2.0 * complex_ip).abs() < 1e-12);
    }

    #[test]
    fn embedding_respects_products() {
        let g = hermitian_example();
        let h = CMat::from_rows(&[vec![C64::ONE, C64::I], vec![-C64::I, C64::ZERO]]);
        let lhs = herm_to_real_sym(&g.mul_mat(&h));
        let rhs = herm_to_real_sym(&g).mul_mat(&herm_to_real_sym(&h));
        assert!(lhs.approx_eq(&rhs, 1e-13));
    }
}
