//! Property-based tests for the linear-algebra substrate.

use gleipnir_linalg::{
    c64, eigh, eigh_vals, herm_to_real_sym, lq_thin, ptrace_keep, qr_thin, real_sym_to_herm,
    svd_gram, svd_jacobi, sym_eig, trace_distance, CMat, RMat, C64,
};
use proptest::prelude::*;

fn arb_c64() -> impl Strategy<Value = C64> {
    (-2.0..2.0f64, -2.0..2.0f64).prop_map(|(re, im)| c64(re, im))
}

fn arb_cmat(rows: usize, cols: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(arb_c64(), rows * cols)
        .prop_map(move |data| CMat::from_flat(rows, cols, data))
}

fn arb_hermitian(n: usize) -> impl Strategy<Value = CMat> {
    arb_cmat(n, n).prop_map(|m| (&m + &m.adjoint()).scaled(c64(0.5, 0.0)))
}

fn arb_density(n_qubits: usize) -> impl Strategy<Value = CMat> {
    let d = 1usize << n_qubits;
    arb_cmat(d, d).prop_map(move |m| {
        // ρ = M·M†/tr is a valid density matrix for any nonzero M.
        let p = m.mul_adjoint(&m);
        let t = p.trace().re.max(1e-9);
        p.scaled(c64(1.0 / t, 0.0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in arb_cmat(3, 4), b in arb_cmat(4, 2), c in arb_cmat(2, 5)) {
        let lhs = a.mul_mat(&b).mul_mat(&c);
        let rhs = a.mul_mat(&b.mul_mat(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn adjoint_reverses_products(a in arb_cmat(3, 4), b in arb_cmat(4, 3)) {
        let lhs = a.mul_mat(&b).adjoint();
        let rhs = b.adjoint().mul_mat(&a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn kron_mixed_product(a in arb_cmat(2, 2), b in arb_cmat(2, 2), c in arb_cmat(2, 2), d in arb_cmat(2, 2)) {
        let lhs = a.kron(&b).mul_mat(&c.kron(&d));
        let rhs = a.mul_mat(&c).kron(&b.mul_mat(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn eigh_reconstructs(h in arb_hermitian(5)) {
        let (vals, v) = eigh(&h).unwrap();
        prop_assert!(v.is_unitary(1e-9));
        let recon = v.mul_mat(&CMat::diag_real(&vals)).mul_adjoint(&v);
        prop_assert!(recon.approx_eq(&h, 1e-8));
    }

    #[test]
    fn eigh_trace_invariant(h in arb_hermitian(6)) {
        let vals = eigh_vals(&h).unwrap();
        let sum: f64 = vals.iter().sum();
        prop_assert!((sum - h.trace().re).abs() < 1e-8);
    }

    #[test]
    fn qr_reconstructs(a in arb_cmat(5, 3)) {
        let (q, r) = qr_thin(&a);
        prop_assert!(q.adjoint_mul(&q).approx_eq(&CMat::identity(3), 1e-9));
        prop_assert!(q.mul_mat(&r).approx_eq(&a, 1e-9));
    }

    #[test]
    fn lq_reconstructs(a in arb_cmat(3, 5)) {
        let (l, q) = lq_thin(&a);
        prop_assert!(q.mul_adjoint(&q).approx_eq(&CMat::identity(3), 1e-9));
        prop_assert!(l.mul_mat(&q).approx_eq(&a, 1e-9));
    }

    #[test]
    fn svd_gram_reconstructs(a in arb_cmat(4, 4)) {
        let svd = svd_gram(&a).unwrap();
        // Residual is bounded by the discarded mass (usually ~0 here).
        let resid = (&svd.reconstruct() - &a).frobenius_norm();
        prop_assert!(resid <= svd.discarded_sqr.sqrt() + 1e-7);
    }

    #[test]
    fn svd_routes_agree(a in arb_cmat(5, 3)) {
        let g = svd_gram(&a).unwrap();
        let j = svd_jacobi(&a);
        // Compare singular values on the common prefix.
        for (x, y) in g.sigma.iter().zip(&j.sigma) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y));
        }
    }

    #[test]
    fn trace_distance_is_a_metric(a in arb_density(2), b in arb_density(2), c in arb_density(2)) {
        let dab = trace_distance(&a, &b).unwrap();
        let dba = trace_distance(&b, &a).unwrap();
        let dac = trace_distance(&a, &c).unwrap();
        let dcb = trace_distance(&c, &b).unwrap();
        prop_assert!((dab - dba).abs() < 1e-10);           // symmetry
        prop_assert!(dab <= dac + dcb + 1e-10);            // triangle
        prop_assert!(dab >= -1e-12 && dab <= 1.0 + 1e-10); // range
        prop_assert!(trace_distance(&a, &a).unwrap() < 1e-10);
    }

    #[test]
    fn ptrace_is_trace_preserving(rho in arb_density(3)) {
        for keep in [&[0usize][..], &[1], &[2], &[0, 1], &[0, 2], &[1, 2]] {
            let r = ptrace_keep(&rho, 3, keep);
            prop_assert!((r.trace().re - 1.0).abs() < 1e-9);
            prop_assert!(r.is_hermitian(1e-9));
        }
    }

    #[test]
    fn ptrace_contracts_trace_distance(a in arb_density(2), b in arb_density(2)) {
        // The paper's Theorem 6.1 proof relies on this contraction.
        let full = trace_distance(&a, &b).unwrap();
        let local = trace_distance(
            &ptrace_keep(&a, 2, &[0]),
            &ptrace_keep(&b, 2, &[0]),
        ).unwrap();
        prop_assert!(local <= full + 1e-9);
    }

    #[test]
    fn embedding_round_trip(h in arb_hermitian(3)) {
        let e = herm_to_real_sym(&h);
        prop_assert!(e.approx_eq(&e.transpose(), 1e-12));
        prop_assert!(real_sym_to_herm(&e).approx_eq(&h, 1e-12));
    }

    #[test]
    fn embedding_preserves_psd(m in arb_cmat(3, 3)) {
        // M·M† is PSD; its embedding must be PSD too.
        let psd = m.mul_adjoint(&m);
        let e = herm_to_real_sym(&psd);
        let (vals, _) = sym_eig(&e).unwrap();
        prop_assert!(vals[0] > -1e-9);
    }

    #[test]
    fn cholesky_solve_is_inverse(m in arb_cmat(4, 4)) {
        // Build a real SPD matrix from the embedding of M·M† + I.
        let mut psd = m.mul_adjoint(&m);
        for i in 0..4 {
            let v = psd.at(i, i) + C64::ONE;
            psd.set(i, i, v);
        }
        let a = herm_to_real_sym(&psd);
        let b: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let x = a.solve_spd(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-7);
        }
    }
}

#[test]
fn rmat_identity_solve() {
    let a = RMat::identity(4);
    let b = vec![1.0, 2.0, 3.0, 4.0];
    assert_eq!(a.solve_spd(&b).unwrap(), b);
}
