//! Bit-exactness harness for the structure-exploiting `RMat` kernels.
//!
//! The solver's determinism contract (the pipeline fixture, warm/cold ε
//! equality, the content-addressed certificate cache) requires that the
//! unrolled/sliced kernels produce **bit-identical** results to the
//! straightforward scalar loops they replaced — not merely close ones.
//! Every test here compares raw `f64` slices with `==` (no tolerance):
//! the kernels are only allowed to reassociate across *independent* output
//! lanes, never within one accumulation chain, so each output element must
//! come out of the exact same sequence of IEEE-754 operations as the
//! textbook loop.
//!
//! Shapes are drawn from a deterministic LCG and include 1×1, long-thin,
//! short-wide, and the solver's real block sizes (8, 32). The suite runs
//! unchanged under `GLEIPNIR_THREADS=1` and the default thread count (the
//! kernels are single-threaded; CI exercises both settings).

use gleipnir_linalg::{axpy_slice, dot_slice, sym_eig, sym_eigvals, RMat};

/// Deterministic 64-bit LCG (Knuth MMIX constants) — no dev-dependency on
/// an RNG crate, and the stream is identical on every platform.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in [-1, 1), with an exact zero injected ~1/8 of the time so
    /// the zero-skip-removal paths (satellite of the kernel rewrite) see
    /// genuine zeros.
    fn coeff(&mut self) -> f64 {
        let r = self.next_u64();
        if r & 7 == 0 {
            return 0.0;
        }
        (r >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    fn size(&mut self, max: usize) -> usize {
        (self.next_u64() as usize % max) + 1
    }
}

fn random_mat(rng: &mut Lcg, rows: usize, cols: usize) -> RMat {
    RMat::from_fn(rows, cols, |_, _| rng.coeff())
}

/// A symmetric positive-definite matrix with bitwise-mirrored off-diagonal
/// entries (the form every matrix entering `cholesky` has in the solver).
fn random_spd(rng: &mut Lcg, n: usize) -> RMat {
    let b = random_mat(rng, n, n);
    let mut a = RMat::zeros(n, n);
    // aᵢⱼ = Σₖ bᵢₖbⱼₖ accumulated in one fixed order: exactly symmetric
    // bitwise, and diagonally dominant after the +n·I shift.
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += b.at(i, k) * b.at(j, k);
            }
            a.set(i, j, s + if i == j { n as f64 } else { 0.0 });
        }
    }
    a
}

fn assert_bits_eq(got: &RMat, want: &RMat, what: &str) {
    assert_eq!(got.rows(), want.rows(), "{what}: row count");
    assert_eq!(got.cols(), want.cols(), "{what}: col count");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: element {i} differs: {g:e} vs {w:e} \
             (bits {:#018x} vs {:#018x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Reference matmul: the pre-optimization loop nest (row i, then k, then a
/// scalar sweep over j), accumulators initialized to +0.0. The optimized
/// kernel may only differ by skipping/keeping zero `aik` terms and by
/// unrolling over independent j lanes — both bit-neutral.
fn naive_mul_mat(a: &RMat, b: &RMat) -> RMat {
    let mut out = RMat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a.at(i, k);
            for j in 0..b.cols() {
                let v = out.at(i, j) + aik * b.at(k, j);
                out.set(i, j, v);
            }
        }
    }
    out
}

fn naive_mul_vec(a: &RMat, v: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| {
            let mut s = 0.0;
            for k in 0..a.cols() {
                s += a.at(i, k) * v[k];
            }
            s
        })
        .collect()
}

fn naive_trace_mul(a: &RMat, b: &RMat) -> f64 {
    let mut s = 0.0;
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            s += a.at(i, k) * b.at(k, i);
        }
    }
    s
}

fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        s += x * y;
    }
    s
}

fn naive_axpy(y: &mut [f64], s: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += s * xi;
    }
}

/// Reference Cholesky: the textbook forward loop with one sequential
/// subtraction chain per element (the order `cholesky_into` preserves).
fn naive_cholesky(a: &RMat) -> Option<RMat> {
    let n = a.rows();
    let mut l = RMat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.at(i, j);
            for p in 0..j {
                s -= l.at(i, p) * l.at(j, p);
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return None;
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.at(j, j));
            }
        }
    }
    Some(l)
}

fn naive_solve_lower(l: &RMat, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    let mut x = b.to_vec();
    for i in 0..n {
        let mut s = x[i];
        for j in 0..i {
            s -= l.at(i, j) * x[j];
        }
        x[i] = s / l.at(i, i);
    }
    x
}

fn naive_solve_lower_transpose(l: &RMat, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= l.at(j, i) * x[j];
        }
        x[i] = s / l.at(i, i);
    }
    x
}

fn naive_symmetrize(a: &RMat) -> RMat {
    let n = a.rows();
    let mut out = RMat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                out.set(i, j, 0.5 * (a.at(i, i) + a.at(i, i)));
            } else {
                out.set(i, j, 0.5 * (a.at(i, j) + a.at(j, i)));
            }
        }
    }
    out
}

/// Shapes covering the kernels' dispatch boundaries: 1×1, the ≤8 fast
/// path, 9 (first general-path width), the solver's block sizes, odd
/// non-square shapes, and LCG-drawn ones.
fn shapes(rng: &mut Lcg) -> Vec<(usize, usize, usize)> {
    let mut s = vec![
        (1, 1, 1),
        (1, 7, 1),
        (5, 1, 8),
        (2, 3, 4),
        (8, 8, 8),
        (8, 8, 9),
        (3, 9, 17),
        (32, 32, 32),
        (33, 5, 12),
        (4, 31, 1),
    ];
    for _ in 0..6 {
        s.push((rng.size(40), rng.size(40), rng.size(40)));
    }
    s
}

#[test]
fn mul_mat_matches_naive_reference_bitwise() {
    let mut rng = Lcg::new(0x9e3779b97f4a7c15);
    for (m, k, n) in shapes(&mut rng) {
        let a = random_mat(&mut rng, m, k);
        let b = random_mat(&mut rng, k, n);
        assert_bits_eq(&a.mul_mat(&b), &naive_mul_mat(&a, &b), "mul_mat");
        let mut out = RMat::zeros(m, n);
        a.mul_mat_into(&b, &mut out);
        assert_bits_eq(&out, &naive_mul_mat(&a, &b), "mul_mat_into");
    }
}

#[test]
fn mul_vec_matches_naive_reference_bitwise() {
    let mut rng = Lcg::new(0xdeadbeefcafef00d);
    for (m, k, _) in shapes(&mut rng) {
        let a = random_mat(&mut rng, m, k);
        let v: Vec<f64> = (0..k).map(|_| rng.coeff()).collect();
        let got = a.mul_vec(&v);
        let want = naive_mul_vec(&a, &v);
        for (g, w) in got.iter().zip(&want) {
            assert!(g.to_bits() == w.to_bits(), "mul_vec: {g:e} vs {w:e}");
        }
    }
}

#[test]
fn trace_mul_matches_naive_reference_bitwise() {
    let mut rng = Lcg::new(0x0123456789abcdef);
    for (m, k, _) in shapes(&mut rng) {
        let a = random_mat(&mut rng, m, k);
        let b = random_mat(&mut rng, k, m);
        let got = a.trace_mul(&b);
        let want = naive_trace_mul(&a, &b);
        assert!(
            got.to_bits() == want.to_bits(),
            "trace_mul: {got:e} vs {want:e}"
        );
    }
}

#[test]
fn dot_and_axpy_slices_match_naive_reference_bitwise() {
    let mut rng = Lcg::new(0x5555aaaa5555aaaa);
    for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 255] {
        let a: Vec<f64> = (0..len).map(|_| rng.coeff()).collect();
        let b: Vec<f64> = (0..len).map(|_| rng.coeff()).collect();
        let got = dot_slice(&a, &b);
        let want = naive_dot(&a, &b);
        assert!(got.to_bits() == want.to_bits(), "dot_slice len {len}");

        let s = rng.coeff();
        let mut y1 = a.clone();
        let mut y2 = a.clone();
        axpy_slice(&mut y1, s, &b);
        naive_axpy(&mut y2, s, &b);
        for (g, w) in y1.iter().zip(&y2) {
            assert!(g.to_bits() == w.to_bits(), "axpy_slice len {len}");
        }
    }
}

#[test]
fn cholesky_and_triangular_solves_match_naive_reference_bitwise() {
    let mut rng = Lcg::new(0x1357924680135792);
    for n in [1usize, 2, 3, 4, 7, 8, 9, 13, 32] {
        let a = random_spd(&mut rng, n);
        let l = a.cholesky().expect("SPD input factors");
        let l_ref = naive_cholesky(&a).expect("SPD input factors (naive)");
        assert_bits_eq(&l, &l_ref, "cholesky");

        let b: Vec<f64> = (0..n).map(|_| rng.coeff()).collect();
        let fwd = l.solve_lower(&b);
        let fwd_ref = naive_solve_lower(&l, &b);
        for (g, w) in fwd.iter().zip(&fwd_ref) {
            assert!(g.to_bits() == w.to_bits(), "solve_lower n {n}");
        }
        let bwd = l.solve_lower_transpose(&b);
        let bwd_ref = naive_solve_lower_transpose(&l, &b);
        for (g, w) in bwd.iter().zip(&bwd_ref) {
            assert!(g.to_bits() == w.to_bits(), "solve_lower_transpose n {n}");
        }
    }
}

#[test]
fn symmetrize_matches_naive_reference_bitwise() {
    let mut rng = Lcg::new(0xfeedface12345678);
    for n in [1usize, 2, 3, 8, 9, 31, 32] {
        let a = random_mat(&mut rng, n, n);
        assert_bits_eq(&a.symmetrize(), &naive_symmetrize(&a), "symmetrize");
        let mut in_place = a.clone();
        in_place.symmetrize_in_place();
        assert_bits_eq(&in_place, &naive_symmetrize(&a), "symmetrize_in_place");
    }
}

#[test]
fn transpose_mul_self_matches_composed_reference_bitwise() {
    let mut rng = Lcg::new(0xabcdef0987654321);
    for (m, k, _) in shapes(&mut rng) {
        let a = random_mat(&mut rng, m, k);
        let mut got = RMat::zeros(k, k);
        a.transpose_mul_self_into(&mut got);
        // The historical spelling this kernel replaced in `inverse_spd`.
        let want = a.transpose().mul_mat(&a);
        assert_bits_eq(&got, &want, "transpose_mul_self_into");
    }
}

#[test]
fn zero_heavy_inputs_are_bit_stable_without_the_skip() {
    // The dense `mul_mat` path no longer skips `aik == 0.0` terms. An
    // accumulator that starts at +0.0 is unchanged bitwise by adding
    // ±0.0 products, so a zero-heavy matrix must produce the same bits
    // with and without the skip — including the signs of zero outputs.
    let mut rng = Lcg::new(0x2468ace02468ace0);
    for (m, k, n) in [(4, 4, 4), (8, 3, 8), (5, 9, 2)] {
        let mut a = random_mat(&mut rng, m, k);
        // Zero out most of A, keeping a mix of ±0.0.
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = if i % 2 == 0 { 0.0 } else { -0.0 };
            }
        }
        let b = random_mat(&mut rng, k, n);
        assert_bits_eq(&a.mul_mat(&b), &naive_mul_mat(&a, &b), "zero-heavy mul_mat");
    }
}

#[test]
fn eigvals_only_path_matches_full_decomposition_bitwise() {
    // `sym_eigvals` runs the eigenvalue-only Householder reduction
    // (`tred1`: no Q accumulation); `sym_eig` runs the full `tred2`. The
    // tridiagonal `d`/`e` they feed to the QL iteration must be the same
    // bits, so the sorted eigenvalues must agree exactly — including on
    // matrices with zero rows that exercise the `scale == 0` branch.
    let mut rng = Lcg::new(0x13579bdf02468ace);
    for n in [1usize, 2, 3, 5, 8, 17, 32] {
        let a = random_spd(&mut rng, n);
        let vals_only = sym_eigvals(&a).expect("eigvals");
        let (vals_full, _q) = sym_eig(&a).expect("eig");
        assert_eq!(vals_only.len(), vals_full.len());
        for (k, (&lo, &lf)) in vals_only.iter().zip(&vals_full).enumerate() {
            assert!(
                lo.to_bits() == lf.to_bits(),
                "eigenvalue {k} of {n}x{n}: {lo:e} vs {lf:e}"
            );
        }
        // A symmetric indefinite matrix with an exactly-zero row/column.
        let mut b = random_mat(&mut rng, n, n).symmetrize();
        if n > 2 {
            for k in 0..n {
                b.set(1, k, 0.0);
                b.set(k, 1, 0.0);
            }
        }
        let vals_only = sym_eigvals(&b).expect("eigvals");
        let (vals_full, _q) = sym_eig(&b).expect("eig");
        for (&lo, &lf) in vals_only.iter().zip(&vals_full) {
            assert!(lo.to_bits() == lf.to_bits(), "indefinite {n}x{n}");
        }
    }
}
