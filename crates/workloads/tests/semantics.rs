//! Semantic checks of the workload generators against the dense simulator.

use gleipnir_sim::StateVector;
use gleipnir_workloads::{ghz, ising_chain, qaoa_maxcut, Graph};

#[test]
fn ghz_produces_ghz_state() {
    for n in 2..=6 {
        let mut sv = StateVector::zero_state(n);
        sv.run(&ghz(n)).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12, "n={n}");
        assert!((p[(1 << n) - 1] - 0.5).abs() < 1e-12, "n={n}");
        let middle: f64 = p[1..(1 << n) - 1].iter().sum();
        assert!(middle < 1e-12, "n={n}");
    }
}

fn expected_cut(g: &Graph, gamma: f64, beta: f64) -> f64 {
    let n = g.n_vertices();
    let program = qaoa_maxcut(g, &[gamma], &[beta]);
    let mut sv = StateVector::zero_state(n);
    sv.run(&program).unwrap();
    sv.probabilities()
        .iter()
        .enumerate()
        .map(|(idx, pr)| {
            // Amplitude index is MSB-first; Graph::cut_value takes bit v for
            // vertex v, so translate.
            let mut mask = 0usize;
            for v in 0..n {
                if (idx >> (n - 1 - v)) & 1 == 1 {
                    mask |= 1 << v;
                }
            }
            pr * g.cut_value(mask) as f64
        })
        .sum()
}

#[test]
fn tuned_qaoa_beats_random_guessing_on_cut_expectation() {
    // QAOA's defining property: with tuned (γ, β), the expected cut exceeds
    // the random-assignment value |E|/2. Scan a coarse grid for the best.
    let g = Graph::line(6);
    let mut best = 0.0f64;
    for i in 1..8 {
        for j in 1..8 {
            let gamma = i as f64 * std::f64::consts::PI / 8.0;
            let beta = j as f64 * std::f64::consts::PI / 16.0;
            best = best.max(expected_cut(&g, gamma, beta));
        }
    }
    let random_baseline = g.n_edges() as f64 / 2.0;
    assert!(
        best > random_baseline + 0.3,
        "best expected cut {best} vs baseline {random_baseline}"
    );
}

#[test]
fn ising_evolution_is_unitary_and_entangling() {
    let p = ising_chain(4, 3, 1.0, 1.0, 0.1);
    let u = p.unitary().unwrap();
    assert!(u.is_unitary(1e-10));
    // The evolution must leave the computational basis (entanglement
    // builds): no basis state keeps probability 1.
    let mut sv = StateVector::zero_state(4);
    sv.run(&p).unwrap();
    let max_p = sv.probabilities().into_iter().fold(0.0f64, f64::max);
    assert!(max_p < 0.9, "state stayed near a basis state: {max_p}");
}

#[test]
fn qaoa_diagonal_cost_layer_commutes_with_measurement() {
    // With β = 0 the circuit is H-layer + diagonal phases: all cut
    // probabilities stay uniform.
    let g = Graph::cycle(4);
    let program = qaoa_maxcut(&g, &[0.9], &[0.0]);
    let mut sv = StateVector::zero_state(4);
    sv.run(&program).unwrap();
    for pr in sv.probabilities() {
        assert!((pr - 1.0 / 16.0).abs() < 1e-12);
    }
}
