//! Simple undirected graphs for QAOA max-cut instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected simple graph on vertices `0..n`.
///
/// # Examples
///
/// ```
/// use gleipnir_workloads::Graph;
///
/// let line = Graph::line(5);
/// assert_eq!(line.n_vertices(), 5);
/// assert_eq!(line.n_edges(), 4);
///
/// let reg = Graph::random_regular(10, 4, 7).expect("4-regular on 10 vertices");
/// assert!(reg.degrees().iter().all(|&d| d == 4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph from an edge list (self-loops and duplicates
    /// rejected).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices, self-loops, or duplicate edges.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop ({a},{a})");
            assert!(
                seen.insert((a.min(b), a.max(b))),
                "duplicate edge ({a},{b})"
            );
        }
        let edges = edges
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        Graph { n, edges }
    }

    /// The path graph `0 — 1 — ⋯ — (n−1)`.
    pub fn line(n: usize) -> Self {
        Graph::new(n, (1..n).map(|i| (i - 1, i)).collect())
    }

    /// The cycle graph.
    ///
    /// # Panics
    ///
    /// Panics for `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        edges.push((0, n - 1));
        Graph::new(n, edges)
    }

    /// An Erdős–Rényi `G(n, M)` graph with exactly `m` edges, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds `n(n−1)/2`.
    pub fn erdos_renyi_m(n: usize, m: usize, seed: u64) -> Self {
        let max = n * (n - 1) / 2;
        assert!(m <= max, "requested {m} edges but only {max} possible");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<(usize, usize)> = Vec::with_capacity(max);
        for a in 0..n {
            for b in a + 1..n {
                all.push((a, b));
            }
        }
        // Partial Fisher–Yates: draw m edges without replacement.
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(m);
        Graph::new(n, all)
    }

    /// A random `d`-regular graph via the pairing model with retries.
    ///
    /// Returns `None` if `n·d` is odd, `d ≥ n`, or no simple matching was
    /// found within the retry budget (vanishing probability for reasonable
    /// `n`, `d`).
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Option<Self> {
        if n * d % 2 != 0 || d >= n {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        'attempt: for _ in 0..200 {
            // Stubs: d copies of each vertex.
            let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
            // Shuffle.
            for i in (1..stubs.len()).rev() {
                let j = rng.gen_range(0..=i);
                stubs.swap(i, j);
            }
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::with_capacity(n * d / 2);
            for pair in stubs.chunks(2) {
                let (a, b) = (pair[0], pair[1]);
                if a == b || !seen.insert((a.min(b), a.max(b))) {
                    continue 'attempt;
                }
                edges.push((a, b));
            }
            return Some(Graph::new(n, edges));
        }
        None
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, with `a < b` in each pair.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Vertex degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            d[a] += 1;
            d[b] += 1;
        }
        d
    }

    /// The cut value of a vertex bipartition given as a bitmask
    /// (bit `v` set ⇒ vertex `v` on side 1). Used by QAOA tests.
    pub fn cut_value(&self, assignment: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| ((assignment >> a) ^ (assignment >> b)) & 1 == 1)
            .count()
    }

    /// The maximum cut over all bipartitions (brute force; `n ≤ 20`).
    ///
    /// # Panics
    ///
    /// Panics for `n > 20`.
    pub fn max_cut_brute_force(&self) -> usize {
        assert!(self.n <= 20, "brute-force max-cut is for small graphs");
        (0..(1usize << self.n))
            .map(|a| self.cut_value(a))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_cycle_shapes() {
        let l = Graph::line(6);
        assert_eq!(l.n_edges(), 5);
        assert_eq!(l.degrees(), vec![1, 2, 2, 2, 2, 1]);
        let c = Graph::cycle(6);
        assert_eq!(c.n_edges(), 6);
        assert!(c.degrees().iter().all(|&d| d == 2));
    }

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let g = Graph::erdos_renyi_m(20, 40, 123);
        assert_eq!(g.n_edges(), 40);
        // Deterministic under the same seed.
        assert_eq!(g, Graph::erdos_renyi_m(20, 40, 123));
        assert_ne!(g, Graph::erdos_renyi_m(20, 40, 124));
    }

    #[test]
    fn random_regular_is_regular() {
        for (n, d, seed) in [(10, 4, 1), (20, 4, 2), (30, 4, 3), (12, 3, 4)] {
            let g = Graph::random_regular(n, d, seed).expect("regular graph");
            assert!(g.degrees().iter().all(|&x| x == d), "n={n} d={d}");
            assert_eq!(g.n_edges(), n * d / 2);
        }
    }

    #[test]
    fn random_regular_rejects_impossible() {
        assert!(Graph::random_regular(5, 3, 1).is_none()); // odd n·d
        assert!(Graph::random_regular(4, 5, 1).is_none()); // d ≥ n
    }

    #[test]
    fn cut_values() {
        let g = Graph::line(3); // edges (0,1), (1,2)
        assert_eq!(g.cut_value(0b000), 0);
        assert_eq!(g.cut_value(0b010), 2); // vertex 1 alone cuts both edges
        assert_eq!(g.max_cut_brute_force(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edges_rejected() {
        let _ = Graph::new(3, vec![(0, 1), (1, 0)]);
    }
}
