//! # gleipnir-workloads
//!
//! Benchmark workload generators for the Gleipnir evaluation (§7):
//!
//! * [`qaoa_maxcut`] — the Quantum Approximate Optimization Algorithm \[12\]
//!   for max-cut on arbitrary [`Graph`]s;
//! * [`ising_chain`] — Trotterized transverse-field Ising evolution \[44\];
//! * [`ghz`] — GHZ-`n` circuits (Fig. 16, used by the §7.2 mapping study);
//! * [`paper_benchmarks`] — the nine Table 2 rows, regenerated with seeded
//!   graphs and layer counts matching the paper's reported gate counts.
//!
//! ## Example
//!
//! ```
//! use gleipnir_workloads::{paper_benchmarks, qaoa_maxcut, Graph};
//!
//! let bench = paper_benchmarks();
//! assert_eq!(bench.len(), 9);
//! assert_eq!(bench[0].name, "QAOA_line_10");
//!
//! let p = qaoa_maxcut(&Graph::cycle(6), &[0.4], &[0.8]);
//! assert_eq!(p.n_qubits(), 6);
//! ```

#![warn(missing_docs)]

mod circuits;
mod graph;

pub use circuits::{determinism_suite, ghz, ising_chain, paper_benchmarks, qaoa_maxcut, Benchmark};
pub use graph::Graph;
