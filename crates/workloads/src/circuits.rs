//! Circuit generators for the paper's workload classes (§7.1): QAOA
//! max-cut, the transverse-field Ising model, and GHZ states.

use crate::Graph;
use gleipnir_circuit::{decompose_to_cnot_basis, Program, ProgramBuilder};

/// QAOA max-cut circuit for a graph (Farhi et al. \[12\]).
///
/// Structure: a Hadamard on every qubit, then for each layer `ℓ` the cost
/// evolution `Π_(u,v)∈E RZZ(2γ_ℓ)` followed by the mixer `Π_q RX(2β_ℓ)`.
///
/// # Panics
///
/// Panics if `gammas` and `betas` have different lengths or are empty.
///
/// # Examples
///
/// ```
/// use gleipnir_workloads::{qaoa_maxcut, Graph};
///
/// let p = qaoa_maxcut(&Graph::line(4), &[0.4], &[0.7]);
/// // 4 H + 3 RZZ + 4 RX.
/// assert_eq!(p.gate_count(), 11);
/// ```
pub fn qaoa_maxcut(graph: &Graph, gammas: &[f64], betas: &[f64]) -> Program {
    assert_eq!(gammas.len(), betas.len(), "γ/β layer count mismatch");
    assert!(!gammas.is_empty(), "QAOA needs at least one layer");
    let n = graph.n_vertices();
    let mut b = ProgramBuilder::new(n);
    for q in 0..n {
        b.h(q);
    }
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        for &(u, v) in graph.edges() {
            b.rzz(u, v, 2.0 * gamma);
        }
        for q in 0..n {
            b.rx(q, 2.0 * beta);
        }
    }
    b.build()
}

/// First-order Trotterized transverse-field Ising evolution on a chain:
///
/// `H = −J Σ Z_i Z_{i+1} − h Σ X_i`, time step `dt`, `layers` steps, with an
/// initial Hadamard layer preparing `|+⟩ⁿ` (a standard quench protocol).
///
/// Per layer: `n−1` RZZ(−2·J·dt) + `n` RX(−2·h·dt); total gate count is
/// `n + layers·(2n − 1)`.
///
/// # Panics
///
/// Panics for `n < 2` or `layers == 0`.
pub fn ising_chain(n: usize, layers: usize, j: f64, h: f64, dt: f64) -> Program {
    assert!(n >= 2, "Ising chain needs at least 2 sites");
    assert!(layers > 0, "Ising evolution needs at least one layer");
    let mut b = ProgramBuilder::new(n);
    for q in 0..n {
        b.h(q);
    }
    for _ in 0..layers {
        for q in 0..n - 1 {
            b.rzz(q, q + 1, -2.0 * j * dt);
        }
        for q in 0..n {
            b.rx(q, -2.0 * h * dt);
        }
    }
    b.build()
}

/// The GHZ-`n` circuit (paper Fig. 16): `H(q0)` then a CNOT chain.
///
/// # Panics
///
/// Panics for `n < 2`.
pub fn ghz(n: usize) -> Program {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut b = ProgramBuilder::new(n);
    b.h(0);
    for q in 1..n {
        b.cnot(q - 1, q);
    }
    b.build()
}

/// The pipeline-determinism suite: small circuits covering every
/// statement shape the analysis walk handles (straight-line gates,
/// repeated structure with cache-identical judgments, genuine MPS
/// truncation, measurement branching with a continuation, and
/// non-adjacent operands that force routing swaps).
///
/// Returns `(name, program, mps_width)` triples. The widths are chosen so
/// some circuits are exact (δ = 0) and some truncate (δ buckets vary),
/// exercising both cache paths. Used by the fixture generator and the
/// plan/solve/assemble determinism test (`tests/pipeline_determinism.rs`),
/// which require bit-for-bit stability — change this suite only together
/// with the committed oracle fixture.
pub fn determinism_suite() -> Vec<(String, Program, usize)> {
    let mut meas = ProgramBuilder::new(2);
    meas.h(0)
        .if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.z(1);
            },
        )
        .h(1);
    let mut nonadj = ProgramBuilder::new(4);
    nonadj.h(0).cnot(0, 3).rzz(0, 2, 0.5).rx(1, 0.3);
    vec![
        ("ghz4".into(), ghz(4), 4),
        (
            "ising6x4_w2".into(),
            ising_chain(6, 4, 1.0, 1.0, 0.1),
            2, // narrow on purpose: truncation spreads judgments over δ buckets
        ),
        (
            "qaoa_cycle6_w8".into(),
            qaoa_maxcut(&Graph::cycle(6), &[0.35], &[0.62]),
            8,
        ),
        ("measure2".into(), meas.build(), 4),
        ("nonadjacent4".into(), nonadj.build(), 8),
    ]
}

/// A named benchmark: one row of the paper's Table 2.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The paper's benchmark name.
    pub name: &'static str,
    /// Register width.
    pub n_qubits: usize,
    /// The paper's reported gate count (for comparison).
    pub paper_gate_count: usize,
    /// The generated program.
    pub program: Program,
}

/// The nine benchmarks of Table 2, regenerated.
///
/// Exact graph instances for the random benchmarks are unpublished, so
/// seeded graphs with matching size are used; layer counts and (where the
/// paper's counts imply it) RZZ decomposition into `CNOT·RZ·CNOT` are
/// chosen so the gate counts match the table where the stated construction
/// allows (see DESIGN.md §3 and EXPERIMENTS.md).
pub fn paper_benchmarks() -> Vec<Benchmark> {
    let angles = (0.35, 0.62); // representative (γ, β); the bound shape is angle-robust
    let (g, b) = angles;
    vec![
        Benchmark {
            name: "QAOA_line_10",
            n_qubits: 10,
            paper_gate_count: 27,
            program: qaoa_maxcut(&Graph::line(10), &[g], &[b]),
        },
        Benchmark {
            name: "Isingmodel10",
            n_qubits: 10,
            paper_gate_count: 480,
            program: ising_chain(10, 25, 1.0, 1.0, 0.1),
        },
        Benchmark {
            name: "QAOARandom20",
            n_qubits: 20,
            paper_gate_count: 160,
            program: decompose_to_cnot_basis(&qaoa_maxcut(
                &Graph::erdos_renyi_m(20, 40, 2021),
                &[g],
                &[b],
            )),
        },
        Benchmark {
            name: "QAOA4reg_20",
            n_qubits: 20,
            paper_gate_count: 160,
            program: decompose_to_cnot_basis(&qaoa_maxcut(
                &Graph::random_regular(20, 4, 2021).expect("4-regular(20)"),
                &[g],
                &[b],
            )),
        },
        Benchmark {
            name: "QAOA4reg_30",
            n_qubits: 30,
            paper_gate_count: 240,
            program: decompose_to_cnot_basis(&qaoa_maxcut(
                &Graph::random_regular(30, 4, 2021).expect("4-regular(30)"),
                &[g],
                &[b],
            )),
        },
        Benchmark {
            name: "Isingmodel45",
            n_qubits: 45,
            paper_gate_count: 2265,
            program: ising_chain(45, 25, 1.0, 1.0, 0.1),
        },
        Benchmark {
            name: "QAOA50",
            n_qubits: 50,
            paper_gate_count: 399,
            program: qaoa_maxcut(&Graph::erdos_renyi_m(50, 299, 2021), &[g], &[b]),
        },
        Benchmark {
            name: "QAOA75",
            n_qubits: 75,
            paper_gate_count: 597,
            program: qaoa_maxcut(&Graph::erdos_renyi_m(75, 447, 2021), &[g], &[b]),
        },
        Benchmark {
            name: "QAOA100",
            n_qubits: 100,
            paper_gate_count: 677,
            program: qaoa_maxcut(&Graph::erdos_renyi_m(100, 477, 2021), &[g], &[b]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qaoa_gate_counts() {
        let g = Graph::line(10);
        let p = qaoa_maxcut(&g, &[0.4], &[0.7]);
        assert_eq!(p.gate_count(), 10 + 9 + 10);
        let p2 = qaoa_maxcut(&g, &[0.4, 0.1], &[0.7, 0.2]);
        assert_eq!(p2.gate_count(), 10 + 2 * (9 + 10));
    }

    #[test]
    fn ising_gate_counts() {
        let p = ising_chain(10, 25, 1.0, 1.0, 0.1);
        assert_eq!(p.gate_count(), 10 + 25 * 19);
        assert_eq!(p.n_qubits(), 10);
    }

    #[test]
    fn ghz_structure() {
        let p = ghz(5);
        assert_eq!(p.gate_count(), 5);
        assert_eq!(p.two_qubit_gate_count(), 4);
        assert_eq!(p.depth(), 5);
    }

    #[test]
    fn paper_benchmarks_match_reported_counts() {
        for bench in paper_benchmarks() {
            assert_eq!(bench.program.n_qubits(), bench.n_qubits, "{}", bench.name);
            let actual = bench.program.gate_count();
            let paper = bench.paper_gate_count;
            let slack = (paper as f64 * 0.05).ceil() as usize + 5;
            assert!(
                actual.abs_diff(paper) <= slack,
                "{}: generated {actual} vs paper {paper}",
                bench.name
            );
        }
    }

    #[test]
    fn exact_count_benchmarks() {
        // Rows where the paper's count is hit exactly.
        let map: std::collections::HashMap<&str, usize> = paper_benchmarks()
            .into_iter()
            .map(|b| (b.name, b.program.gate_count()))
            .collect();
        assert_eq!(map["QAOARandom20"], 160);
        assert_eq!(map["QAOA4reg_20"], 160);
        assert_eq!(map["QAOA4reg_30"], 240);
        assert_eq!(map["QAOA50"], 399);
        assert_eq!(map["QAOA75"], 597);
        assert_eq!(map["QAOA100"], 677);
    }

    #[test]
    fn benchmarks_are_straight_line() {
        for bench in paper_benchmarks() {
            assert!(bench.program.is_straight_line(), "{}", bench.name);
        }
    }
}
