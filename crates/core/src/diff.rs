//! Differential analysis: edit-cost latency for edited circuits.
//!
//! [`Engine::analyze_diff`] answers "what did this edit do to the certified
//! error bound?" without paying for a full re-analysis. The two programs'
//! top-level statement lists are aligned; the MPS walk of the **shared
//! prefix** — the statements before the first divergence — is planned once
//! (snapshotting the evolved [`Mps`](gleipnir_mps::Mps) at the divergence
//! point), and each program's suffix is replanned from a clone of that
//! snapshot. Only the *new* suffix's obligations are fanned over the worker
//! pool; the prefix's ε's are taken verbatim from the old program's
//! analysis, and unchanged-suffix judgments still hit the engine's shared
//! certificate cache by content address.
//!
//! ## Soundness: prefix reuse is a performance path, never a new bound
//!
//! Under the default exact tier policy a diff answer is **bit-identical to
//! a cold full analysis of the new program at any pool size** (SOUNDNESS.md
//! obligation 7, pinned by `tests/diff_determinism.rs`):
//!
//! * the prefix plan evolves the MPS exactly as the full walk's first
//!   statements would, so the suffix plan sees bit-identical `(ρ′, δ)`
//!   judgments;
//! * keyed obligations are *canonical* — the quantized judgment is
//!   recoverable from the content address alone, so a cache hit returns the
//!   same bits a cold solve would produce;
//! * uncached obligations are re-solved at their exact judgment by the
//!   deterministic solver.
//!
//! The prefix stops **before the first statement containing a
//! measurement**: `if-measure` duplicates its continuation into both
//! branches (§5.2), so obligations after a measurement depend on the tail
//! and cannot be reused across an edit.
//!
//! ## What invalidates the prefix
//!
//! A shared prefix exists only when the two requests agree on everything
//! that feeds the walk: input state, noise model, MPS width, solver
//! options, cache participation, δ bucket width, and tier policy. Any
//! disagreement degrades to two independent analyses
//! (`prefix_gates_reused == 0`) — still one [`DiffReport`], never a stale
//! bound.

use crate::engine::EngineHandle;
use crate::error::AnalysisError;
use crate::logic::{assemble_report, Derivation, StateAwareReport};
use crate::plan::{plan_stmts, Plan};
use crate::request::{AnalysisRequest, Method};
use crate::solve::{spawn_solve, SolveOutcome};
use crate::tiers::BoundTier;
use crate::Engine;
use gleipnir_circuit::Stmt;
use std::time::{Duration, Instant};

/// Why a gate's certified ε differs between the old and new analyses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeReason {
    /// The gate itself was edited (inserted, removed, or replaced in the
    /// divergent middle of the circuit).
    GateEdited,
    /// The two requests use different noise models — every gate's channel
    /// changed even where the circuit did not.
    NoiseChanged,
    /// A non-noise configuration difference (input state, MPS width, solver
    /// options, cache/quantum/tier settings) forced independent analyses.
    ConfigChanged,
    /// The gate is unchanged but sits downstream of an edit: its judgment's
    /// `(ρ′, δ)` drifted, so its certificate was re-derived.
    DownstreamDrift,
}

impl ChangeReason {
    /// Stable snake_case name (used by the JSON surfaces).
    pub fn name(&self) -> &'static str {
        match self {
            ChangeReason::GateEdited => "gate_edited",
            ChangeReason::NoiseChanged => "noise_changed",
            ChangeReason::ConfigChanged => "config_changed",
            ChangeReason::DownstreamDrift => "downstream_drift",
        }
    }
}

/// One gate whose certified ε differs between the old and new analyses.
#[derive(Clone, Debug)]
pub struct GateChange {
    /// Gate-rule index (skeleton pre-order) in the old derivation; `None`
    /// for a gate that only exists in the new program.
    pub old_index: Option<usize>,
    /// Gate-rule index in the new derivation; `None` for a removed gate.
    pub new_index: Option<usize>,
    /// The gate with its operand qubits, e.g. `CNOT(q0,q1)`. For a
    /// replaced gate this is the *new* gate (the old one when removed).
    pub gate: String,
    /// The old analysis's certified ε (`None` for an inserted gate).
    pub old_epsilon: Option<f64>,
    /// The new analysis's certified ε (`None` for a removed gate).
    pub new_epsilon: Option<f64>,
    /// Which bound-engine tier produced the new ε (`None` for a removed
    /// gate).
    pub tier: Option<BoundTier>,
    /// Why the ε changed.
    pub reason: ChangeReason,
}

/// The differential analysis output: both full reports, the reuse
/// accounting, and the per-gate change list.
#[derive(Clone, Debug)]
pub struct DiffReport {
    old: StateAwareReport,
    new: StateAwareReport,
    prefix_gates_reused: usize,
    changes: Vec<GateChange>,
    elapsed: Duration,
}

impl DiffReport {
    /// The old program's full analysis (its solve stage is almost entirely
    /// cache hits when the engine analyzed the old program before).
    pub fn old_report(&self) -> &StateAwareReport {
        &self.old
    }

    /// The new program's analysis. Its solve accounting covers **only the
    /// divergent suffix**: `gate_rule_count = prefix_gates_reused +
    /// sdp_solves + cache_hits + tier_counts.closed_form`.
    pub fn new_report(&self) -> &StateAwareReport {
        &self.new
    }

    /// The new program's certified whole-program error bound — bit-
    /// identical to what a cold full analysis would certify (exact policy).
    pub fn error_bound(&self) -> f64 {
        self.new.error_bound()
    }

    /// Gate judgments answered verbatim from the shared-prefix walk (no
    /// lookup, no solve — their ε bits are the old analysis's).
    pub fn prefix_gates_reused(&self) -> usize {
        self.prefix_gates_reused
    }

    /// Every gate whose certified ε changed, with old/new ε, the tier that
    /// produced the new bound, and why it changed.
    pub fn changes(&self) -> &[GateChange] {
        &self.changes
    }

    /// Wall-clock time of the whole differential analysis.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }
}

/// Whether a statement contains a measurement anywhere. Measurements
/// duplicate their continuation (§5.2), so the shared prefix must stop
/// before the first one.
fn contains_measure(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Skip | Stmt::Gate(_) => false,
        Stmt::Seq(ss) => ss.iter().any(contains_measure),
        Stmt::IfMeasure { .. } => true,
    }
}

/// The top-level statement list of a program body (one `Seq` level
/// flattened — exactly how the plan walk consumes it).
fn top_stmts(body: &Stmt) -> Vec<&Stmt> {
    match body {
        Stmt::Seq(ss) => ss.iter().collect(),
        other => vec![other],
    }
}

/// Length of the reusable shared prefix: equal statements up to (not
/// including) the first divergence or measurement-containing statement.
fn shared_prefix_len(old: &[&Stmt], new: &[&Stmt]) -> usize {
    old.iter()
        .zip(new.iter())
        .take_while(|(o, n)| o == n && !contains_measure(o))
        .count()
}

/// Splices a measure-free prefix skeleton and a suffix skeleton into the
/// tree the full walk of `[prefix ++ suffix]` would have produced: the
/// walk prepends each prefix node onto the suffix's `Seq` (wrapping a
/// non-`Seq` suffix, e.g. a leading `Meas`, exactly like
/// `plan::prepend` does).
fn merge_skeleton(prefix: Derivation, suffix: Derivation) -> Derivation {
    let mut children = match prefix {
        Derivation::Seq { children } => children,
        other => vec![other],
    };
    if children.is_empty() {
        return suffix;
    }
    match suffix {
        Derivation::Seq { children: sc } => children.extend(sc),
        other => children.push(other),
    }
    Derivation::Seq { children }
}

/// The planned halves of a differential analysis.
struct DiffPlan {
    /// The shared prefix (`None` when nothing is reusable).
    prefix: Option<Plan>,
    old_suffix: Plan,
    new_suffix: Plan,
    plan_elapsed: Duration,
}

/// Collects `(label, ε)` for every Gate rule in skeleton pre-order — the
/// same order as the obligation list, so index `i` lines up with the solve
/// outcome's `tiers[i]`.
fn collect_gates(d: &Derivation, out: &mut Vec<(String, f64)>) {
    match d {
        Derivation::Skip => {}
        Derivation::Gate {
            gate,
            qubits,
            epsilon,
            ..
        } => {
            let qs: Vec<String> = qubits.iter().map(|q| format!("q{q}")).collect();
            out.push((format!("{gate}({})", qs.join(",")), *epsilon));
        }
        Derivation::Seq { children } => children.iter().for_each(|c| collect_gates(c, out)),
        Derivation::Meas { zero, one, .. } => {
            if let Some(z) = zero {
                collect_gates(z, out);
            }
            if let Some(o) = one {
                collect_gates(o, out);
            }
        }
    }
}

/// Whether the two requests agree on everything that feeds the MPS walk
/// (`Debug` formatting round-trips every `f64` exactly, so this is a
/// bit-level comparison for the numeric fields).
fn same_walk_config(
    h: &EngineHandle,
    old: &AnalysisRequest,
    new: &AnalysisRequest,
    old_width: usize,
    new_width: usize,
) -> bool {
    old_width == new_width
        && format!("{:?}", old.input()) == format!("{:?}", new.input())
        && format!("{:?}", old.noise()) == format!("{:?}", new.noise())
        && format!("{:?}", h.resolve_options(old)) == format!("{:?}", h.resolve_options(new))
        && old.cache_enabled() == new.cache_enabled()
        && old.delta_quantum().to_bits() == new.delta_quantum().to_bits()
        && format!("{:?}", old.tier_policy()) == format!("{:?}", new.tier_policy())
}

/// Plans both programs, sharing the prefix walk when the configurations
/// agree.
fn plan_diff(
    h: &EngineHandle,
    old_request: &AnalysisRequest,
    new_request: &AnalysisRequest,
    old_width: usize,
    new_width: usize,
) -> Result<DiffPlan, AnalysisError> {
    let plan_start = Instant::now();
    let old_stmts = top_stmts(old_request.program().body());
    let new_stmts = top_stmts(new_request.program().body());
    let shared = if same_walk_config(h, old_request, new_request, old_width, new_width) {
        shared_prefix_len(&old_stmts, &new_stmts)
    } else {
        0
    };

    let old_opts = h.resolve_options(old_request);
    let new_opts = h.resolve_options(new_request);
    let check_width = |request: &AnalysisRequest, n: usize| -> Result<(), AnalysisError> {
        if n != request.program().n_qubits() {
            return Err(AnalysisError::WidthMismatch {
                input: n,
                program: request.program().n_qubits(),
            });
        }
        Ok(())
    };

    if shared == 0 {
        // Nothing reusable: two independent plans from their own inputs.
        let mut old_mps = old_request.input().build_mps(old_width)?;
        check_width(old_request, old_mps.n_qubits())?;
        let old_suffix = plan_stmts(
            &old_stmts,
            &mut old_mps,
            old_request.noise(),
            &old_opts,
            old_request.cache_enabled(),
            old_request.delta_quantum(),
        )?;
        let mut new_mps = new_request.input().build_mps(new_width)?;
        check_width(new_request, new_mps.n_qubits())?;
        let new_suffix = plan_stmts(
            &new_stmts,
            &mut new_mps,
            new_request.noise(),
            &new_opts,
            new_request.cache_enabled(),
            new_request.delta_quantum(),
        )?;
        return Ok(DiffPlan {
            prefix: None,
            old_suffix,
            new_suffix,
            plan_elapsed: plan_start.elapsed(),
        });
    }

    // One prefix walk evolves the MPS to the divergence point; each
    // suffix replans from a clone of that snapshot. The configurations
    // are equal here, so the new request's parameters speak for both.
    let mut mps = new_request.input().build_mps(new_width)?;
    check_width(old_request, mps.n_qubits())?;
    check_width(new_request, mps.n_qubits())?;
    let prefix = plan_stmts(
        &new_stmts[..shared],
        &mut mps,
        new_request.noise(),
        &new_opts,
        new_request.cache_enabled(),
        new_request.delta_quantum(),
    )?;
    let mut old_mps = mps.clone();
    let old_suffix = plan_stmts(
        &old_stmts[shared..],
        &mut old_mps,
        new_request.noise(),
        &new_opts,
        new_request.cache_enabled(),
        new_request.delta_quantum(),
    )?;
    let new_suffix = plan_stmts(
        &new_stmts[shared..],
        &mut mps,
        new_request.noise(),
        &new_opts,
        new_request.cache_enabled(),
        new_request.delta_quantum(),
    )?;
    Ok(DiffPlan {
        prefix: Some(prefix),
        old_suffix,
        new_suffix,
        plan_elapsed: plan_start.elapsed(),
    })
}

/// Classifies the per-gate ε changes between the two assembled reports.
/// Alignment: the first `prefix_gates` pre-order gates are shared by
/// construction; the longest label-equal run from the end is the common
/// tail (unchanged gates downstream of the edit); everything between is
/// the edited middle, paired by offset.
fn classify_changes(
    old_gates: &[(String, f64)],
    new_gates: &[(String, f64)],
    new_tiers: &[BoundTier],
    prefix_gates: usize,
    noise_shared: bool,
    config_shared: bool,
) -> Vec<GateChange> {
    let edited_reason = if !noise_shared {
        ChangeReason::NoiseChanged
    } else if !config_shared {
        ChangeReason::ConfigChanged
    } else {
        ChangeReason::GateEdited
    };
    let drift_reason = if config_shared {
        ChangeReason::DownstreamDrift
    } else {
        edited_reason
    };

    let mut tail = 0usize;
    let max_tail = (old_gates.len() - prefix_gates).min(new_gates.len() - prefix_gates);
    while tail < max_tail
        && old_gates[old_gates.len() - 1 - tail].0 == new_gates[new_gates.len() - 1 - tail].0
    {
        tail += 1;
    }

    let old_mid = prefix_gates..old_gates.len() - tail;
    let new_mid = prefix_gates..new_gates.len() - tail;
    let mut changes = Vec::new();

    // The edited middle, paired by offset; extras are one-sided.
    let mid_len = old_mid.len().max(new_mid.len());
    for k in 0..mid_len {
        let old = old_mid.start + k;
        let new = new_mid.start + k;
        let o = old_mid.contains(&old).then(|| &old_gates[old]);
        let n = new_mid.contains(&new).then(|| &new_gates[new]);
        let changed = match (o, n) {
            (Some(o), Some(n)) => o.0 != n.0 || o.1.to_bits() != n.1.to_bits(),
            _ => true,
        };
        if !changed {
            continue;
        }
        changes.push(GateChange {
            old_index: o.map(|_| old),
            new_index: n.map(|_| new),
            gate: n.or(o).expect("one side exists").0.clone(),
            old_epsilon: o.map(|g| g.1),
            new_epsilon: n.map(|g| g.1),
            tier: n.map(|_| new_tiers[new]),
            reason: edited_reason,
        });
    }

    // The common tail: unchanged gates whose judgment may have drifted.
    for k in 0..tail {
        let old = old_gates.len() - tail + k;
        let new = new_gates.len() - tail + k;
        if old_gates[old].1.to_bits() == new_gates[new].1.to_bits() {
            continue;
        }
        changes.push(GateChange {
            old_index: Some(old),
            new_index: Some(new),
            gate: new_gates[new].0.clone(),
            old_epsilon: Some(old_gates[old].1),
            new_epsilon: Some(new_gates[new].1),
            tier: Some(new_tiers[new]),
            reason: drift_reason,
        });
    }
    changes
}

/// The free-function form of [`Engine::analyze_diff`] (what the server's
/// workers call through an [`EngineHandle`]).
pub(crate) fn analyze_diff_request(
    h: &EngineHandle,
    old_request: &AnalysisRequest,
    new_request: &AnalysisRequest,
) -> Result<DiffReport, AnalysisError> {
    let start = Instant::now();
    let (
        &Method::StateAware {
            mps_width: old_width,
        },
        &Method::StateAware {
            mps_width: new_width,
        },
    ) = (old_request.method(), new_request.method())
    else {
        return Err(AnalysisError::Unsupported(
            "analyze_diff requires Method::StateAware on both requests".into(),
        ));
    };
    let noise_shared = format!("{:?}", old_request.noise()) == format!("{:?}", new_request.noise());
    let config_shared = same_walk_config(h, old_request, new_request, old_width, new_width);

    let DiffPlan {
        prefix,
        old_suffix,
        new_suffix,
        plan_elapsed,
    } = plan_diff(h, old_request, new_request, old_width, new_width)?;

    let (prefix_skeleton, prefix_obligations, prefix_width) = match prefix {
        Some(p) => (p.skeleton, p.obligations, Some(p.mps_width)),
        None => (
            Derivation::Seq {
                children: Vec::new(),
            },
            Vec::new(),
            None,
        ),
    };
    let prefix_gates = prefix_obligations.len();

    // Solve the old program in full: prefix + old-suffix obligations in
    // plan order (all cache hits when the engine analyzed it before).
    // Joining *before* the new solve keeps the new suffix's accounting a
    // deterministic function of the engine state, pool size aside.
    let old_opts = h.resolve_options(old_request);
    let new_opts = h.resolve_options(new_request);
    let mut old_obligations = prefix_obligations;
    let n_old_prefix = old_obligations.len();
    old_obligations.extend(old_suffix.obligations);
    let old_solved =
        spawn_solve(h, old_obligations, old_opts, old_request.tier_policy()).join(h)?;

    // Solve only the new program's divergent suffix.
    let suffix_solved = spawn_solve(
        h,
        new_suffix.obligations,
        new_opts,
        new_request.tier_policy(),
    )
    .join(h)?;

    // The new program's ε vector: prefix bits verbatim from the old solve,
    // then the suffix. The accounting carries only the suffix's work —
    // that is the point of the diff.
    let mut epsilons = old_solved.epsilons[..n_old_prefix].to_vec();
    epsilons.extend_from_slice(&suffix_solved.epsilons);
    let mut tiers = old_solved.tiers[..n_old_prefix].to_vec();
    tiers.extend_from_slice(&suffix_solved.tiers);
    let new_solved = SolveOutcome {
        epsilons,
        tiers,
        sdp_solves: suffix_solved.sdp_solves,
        cache_hits: suffix_solved.cache_hits,
        inflight_dedup: suffix_solved.inflight_dedup,
        tier_counts: suffix_solved.tier_counts,
        ip_iterations: suffix_solved.ip_iterations,
        solver_profile: suffix_solved.solver_profile,
        solve_workers: suffix_solved.solve_workers,
        elapsed: suffix_solved.elapsed,
    };

    let new_tiers_by_gate = new_solved.tiers.clone();
    let old_report = assemble_report(
        merge_skeleton(prefix_skeleton.clone(), old_suffix.skeleton),
        old_suffix.final_delta,
        prefix_width.unwrap_or(old_suffix.mps_width),
        old_solved,
        plan_elapsed,
    );
    let new_report = assemble_report(
        merge_skeleton(prefix_skeleton, new_suffix.skeleton),
        new_suffix.final_delta,
        prefix_width.unwrap_or(new_suffix.mps_width),
        new_solved,
        plan_elapsed,
    );

    let mut old_gates = Vec::new();
    let mut new_gates = Vec::new();
    collect_gates(old_report.derivation(), &mut old_gates);
    collect_gates(new_report.derivation(), &mut new_gates);
    let changes = classify_changes(
        &old_gates,
        &new_gates,
        &new_tiers_by_gate,
        prefix_gates,
        noise_shared,
        config_shared,
    );

    Ok(DiffReport {
        old: old_report,
        new: new_report,
        prefix_gates_reused: prefix_gates,
        changes,
        elapsed: start.elapsed(),
    })
}

impl Engine {
    /// Differential analysis: analyzes `new_request` by reusing the MPS
    /// walk prefix shared with `old_request` and re-solving only the
    /// divergent suffix's obligations.
    ///
    /// Both reports come back: the old one (near-free when the engine
    /// analyzed the old program before — its obligations hit the cache)
    /// and the new one, whose solve accounting covers only the suffix.
    /// Under the default exact tier policy the new report's ε bits are
    /// identical to [`Engine::analyze`] of the new request on a cold
    /// engine, at any pool size.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Unsupported`] unless both requests use
    /// [`Method::StateAware`]; otherwise the same errors as
    /// [`Engine::analyze`].
    ///
    /// # Examples
    ///
    /// ```
    /// use gleipnir_circuit::ProgramBuilder;
    /// use gleipnir_core::{AnalysisRequest, Engine, Method};
    /// use gleipnir_noise::NoiseModel;
    ///
    /// let engine = Engine::new();
    /// let request = |theta: f64| {
    ///     let mut b = ProgramBuilder::new(2);
    ///     b.h(0).cnot(0, 1).rx(1, theta);
    ///     AnalysisRequest::builder(b.build())
    ///         .noise(NoiseModel::uniform_bit_flip(1e-4))
    ///         .method(Method::StateAware { mps_width: 4 })
    ///         .build()
    /// };
    /// let old = request(0.3)?;
    /// let new = request(0.7)?;
    /// engine.analyze(&old)?; // warm the certificate cache
    /// let diff = engine.analyze_diff(&old, &new)?;
    /// assert_eq!(diff.prefix_gates_reused(), 2); // H and CNOT reused
    /// assert!(!diff.changes().is_empty()); // the RX edit is named
    /// # Ok::<(), gleipnir_core::AnalysisError>(())
    /// ```
    pub fn analyze_diff(
        &self,
        old_request: &AnalysisRequest,
        new_request: &AnalysisRequest,
    ) -> Result<DiffReport, AnalysisError> {
        analyze_diff_request(&self.handle(), old_request, new_request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Method;
    use crate::Report;
    use gleipnir_circuit::ProgramBuilder;
    use gleipnir_noise::NoiseModel;
    use gleipnir_sim::BasisState;

    fn request(program: gleipnir_circuit::Program) -> AnalysisRequest {
        let n = program.n_qubits();
        AnalysisRequest::builder(program)
            .input(&BasisState::zeros(n))
            .noise(NoiseModel::uniform_bit_flip(1e-4))
            .method(Method::StateAware { mps_width: 4 })
            .build()
            .expect("valid request")
    }

    fn state_aware(engine: &Engine, request: &AnalysisRequest) -> StateAwareReport {
        match engine.analyze(request).expect("analysis succeeds") {
            Report::StateAware(r) => r,
            other => panic!("expected state-aware report, got {}", other.method_name()),
        }
    }

    #[test]
    fn prefix_stops_at_divergence_and_measurement() {
        let mut a = ProgramBuilder::new(2);
        a.h(0).cnot(0, 1).x(1);
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1).z(1);
        let sa = a.build();
        let sb = b.build();
        assert_eq!(
            shared_prefix_len(&top_stmts(sa.body()), &top_stmts(sb.body())),
            2
        );

        let mut m = ProgramBuilder::new(2);
        m.h(0).if_measure(
            0,
            |z| {
                z.x(1);
            },
            |o| {
                o.z(1);
            },
        );
        let sm = m.build();
        // Identical programs still stop the prefix at the measurement.
        assert_eq!(
            shared_prefix_len(&top_stmts(sm.body()), &top_stmts(sm.body())),
            1
        );
    }

    #[test]
    fn merge_skeleton_matches_full_walk_shapes() {
        let gate = |eps: f64| Derivation::Gate {
            gate: gleipnir_circuit::Gate::X,
            qubits: vec![0],
            rho_prime: gleipnir_linalg::CMat::identity(2),
            delta: 0.0,
            epsilon: eps,
        };
        // Seq prefix ++ Seq suffix → one flat Seq.
        let merged = merge_skeleton(
            Derivation::Seq {
                children: vec![gate(1.0)],
            },
            Derivation::Seq {
                children: vec![gate(2.0), gate(3.0)],
            },
        );
        match &merged {
            Derivation::Seq { children } => assert_eq!(children.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
        // Empty prefix → the suffix as-is (a leading Meas stays unwrapped).
        let meas = Derivation::Meas {
            qubit: 0,
            delta_prob: 0.0,
            zero: None,
            one: Some(Box::new(gate(1.0))),
        };
        assert!(matches!(
            merge_skeleton(
                Derivation::Seq {
                    children: Vec::new()
                },
                meas.clone()
            ),
            Derivation::Meas { .. }
        ));
        // Non-empty prefix + Meas suffix → the Meas becomes the last child,
        // exactly like the walk's prepend wrap.
        match merge_skeleton(
            Derivation::Seq {
                children: vec![gate(1.0)],
            },
            meas,
        ) {
            Derivation::Seq { children } => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[1], Derivation::Meas { .. }));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn diff_reuses_prefix_and_matches_full_analysis() {
        let mut a = ProgramBuilder::new(3);
        a.h(0).cnot(0, 1).rx(2, 0.3).cnot(1, 2);
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).rx(2, 0.9).cnot(1, 2);
        let old = request(a.build());
        let new = request(b.build());

        let engine = Engine::new();
        state_aware(&engine, &old);
        let diff = engine.analyze_diff(&old, &new).expect("diff succeeds");
        assert_eq!(diff.prefix_gates_reused(), 2);

        // Bit-identity against a cold full analysis of the new program.
        let cold = state_aware(&Engine::new(), &new);
        assert_eq!(
            diff.new_report().error_bound().to_bits(),
            cold.error_bound().to_bits()
        );
        // The suffix-only accounting closes: every gate is reused, solved,
        // hit, or closed-form.
        let r = diff.new_report();
        assert_eq!(
            r.derivation().gate_rule_count(),
            diff.prefix_gates_reused()
                + r.sdp_solves()
                + r.cache_hits()
                + r.tier_counts().closed_form
        );
        // The edit itself is named.
        assert!(diff
            .changes()
            .iter()
            .any(|c| c.reason == ChangeReason::GateEdited && c.gate.contains("rx")));
    }

    #[test]
    fn noise_change_reports_no_reuse_and_noise_reason() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1);
        let p = b.build();
        let old = request(p.clone());
        let new = AnalysisRequest::builder(p)
            .input(&BasisState::zeros(2))
            .noise(NoiseModel::uniform_bit_flip(5e-4))
            .method(Method::StateAware { mps_width: 4 })
            .build()
            .unwrap();
        let engine = Engine::new();
        let diff = engine.analyze_diff(&old, &new).expect("diff succeeds");
        assert_eq!(diff.prefix_gates_reused(), 0);
        assert!(!diff.changes().is_empty());
        assert!(diff
            .changes()
            .iter()
            .all(|c| c.reason == ChangeReason::NoiseChanged));
    }

    #[test]
    fn identical_programs_change_nothing() {
        let mut b = ProgramBuilder::new(2);
        b.h(0).cnot(0, 1).x(1);
        let old = request(b.build());
        let engine = Engine::new();
        state_aware(&engine, &old);
        let diff = engine.analyze_diff(&old, &old).expect("diff succeeds");
        assert_eq!(diff.prefix_gates_reused(), 3);
        assert!(diff.changes().is_empty());
        assert_eq!(diff.new_report().sdp_solves(), 0);
    }

    #[test]
    fn non_state_aware_methods_are_rejected() {
        let mut b = ProgramBuilder::new(1);
        b.x(0);
        let p = b.build();
        let old = AnalysisRequest::builder(p.clone())
            .noise(NoiseModel::uniform_bit_flip(1e-4))
            .method(Method::WorstCase)
            .build()
            .unwrap();
        let new = request(p);
        let err = Engine::new().analyze_diff(&old, &new).unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)), "{err}");
    }
}
