//! The anytime refinement subsystem: tokens, the refinement registry, and
//! per-tenant queue quotas.
//!
//! [`Engine::analyze_anytime`](crate::Engine::analyze_anytime) answers in
//! two steps. The **first answer** is assembled without solving a single
//! SDP: each gate judgment is answered by the best *currently-certified*
//! bound — a finished cold certificate already in the cache (read through
//! a side-effect-free peek), the Tier-0 closed form when the residual
//! channel is Pauli-type, or the trivial bound `1` (half-diamond norms
//! never exceed 1). Every one of those per-gate values is a certified
//! upper bound on the ε the exact solve will later produce, and the
//! Seq/Meas combination rules are monotone — so the whole-program first
//! answer is a certified upper bound on the final refined ε (SOUNDNESS.md
//! obligation 8).
//!
//! The **refinement** is the unmodified exact analysis (the request
//! re-run under [`TierPolicy::exact`](crate::TierPolicy::exact)), pushed
//! onto the engine's worker pool in the
//! [`PriorityClass::Refinement`](crate::PriorityClass::Refinement) class
//! and published here under a [`RefineToken`] for clients to poll
//! ([`Engine::refinement`](crate::Engine::refinement)) or long-poll
//! ([`Engine::wait_refinement`](crate::Engine::wait_refinement)).
//!
//! Nothing on the first-answer path writes to the SDP cache or enters the
//! in-flight dedup protocol: the peek is read-only and the closed form is
//! recomputed locally, so exact-policy requests on the same engine can
//! never observe an anytime artifact.

use crate::assemble::assemble;
use crate::engine::EngineHandle;
use crate::error::AnalysisError;
use crate::plan::plan_program;
use crate::pool::{lock, PriorityClass};
use crate::report::Report;
use crate::request::{AnalysisRequest, Method};
use crate::testkit::ScriptedGate;
use crate::tiers::closed_form_gate_bound;
use gleipnir_telemetry as telemetry;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Completed refinements retained for repeated polling; the oldest
/// completed entry is evicted past this (pending entries are never
/// evicted — their token holder is still owed an answer).
const COMPLETED_RETAINED: usize = 1024;

/// An opaque handle to one in-flight (or completed) anytime refinement.
/// Displayed and parsed as 16 lowercase hex digits — the spelling the
/// server's `GET /refine/<token>` route uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RefineToken(u64);

impl RefineToken {
    /// Parses a token in the [`fmt::Display`] spelling (16 hex digits).
    pub fn parse(s: &str) -> Option<RefineToken> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RefineToken)
    }
}

impl fmt::Display for RefineToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Where a refinement stands right now.
#[derive(Clone, Debug)]
pub enum RefineStatus {
    /// The exact solve is still queued or running.
    Pending,
    /// The exact solve finished; the refined report is final.
    Done(Arc<Report>),
    /// The exact solve failed (the first answer remains a sound bound).
    Failed(String),
}

impl RefineStatus {
    /// Whether the refinement has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, RefineStatus::Pending)
    }
}

/// How each gate judgment of an anytime first answer was certified.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnytimeSources {
    /// Judgments answered by a finished cold certificate in the cache.
    pub cache: usize,
    /// Judgments answered by the Tier-0 closed form.
    pub closed_form: usize,
    /// Judgments answered by the trivial bound `1`.
    pub trivial: usize,
}

/// The immediate result of [`Engine::analyze_anytime`](crate::Engine::analyze_anytime):
/// a certified (loose) bound available now, plus the token under which the
/// exact refinement will appear.
#[derive(Clone, Debug)]
pub struct AnytimeAnswer {
    /// The token to poll for the refined ε.
    pub token: RefineToken,
    /// The certified first bound — an upper bound on the refined ε.
    pub first_bound: f64,
    /// Wall-clock time spent producing the first answer.
    pub first_elapsed: Duration,
    /// Per-source accounting of the first answer's gate judgments.
    pub sources: AnytimeSources,
}

/// Engine-lifetime refinement counters (the server's `refinements_total`
/// and `refinements_pending` series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Refinements started (tokens minted).
    pub started: usize,
    /// Refinements that completed with a report.
    pub completed: usize,
    /// Refinements that failed.
    pub failed: usize,
    /// Refinements still queued or running.
    pub pending: usize,
}

/// One registered refinement: its state plus the condvar long-polls park
/// on.
pub(crate) struct RefineEntry {
    state: Mutex<RefineStatus>,
    done: Condvar,
    started: Instant,
}

impl RefineEntry {
    fn new() -> Self {
        RefineEntry {
            state: Mutex::new(RefineStatus::Pending),
            done: Condvar::new(),
            started: Instant::now(),
        }
    }

    pub(crate) fn status(&self) -> RefineStatus {
        lock(&self.state).clone()
    }

    /// Blocks until the refinement reaches a terminal state or `timeout`
    /// elapses, returning the state at that moment.
    pub(crate) fn wait(&self, timeout: Duration) -> RefineStatus {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        loop {
            if state.is_terminal() {
                return state.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return state.clone();
            }
            state = self
                .done
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// Jobs queued under scripted mode (see
/// [`Engine::set_scripted_refinements`](crate::Engine::set_scripted_refinements)).
type RefineJob = Box<dyn FnOnce() + Send + 'static>;

struct RegistryInner {
    entries: HashMap<u64, Arc<RefineEntry>>,
    /// Completed tokens in completion order (eviction queue).
    completed_order: VecDeque<u64>,
}

/// The engine's token → refinement map, plus the deterministic-harness
/// hooks the scheduler tests drive.
pub(crate) struct RefinementRegistry {
    inner: Mutex<RegistryInner>,
    next: AtomicU64,
    started: AtomicUsize,
    completed: AtomicUsize,
    failed: AtomicUsize,
    /// Scripted mode: refinement jobs queue here instead of the pool, and
    /// run only when the test harness calls
    /// [`RefinementRegistry::run_next`] — giving tests full control over
    /// the interleaving of submission, polling, and completion.
    scripted: AtomicBool,
    scripted_jobs: Mutex<VecDeque<RefineJob>>,
    /// An armed rendezvous: the next refinement to publish stops at the
    /// gate *before* its result becomes visible, so a test can observe
    /// the mid-solve `Pending` state at a precise point. One-shot.
    hold: Mutex<Option<Arc<ScriptedGate>>>,
}

impl Default for RefinementRegistry {
    fn default() -> Self {
        RefinementRegistry {
            inner: Mutex::new(RegistryInner {
                entries: HashMap::new(),
                completed_order: VecDeque::new(),
            }),
            next: AtomicU64::new(0),
            started: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            scripted: AtomicBool::new(false),
            scripted_jobs: Mutex::new(VecDeque::new()),
            hold: Mutex::new(None),
        }
    }
}

impl RefinementRegistry {
    /// Mints a fresh token and registers a pending entry under it.
    pub(crate) fn register(&self) -> (RefineToken, Arc<RefineEntry>) {
        // splitmix64 over a counter: process-unique, well-mixed, never 0.
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let mut z = n
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_mul(0xFF51AFD7ED558CCD);
        z = (z ^ (z >> 33)).wrapping_mul(0xC4CEB9FE1A85EC53);
        let id = (z ^ (z >> 33)).max(1);
        let entry = Arc::new(RefineEntry::new());
        lock(&self.inner).entries.insert(id, Arc::clone(&entry));
        self.started.fetch_add(1, Ordering::Relaxed);
        (RefineToken(id), entry)
    }

    pub(crate) fn get(&self, token: RefineToken) -> Option<Arc<RefineEntry>> {
        lock(&self.inner).entries.get(&token.0).map(Arc::clone)
    }

    /// Publishes a refinement's outcome: honors an armed hold gate, sets
    /// the terminal state, wakes long-polls, feeds the refinement-latency
    /// histogram, and evicts the oldest completed entry past the
    /// retention cap.
    pub(crate) fn publish(
        &self,
        token: RefineToken,
        entry: &RefineEntry,
        result: Result<Report, AnalysisError>,
    ) {
        if let Some(gate) = lock(&self.hold).take() {
            gate.arrive();
            gate.wait_released();
        }
        let status = match result {
            Ok(report) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                RefineStatus::Done(Arc::new(report))
            }
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                RefineStatus::Failed(e.to_string())
            }
        };
        telemetry::global()
            .refine_ms
            .observe_duration(entry.started.elapsed());
        *lock(&entry.state) = status;
        entry.done.notify_all();
        let mut inner = lock(&self.inner);
        inner.completed_order.push_back(token.0);
        while inner.completed_order.len() > COMPLETED_RETAINED {
            if let Some(old) = inner.completed_order.pop_front() {
                inner.entries.remove(&old);
            }
        }
    }

    /// Routes a refinement job: the scripted queue under scripted mode,
    /// the pool's background path otherwise.
    pub(crate) fn submit(&self, h: &EngineHandle, job: RefineJob) {
        if self.scripted.load(Ordering::SeqCst) {
            lock(&self.scripted_jobs).push_back(job);
        } else {
            h.pool.submit_background(PriorityClass::Refinement, job);
        }
    }

    pub(crate) fn set_scripted(&self, on: bool) {
        self.scripted.store(on, Ordering::SeqCst);
    }

    /// Runs the oldest queued scripted job on the calling thread.
    /// `false` when the queue is empty.
    pub(crate) fn run_next(&self) -> bool {
        let job = lock(&self.scripted_jobs).pop_front();
        match job {
            Some(job) => {
                job();
                true
            }
            None => false,
        }
    }

    pub(crate) fn queued(&self) -> usize {
        lock(&self.scripted_jobs).len()
    }

    pub(crate) fn arm_hold(&self, gate: Arc<ScriptedGate>) {
        *lock(&self.hold) = Some(gate);
    }

    pub(crate) fn stats(&self) -> RefineStats {
        let started = self.started.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        RefineStats {
            started,
            completed,
            failed,
            pending: started.saturating_sub(completed + failed),
        }
    }
}

/// Computes the anytime first answer for a state-aware request: plans the
/// program (exactly as the real analysis will), then answers every
/// obligation from certified-but-cheap sources only. Never solves an SDP,
/// never writes the cache, never touches the in-flight protocol, never
/// perturbs the hit/miss counters.
pub(crate) fn compute_first_answer(
    h: &EngineHandle,
    request: &AnalysisRequest,
) -> Result<(f64, AnytimeSources), AnalysisError> {
    let Method::StateAware { mps_width } = request.method() else {
        return Err(AnalysisError::InvalidConfig(
            "anytime analysis requires a state-aware request".into(),
        ));
    };
    let opts = h.resolve_options(request);
    let mps = request.input().build_mps(*mps_width)?;
    let plan = plan_program(
        request.program(),
        mps,
        request.noise(),
        &opts,
        request.cache_enabled(),
        request.delta_quantum(),
    )?;
    let mut sources = AnytimeSources::default();
    let epsilons: Vec<f64> = plan
        .obligations
        .iter()
        .map(|ob| {
            let peeked = ob
                .cached
                .as_ref()
                .and_then(|c| h.shared.cache.peek_cold(&c.key));
            match peeked {
                Some(eps) => {
                    sources.cache += 1;
                    eps
                }
                None => match closed_form_gate_bound(&ob.gate_matrix, &ob.noisy) {
                    Some(eps) => {
                        sources.closed_form += 1;
                        eps
                    }
                    None => {
                        // ½‖Ũ − U‖⋄ ≤ 1 always: the trivial certified bound.
                        sources.trivial += 1;
                        1.0
                    }
                },
            }
        })
        .collect();
    let derivation = assemble(plan.skeleton, &epsilons);
    Ok((derivation.epsilon(), sources))
}

/// Per-tenant admission control for one scheduling class: at most `limit`
/// admitted-and-unreleased requests per `(tenant, class)` pair. A limit
/// of 0 disables quotas entirely (every admission succeeds with a no-op
/// permit).
///
/// Admission hands out a [`QuotaPermit`] whose `Drop` releases the slot —
/// the holder threads it through to wherever the request finishes, and
/// release is automatic on every exit path (including panics).
pub struct TenantQuotas {
    limit: usize,
    slots: Mutex<HashMap<(String, PriorityClass), Arc<AtomicUsize>>>,
}

impl TenantQuotas {
    /// Quotas capping each `(tenant, class)` at `limit` in-flight
    /// requests; 0 = unlimited.
    pub fn new(limit: usize) -> Self {
        TenantQuotas {
            limit,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// The configured per-(tenant, class) cap (0 = unlimited).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Tries to admit one request for `tenant` in `class`: `Some(permit)`
    /// when under the cap (hold the permit for the request's lifetime),
    /// `None` when the tenant has saturated its quota for that class.
    pub fn try_admit(&self, tenant: &str, class: PriorityClass) -> Option<QuotaPermit> {
        if self.limit == 0 {
            return Some(QuotaPermit { slot: None });
        }
        let slot = {
            let mut slots = lock(&self.slots);
            Arc::clone(
                slots
                    .entry((tenant.to_string(), class))
                    .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
            )
        };
        // Optimistic increment with rollback: contention on one tenant's
        // counter is the loaded case quotas exist for, so stay lock-free.
        if slot.fetch_add(1, Ordering::AcqRel) < self.limit {
            Some(QuotaPermit { slot: Some(slot) })
        } else {
            slot.fetch_sub(1, Ordering::AcqRel);
            None
        }
    }

    /// Currently admitted requests for `(tenant, class)`.
    pub fn in_use(&self, tenant: &str, class: PriorityClass) -> usize {
        lock(&self.slots)
            .get(&(tenant.to_string(), class))
            .map_or(0, |s| s.load(Ordering::Acquire))
    }
}

/// Proof of admission under a [`TenantQuotas`] cap; dropping it releases
/// the slot.
pub struct QuotaPermit {
    slot: Option<Arc<AtomicUsize>>,
}

impl Drop for QuotaPermit {
    fn drop(&mut self) {
        if let Some(slot) = &self.slot {
            slot.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

impl fmt::Debug for QuotaPermit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuotaPermit")
            .field("limited", &self.slot.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_and_differ() {
        let reg = RefinementRegistry::default();
        let (a, _) = reg.register();
        let (b, _) = reg.register();
        assert_ne!(a, b);
        assert_eq!(RefineToken::parse(&a.to_string()), Some(a));
        assert_eq!(a.to_string().len(), 16);
        assert_eq!(RefineToken::parse(""), None);
        assert_eq!(RefineToken::parse("zz"), None);
        assert_eq!(RefineToken::parse("00000000000000000"), None); // 17 digits
    }

    #[test]
    fn unknown_tokens_resolve_to_none() {
        let reg = RefinementRegistry::default();
        assert!(reg.get(RefineToken(12345)).is_none());
    }

    #[test]
    fn publish_transitions_pending_to_done_and_counts() {
        let reg = RefinementRegistry::default();
        let (token, entry) = reg.register();
        assert!(matches!(entry.status(), RefineStatus::Pending));
        assert_eq!(reg.stats().pending, 1);
        reg.publish(
            token,
            &entry,
            Err(AnalysisError::InvalidConfig("boom".into())),
        );
        assert!(matches!(entry.status(), RefineStatus::Failed(ref m) if m.contains("boom")));
        let stats = reg.stats();
        assert_eq!((stats.started, stats.failed, stats.pending), (1, 1, 0));
        // Completed (terminal) entries are served repeatedly.
        assert!(reg.get(token).is_some());
        assert!(reg.get(token).unwrap().status().is_terminal());
    }

    #[test]
    fn wait_returns_immediately_on_terminal_state() {
        let reg = RefinementRegistry::default();
        let (token, entry) = reg.register();
        reg.publish(
            token,
            &entry,
            Err(AnalysisError::InvalidConfig("done already".into())),
        );
        // A long timeout must not be slept through when the state is
        // already terminal.
        let t0 = Instant::now();
        assert!(entry.wait(Duration::from_secs(60)).is_terminal());
        assert!(t0.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn wait_times_out_to_pending() {
        let reg = RefinementRegistry::default();
        let (_, entry) = reg.register();
        assert!(matches!(
            entry.wait(Duration::from_millis(1)),
            RefineStatus::Pending
        ));
    }

    #[test]
    fn completed_entries_evict_oldest_first() {
        let reg = RefinementRegistry::default();
        let mut tokens = Vec::new();
        for _ in 0..COMPLETED_RETAINED + 10 {
            let (token, entry) = reg.register();
            reg.publish(token, &entry, Err(AnalysisError::InvalidConfig("x".into())));
            tokens.push(token);
        }
        for old in &tokens[..10] {
            assert!(reg.get(*old).is_none(), "oldest completed evicted");
        }
        for new in &tokens[10..] {
            assert!(reg.get(*new).is_some(), "recent completed retained");
        }
    }

    #[test]
    fn quotas_admit_up_to_the_limit_per_tenant_and_class() {
        let q = TenantQuotas::new(2);
        let a1 = q.try_admit("alice", PriorityClass::Batch).expect("1st");
        let _a2 = q.try_admit("alice", PriorityClass::Batch).expect("2nd");
        assert!(
            q.try_admit("alice", PriorityClass::Batch).is_none(),
            "alice saturated her batch quota"
        );
        // Another tenant, and another class for the same tenant, are
        // unaffected — a heavy batch user cannot starve anyone else.
        assert!(q.try_admit("bob", PriorityClass::Batch).is_some());
        assert!(q.try_admit("alice", PriorityClass::Interactive).is_some());
        assert_eq!(q.in_use("alice", PriorityClass::Batch), 2);
        // Releasing a permit reopens the slot.
        drop(a1);
        assert_eq!(q.in_use("alice", PriorityClass::Batch), 1);
        assert!(q.try_admit("alice", PriorityClass::Batch).is_some());
    }

    #[test]
    fn zero_limit_disables_quotas() {
        let q = TenantQuotas::new(0);
        for _ in 0..100 {
            // No-op permits: admission never fails, nothing is counted.
            let permit = q.try_admit("anyone", PriorityClass::Batch).unwrap();
            drop(permit);
        }
        assert_eq!(q.in_use("anyone", PriorityClass::Batch), 0);
    }
}
