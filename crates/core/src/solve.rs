//! Stage 2 of the analysis pipeline: the **solve** stage.
//!
//! Takes the plan's flat obligation list and discharges every `(ρ̂, δ)`-
//! diamond SDP, fanning the work over the engine's worker pool (the
//! submitting thread participates too — see [`crate::pool`]).
//!
//! ## Deduplication, determinism, and accounting
//!
//! Obligations are first folded into **units**: all obligations sharing a
//! cache key become one unit (solved once — its value is *canonical*: the
//! quantized judgment `(ρ_q, δ_eff)` is recoverable from the key alone, so
//! whichever thread solves it produces bit-identical ε), and each uncached
//! obligation is its own unit (solved at its exact `(ρ′, δ)`). Unit
//! results are written back by obligation index, so **the ε vector, the
//! derivation assembled from it, and the `sdp_solves`/`cache_hits`
//! accounting are identical for any pool size** — including 1, which is
//! byte-for-byte the sequential analysis.
//!
//! The stats mirror what the old sequential walk counted: the first
//! obligation of a key is the solve (or the hit, if a certificate
//! existed), every later one a cache hit. Obligations answered by folding
//! onto a solve that was in flight — same-request duplicates and
//! concurrent batch siblings racing on one key — are *additionally*
//! counted as `inflight_dedup`.

use crate::diamond::rho_delta_diamond;
use crate::engine::{Certificate, EngineHandle, Lookup};
use crate::error::AnalysisError;
use crate::plan::SolveObligation;
use crate::pool::{spawn_indexed, PendingRun};
use gleipnir_sdp::SolverOptions;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The solve stage's result: one ε per obligation (in plan order) plus the
/// accounting the report surfaces.
pub(crate) struct SolveOutcome {
    /// Certified bounds, indexed like the plan's obligation list.
    pub epsilons: Vec<f64>,
    /// SDPs actually solved by this stage.
    pub sdp_solves: usize,
    /// Judgments answered from the engine's cache (or by folding onto a
    /// solve this stage performed once).
    pub cache_hits: usize,
    /// Judgments deduplicated against an in-flight solve (a subset of
    /// `cache_hits`).
    pub inflight_dedup: usize,
    /// Threads that solved at least one unit (1 = the caller alone).
    pub solve_workers: usize,
    /// Wall-clock span of the stage's execution: first unit claimed →
    /// last unit finished. (Dispatch-to-join would over-report when the
    /// caller overlaps other work — e.g. the adaptive sweep planning the
    /// next width — before joining.)
    pub elapsed: Duration,
}

/// One schedulable solve: either a canonical cached judgment shared by
/// every obligation with its key, or a single exact-δ obligation.
enum Unit {
    /// Obligation indices sharing one cache key, in plan order.
    Keyed(Vec<usize>),
    /// A cache-bypassing obligation solved at its exact judgment.
    Exact(usize),
}

/// How a unit's value was obtained (drives the accounting).
enum UnitValue {
    /// This stage solved the SDP.
    Solved(f64),
    /// A finished certificate answered it.
    CacheHit(f64),
    /// Another thread's in-flight solve answered it.
    Joined(f64),
}

/// A dispatched-but-not-joined solve stage. The caller may overlap other
/// work (the adaptive sweep plans its next MPS width here) before calling
/// [`PendingSolve::join`].
pub(crate) struct PendingSolve {
    pending: PendingRun<Option<UnitValue>>,
    units: Arc<Vec<Unit>>,
    n_obligations: usize,
}

/// Folds obligations into units and dispatches them over the pool.
pub(crate) fn spawn_solve(
    h: &EngineHandle,
    obligations: Vec<SolveObligation>,
    opts: SolverOptions,
) -> PendingSolve {
    let n_obligations = obligations.len();
    let mut units: Vec<Unit> = Vec::new();
    let mut by_key: HashMap<&[u64], usize> = HashMap::new();
    for (i, ob) in obligations.iter().enumerate() {
        match &ob.cached {
            Some(c) => match by_key.get(c.key.as_slice()) {
                Some(&u) => match &mut units[u] {
                    Unit::Keyed(obs) => obs.push(i),
                    Unit::Exact(_) => unreachable!("keyed units never alias exact ones"),
                },
                None => {
                    by_key.insert(c.key.as_slice(), units.len());
                    units.push(Unit::Keyed(vec![i]));
                }
            },
            None => units.push(Unit::Exact(i)),
        }
    }
    drop(by_key); // releases the borrow on `obligations`

    let units = Arc::new(units);
    let obligations = Arc::new(obligations);
    let shared = Arc::clone(&h.shared);
    let task_units = Arc::clone(&units);
    // First failure cancels the units not yet claimed (the old sequential
    // walk stopped at its first failing gate; solving hundreds of further
    // SDPs just to report the same error would waste minutes of CPU).
    // Already-running units still finish — leads always complete.
    let cancelled = Arc::new(AtomicBool::new(false));
    let pending = spawn_indexed(&h.pool, units.len(), move |u| {
        if cancelled.load(Ordering::Relaxed) {
            return Ok(None);
        }
        let solve_exact = |ob: &SolveObligation| {
            rho_delta_diamond(&ob.gate_matrix, &ob.noisy, &ob.rho_prime, ob.delta, &opts)
                .map(|r| r.bound)
        };
        let outcome = match &task_units[u] {
            Unit::Exact(i) => solve_exact(&obligations[*i])
                .map(UnitValue::Solved)
                .map_err(AnalysisError::from),
            Unit::Keyed(obs) => {
                let ob = &obligations[obs[0]];
                let cached = ob.cached.as_ref().expect("keyed unit has a judgment");
                match shared.cache.lookup_or_lead(&cached.key) {
                    Lookup::Hit(eps) => Ok(UnitValue::CacheHit(eps)),
                    Lookup::Join(slot) => slot
                        .wait()
                        .map(UnitValue::Joined)
                        .map_err(AnalysisError::Diamond),
                    Lookup::Lead(guard) => {
                        let result = rho_delta_diamond(
                            &ob.gate_matrix,
                            &ob.noisy,
                            &cached.rho_q,
                            cached.delta_eff,
                            &opts,
                        );
                        match result {
                            Ok(r) => {
                                let eps = r.bound;
                                guard.complete(Ok(Certificate {
                                    eps,
                                    dim: ob.gate_matrix.rows() as u32,
                                    n_kraus: ob.noisy.kraus().len() as u32,
                                    dual: Arc::new(r.dual),
                                }));
                                Ok(UnitValue::Solved(eps))
                            }
                            Err(e) => {
                                guard.complete(Err(e.clone()));
                                Err(AnalysisError::Diamond(e))
                            }
                        }
                    }
                }
            }
        };
        if outcome.is_err() {
            // The store is sequenced before this task's result slot is
            // written, so by the time join() collects, the triggering
            // failure is always recorded alongside any skipped units.
            cancelled.store(true, Ordering::Relaxed);
        }
        outcome.map(Some)
    });
    PendingSolve {
        pending,
        units,
        n_obligations,
    }
}

impl PendingSolve {
    /// Joins the stage: the calling thread claims remaining units, then
    /// the results are folded back into per-obligation ε's and stats.
    ///
    /// # Errors
    ///
    /// The error of the earliest failing obligation (in plan order) among
    /// the units that ran — with a sequential pool this is exactly the old
    /// walk's first-failure, since the first failure cancels everything
    /// after it.
    pub(crate) fn join(self, h: &EngineHandle) -> Result<SolveOutcome, AnalysisError> {
        let out = self.pending.join();
        let mut epsilons = vec![0.0f64; self.n_obligations];
        let mut sdp_solves = 0usize;
        let mut cache_hits = 0usize;
        let mut inflight_dedup = 0usize;
        // (first failing obligation index, its error)
        let mut failure: Option<(usize, AnalysisError)> = None;
        for (unit, result) in self.units.iter().zip(out.results) {
            let (first, followers): (usize, &[usize]) = match unit {
                Unit::Exact(i) => (*i, &[]),
                Unit::Keyed(obs) => (obs[0], &obs[1..]),
            };
            match result {
                // A unit skipped by cancellation: the triggering failure
                // is recorded in another slot, and the whole outcome is
                // discarded on the error path — nothing to fold in.
                Ok(None) => {}
                Ok(Some(value)) => {
                    let (eps, in_flight) = match value {
                        UnitValue::Solved(eps) => {
                            sdp_solves += 1;
                            (eps, true)
                        }
                        UnitValue::CacheHit(eps) => {
                            cache_hits += 1;
                            (eps, false)
                        }
                        UnitValue::Joined(eps) => {
                            cache_hits += 1;
                            inflight_dedup += 1;
                            (eps, true)
                        }
                    };
                    // Followers replay the sequential accounting: the
                    // first occurrence paid (or found) the certificate,
                    // the rest are cache hits — and when the value came
                    // from a solve in flight (ours or a sibling's), they
                    // were deduped against it.
                    cache_hits += followers.len();
                    h.cache().note_follower_hits(followers.len());
                    if in_flight {
                        inflight_dedup += followers.len();
                        h.cache().note_inflight_dedup(followers.len());
                    }
                    epsilons[first] = eps;
                    for &i in followers {
                        epsilons[i] = eps;
                    }
                }
                Err(e) => {
                    if failure.as_ref().map_or(true, |(i, _)| first < *i) {
                        failure = Some((first, e));
                    }
                }
            }
        }
        if let Some((_, e)) = failure {
            return Err(e);
        }
        Ok(SolveOutcome {
            epsilons,
            sdp_solves,
            cache_hits,
            inflight_dedup,
            solve_workers: out.participants,
            elapsed: out.elapsed,
        })
    }
}
