//! Stage 2 of the analysis pipeline: the **solve** stage, now fronted by
//! the tiered bound engine.
//!
//! Takes the plan's flat obligation list and discharges every `(ρ̂, δ)`-
//! diamond judgment, fanning the work over the engine's worker pool (the
//! submitting thread participates too — see [`crate::pool`]). Under the
//! request's [`TierPolicy`] each judgment is answered by the cheapest
//! sound mechanism:
//!
//! * **cache hit / in-flight join** — a finished certificate (or a solve
//!   already running on another thread) answers it outright;
//! * **Tier 0, closed form** — the noisy gate's residual channel is
//!   Pauli-type, so the certified analytic bound substitutes for the SDP
//!   (zero interior-point iterations). The value is *not* cached and never
//!   enters the in-flight protocol — it is cheaper to recompute than to
//!   store, and keeping it out of both means exact-policy requests on the
//!   same engine can never observe it (not even by joining a concurrent
//!   fast-policy solve);
//! * **Tier 1, warm-started solve** — a neighboring cached certificate
//!   (same gate/Kraus, coarse-equal ρ′, nearby δ_eff) donates its dual
//!   vector as the interior-point starting iterate;
//! * **Tier 2, cold solve** — the classic solve.
//!
//! ## Deduplication, determinism, and accounting
//!
//! Obligations are first folded into **units**: all obligations sharing a
//! cache key become one unit (solved once — its value is *canonical*: the
//! quantized judgment `(ρ_q, δ_eff)` is recoverable from the key alone, so
//! whichever thread solves it produces bit-identical ε), and each uncached
//! obligation is its own unit (solved at its exact `(ρ′, δ)`). Unit
//! results are written back by obligation index, so **the ε vector, the
//! derivation assembled from it, and the `sdp_solves`/`cache_hits`
//! accounting are identical for any pool size** — including 1, which is
//! byte-for-byte the sequential analysis.
//!
//! Tiering preserves that invariant: warm-start donors are chosen by a
//! *sequential* pre-dispatch probe ([`crate::engine::SdpCache::nearest_dual`])
//! over the cache as it stood before this stage's own solves, with a total
//! order on candidates — so for a fixed engine state the tier decisions
//! (and hence every ε bit) are independent of scheduling. With the default
//! [`TierPolicy::exact`] the stage is bit-identical to the pre-tiering
//! engine.
//!
//! The stats mirror what the old sequential walk counted: the first
//! obligation of a key is the solve (or the hit, if a certificate
//! existed), every later one a cache hit. Obligations answered by folding
//! onto a solve that was in flight — same-request duplicates and
//! concurrent batch siblings racing on one key — are *additionally*
//! counted as `inflight_dedup`. Tier 0 answers are a category of their
//! own ([`TierCounts::closed_form`]): neither `sdp_solves` nor
//! `cache_hits`, so `gates = sdp_solves + cache_hits + closed_form` under
//! any policy.

use crate::diamond::{rho_delta_diamond, rho_delta_diamond_warm};
use crate::engine::{Certificate, EngineHandle, Lookup};
use crate::error::AnalysisError;
use crate::plan::SolveObligation;
use crate::pool::{spawn_indexed, PendingRun};
use crate::tiers::{closed_form_gate_bound, note_engine_totals, BoundTier, TierCounts, TierPolicy};
use gleipnir_sdp::{SolverOptions, SolverProfile};
use gleipnir_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The solve stage's result: one ε per obligation (in plan order) plus the
/// accounting the report surfaces.
pub(crate) struct SolveOutcome {
    /// Certified bounds, indexed like the plan's obligation list.
    pub epsilons: Vec<f64>,
    /// Which tier produced each ε, indexed like `epsilons` (cache hits and
    /// in-flight joins report the tier of the certificate that answered
    /// them). The differential analyzer names these per changed gate.
    pub tiers: Vec<BoundTier>,
    /// SDPs actually solved by this stage (warm + cold; Tier 0 answers are
    /// counted in `tier_counts.closed_form` instead).
    pub sdp_solves: usize,
    /// Judgments answered from the engine's cache (or by folding onto a
    /// solve this stage performed once).
    pub cache_hits: usize,
    /// Judgments deduplicated against an in-flight solve (a subset of
    /// `cache_hits`).
    pub inflight_dedup: usize,
    /// How each tier-answered judgment was produced.
    pub tier_counts: TierCounts,
    /// Interior-point iterations spent by this stage's solves.
    pub ip_iterations: usize,
    /// Aggregated per-phase solver timings across this stage's SDP solves
    /// (closed-form answers contribute nothing).
    pub solver_profile: SolverProfile,
    /// Threads that solved at least one unit (1 = the caller alone).
    pub solve_workers: usize,
    /// Wall-clock span of the stage's execution: first unit claimed →
    /// last unit finished. (Dispatch-to-join would over-report when the
    /// caller overlaps other work — e.g. the adaptive sweep planning the
    /// next width — before joining.)
    pub elapsed: Duration,
}

/// One schedulable solve: either a canonical cached judgment shared by
/// every obligation with its key, or a single exact-δ obligation.
enum Unit {
    /// Obligation indices sharing one cache key, in plan order.
    Keyed(Vec<usize>),
    /// A cache-bypassing obligation solved at its exact judgment.
    Exact(usize),
}

/// How a unit's value was obtained (drives the accounting).
enum UnitValue {
    /// This stage answered it via a bound-engine tier.
    Answered {
        eps: f64,
        tier: BoundTier,
        /// Interior-point iterations (0 for Tier 0).
        iterations: usize,
        /// Per-phase solver timings (zeroed for Tier 0).
        profile: SolverProfile,
    },
    /// A finished certificate answered it (with the tier that produced the
    /// certificate).
    CacheHit(f64, BoundTier),
    /// Another thread's in-flight solve answered it.
    Joined(f64, BoundTier),
}

/// A dispatched-but-not-joined solve stage. The caller may overlap other
/// work (the adaptive sweep plans its next MPS width here) before calling
/// [`PendingSolve::join`].
pub(crate) struct PendingSolve {
    pending: PendingRun<Option<UnitValue>>,
    units: Arc<Vec<Unit>>,
    n_obligations: usize,
}

/// Folds obligations into units, resolves Tier-1 warm-start donors
/// (sequentially, against the pre-stage cache state), and dispatches the
/// units over the pool.
pub(crate) fn spawn_solve(
    h: &EngineHandle,
    obligations: Vec<SolveObligation>,
    opts: SolverOptions,
    policy: TierPolicy,
) -> PendingSolve {
    let n_obligations = obligations.len();
    let mut units: Vec<Unit> = Vec::new();
    let mut by_key: HashMap<&[u64], usize> = HashMap::new();
    for (i, ob) in obligations.iter().enumerate() {
        match &ob.cached {
            Some(c) => match by_key.get(c.key.as_slice()) {
                Some(&u) => match &mut units[u] {
                    Unit::Keyed(obs) => obs.push(i),
                    Unit::Exact(_) => unreachable!("keyed units never alias exact ones"),
                },
                None => {
                    by_key.insert(c.key.as_slice(), units.len());
                    units.push(Unit::Keyed(vec![i]));
                }
            },
            None => units.push(Unit::Exact(i)),
        }
    }
    drop(by_key); // releases the borrow on `obligations`

    // Tier-1 donor resolution, strictly before dispatch: the probe sees
    // only certificates that existed before this stage's own solves, so
    // the donor choice (and therefore every warm-started ε) is a
    // deterministic function of the pre-request engine state — pool size
    // and scheduling can't change it.
    let warm_duals: Vec<Option<Arc<Vec<f64>>>> = units
        .iter()
        .map(|u| {
            if !policy.warm_start {
                return None;
            }
            let Unit::Keyed(obs) = u else { return None };
            let ob = &obligations[obs[0]];
            let cached = ob.cached.as_ref().expect("keyed unit has a judgment");
            if h.shared.cache.contains(&cached.key) {
                return None; // a finished certificate will answer it
            }
            h.shared.cache.nearest_dual(
                &cached.key,
                ob.gate_matrix.rows() as u32,
                ob.noisy.kraus().len() as u32,
            )
        })
        .collect();

    let units = Arc::new(units);
    let obligations = Arc::new(obligations);
    let warm_duals = Arc::new(warm_duals);
    let shared = Arc::clone(&h.shared);
    let task_units = Arc::clone(&units);
    // First failure cancels the units not yet claimed (the old sequential
    // walk stopped at its first failing gate; solving hundreds of further
    // SDPs just to report the same error would waste minutes of CPU).
    // Already-running units still finish — leads always complete.
    let cancelled = Arc::new(AtomicBool::new(false));
    // Captured once at dispatch: pool threads record their obligation
    // spans against the submitting request's trace (the ambient context
    // does not cross threads). `dispatch_ns` turns claim time into
    // per-unit pool queue wait. Recording happens strictly *after* each
    // unit's value is computed — observation only, never an input.
    let trace_ctx = telemetry::active();
    let dispatch_ns = telemetry::now_ns();
    let pending = spawn_indexed(&h.pool, h.class, units.len(), move |u| {
        if cancelled.load(Ordering::Relaxed) {
            return Ok(None);
        }
        let claim_ns = telemetry::now_ns();
        let mut via_bypass = false;
        let closed_form = |ob: &SolveObligation| -> Option<f64> {
            policy
                .closed_form
                .then(|| closed_form_gate_bound(&ob.gate_matrix, &ob.noisy))
                .flatten()
        };
        let outcome = match &task_units[u] {
            Unit::Exact(i) => {
                let ob = &obligations[*i];
                match closed_form(ob) {
                    Some(eps) => Ok(UnitValue::Answered {
                        eps,
                        tier: BoundTier::ClosedForm,
                        iterations: 0,
                        profile: SolverProfile::default(),
                    }),
                    None => rho_delta_diamond(
                        &ob.gate_matrix,
                        &ob.noisy,
                        &ob.rho_prime,
                        ob.delta,
                        &opts,
                    )
                    .map(|r| UnitValue::Answered {
                        eps: r.bound,
                        tier: r.tier,
                        iterations: r.iterations,
                        profile: r.profile,
                    })
                    .map_err(AnalysisError::from),
                }
            }
            Unit::Keyed(obs) => {
                let ob = &obligations[obs[0]];
                let cached = ob.cached.as_ref().expect("keyed unit has a judgment");
                // Tier 0 stays entirely outside the cache AND the in-flight
                // protocol: the analytic value is never published anywhere a
                // concurrent exact-policy request could observe it (joining
                // an in-flight slot included). A finished certificate still
                // wins — it is tighter (state-aware) and engine-consistent.
                let analytic = if shared.cache.contains(&cached.key) {
                    None
                } else {
                    closed_form(ob)
                };
                if let Some(eps) = analytic {
                    Ok(UnitValue::Answered {
                        eps,
                        tier: BoundTier::ClosedForm,
                        iterations: 0,
                        profile: SolverProfile::default(),
                    })
                } else {
                    // An exact-policy request (`!warm_start`) never trusts
                    // warm-produced ε bits: warm certificates read as
                    // misses (re-led cold), warm in-flight leads are
                    // bypassed with a private cold solve.
                    match shared.cache.lookup_or_lead(
                        &cached.key,
                        policy.warm_start,
                        warm_duals[u].is_none(),
                    ) {
                        Lookup::Hit(eps, tier) => Ok(UnitValue::CacheHit(eps, tier)),
                        Lookup::Join(slot) => slot
                            .wait()
                            .map(|(eps, tier)| UnitValue::Joined(eps, tier))
                            .map_err(AnalysisError::Diamond),
                        Lookup::Bypass => {
                            via_bypass = true;
                            rho_delta_diamond(
                                &ob.gate_matrix,
                                &ob.noisy,
                                &cached.rho_q,
                                cached.delta_eff,
                                &opts,
                            )
                            .map(|r| UnitValue::Answered {
                                eps: r.bound,
                                tier: r.tier,
                                iterations: r.iterations,
                                profile: r.profile,
                            })
                            .map_err(AnalysisError::from)
                        }
                        Lookup::Lead(guard) => {
                            let result = match &warm_duals[u] {
                                Some(y0) => rho_delta_diamond_warm(
                                    &ob.gate_matrix,
                                    &ob.noisy,
                                    &cached.rho_q,
                                    cached.delta_eff,
                                    &opts,
                                    y0,
                                ),
                                None => rho_delta_diamond(
                                    &ob.gate_matrix,
                                    &ob.noisy,
                                    &cached.rho_q,
                                    cached.delta_eff,
                                    &opts,
                                ),
                            };
                            match result {
                                Ok(r) => {
                                    let eps = r.bound;
                                    guard.complete(Ok(Certificate {
                                        eps,
                                        dim: ob.gate_matrix.rows() as u32,
                                        n_kraus: ob.noisy.kraus().len() as u32,
                                        tier: r.tier,
                                        dual: Arc::new(r.dual),
                                    }));
                                    Ok(UnitValue::Answered {
                                        eps,
                                        tier: r.tier,
                                        iterations: r.iterations,
                                        profile: r.profile,
                                    })
                                }
                                Err(e) => {
                                    guard.complete(Err(e.clone()));
                                    Err(AnalysisError::Diamond(e))
                                }
                            }
                        }
                    }
                }
            }
        };
        if let Ok(value) = &outcome {
            // Every actual interior-point solve feeds the global solve-
            // time histogram (tracing on or off); the obligation span and
            // its re-emitted solver-phase children only exist for traced
            // requests.
            if let UnitValue::Answered { profile, tier, .. } = value {
                if *tier != BoundTier::ClosedForm {
                    telemetry::global().ip_solve_ms.observe_ms(profile.total_ms);
                }
            }
            if let Some(ctx) = trace_ctx {
                record_obligation_span(
                    ctx,
                    &task_units[u],
                    value,
                    via_bypass,
                    dispatch_ns,
                    claim_ns,
                );
            }
        }
        if outcome.is_err() {
            // The store is sequenced before this task's result slot is
            // written, so by the time join() collects, the triggering
            // failure is always recorded alongside any skipped units.
            cancelled.store(true, Ordering::Relaxed);
        }
        outcome.map(Some)
    });
    PendingSolve {
        pending,
        units,
        n_obligations,
    }
}

/// Records one obligation's span (`value` = pool queue-wait ns, `value2`
/// = IP iterations, `detail` = outcome code) and, when the unit paid for
/// an interior-point solve, re-emits the seven `SolverProfile` phases as
/// child spans laid out consecutively from the obligation's start. All of
/// it is post-hoc bookkeeping on the worker thread — the solver hot path
/// records nothing, and nothing here allocates beyond the ring writes.
fn record_obligation_span(
    ctx: telemetry::TraceCtx,
    unit: &Unit,
    value: &UnitValue,
    via_bypass: bool,
    dispatch_ns: u64,
    claim_ns: u64,
) {
    use telemetry::detail as d;
    let (detail, iterations, profile) = match value {
        UnitValue::Answered {
            tier: BoundTier::ClosedForm,
            ..
        } => match unit {
            Unit::Exact(_) => (d::OBLIGATION_CLOSED_FORM, 0, None),
            Unit::Keyed(_) => (d::OBLIGATION_ANALYTIC, 0, None),
        },
        UnitValue::Answered {
            tier,
            iterations,
            profile,
            ..
        } => {
            let detail = match unit {
                Unit::Exact(_) => d::OBLIGATION_EXACT,
                Unit::Keyed(_) if via_bypass => d::OBLIGATION_BYPASS,
                Unit::Keyed(_) => match tier {
                    BoundTier::WarmStarted => d::OBLIGATION_LEAD_WARM,
                    _ => d::OBLIGATION_LEAD_COLD,
                },
            };
            (detail, *iterations, Some(profile))
        }
        UnitValue::CacheHit(..) => (d::OBLIGATION_CACHE_HIT, 0, None),
        UnitValue::Joined(..) => (d::OBLIGATION_JOINED, 0, None),
    };
    let span_id = telemetry::next_span_id();
    telemetry::record_span(
        ctx,
        telemetry::SpanName::Obligation,
        span_id,
        claim_ns,
        telemetry::now_ns(),
        detail,
        claim_ns.saturating_sub(dispatch_ns),
        iterations as u64,
    );
    if let Some(profile) = profile {
        let child = telemetry::TraceCtx {
            trace_id: ctx.trace_id,
            parent: span_id,
        };
        let mut t = claim_ns;
        for (i, (_, ms)) in profile.phases().iter().enumerate() {
            let end = t + (ms * 1e6) as u64;
            telemetry::record_span(
                child,
                telemetry::SpanName::phase(i),
                telemetry::next_span_id(),
                t,
                end,
                0,
                0,
                0,
            );
            t = end;
        }
    }
}

impl PendingSolve {
    /// Joins the stage: the calling thread claims remaining units, then
    /// the results are folded back into per-obligation ε's and stats.
    ///
    /// # Errors
    ///
    /// The error of the earliest failing obligation (in plan order) among
    /// the units that ran — with a sequential pool this is exactly the old
    /// walk's first-failure, since the first failure cancels everything
    /// after it.
    pub(crate) fn join(self, h: &EngineHandle) -> Result<SolveOutcome, AnalysisError> {
        let out = self.pending.join();
        let mut epsilons = vec![0.0f64; self.n_obligations];
        let mut tiers = vec![BoundTier::ColdSolve; self.n_obligations];
        let mut sdp_solves = 0usize;
        let mut cache_hits = 0usize;
        let mut inflight_dedup = 0usize;
        let mut tier_counts = TierCounts::default();
        let mut ip_iterations = 0usize;
        let mut solver_profile = SolverProfile::default();
        // (first failing obligation index, its error)
        let mut failure: Option<(usize, AnalysisError)> = None;
        for (unit, result) in self.units.iter().zip(out.results) {
            let (first, followers): (usize, &[usize]) = match unit {
                Unit::Exact(i) => (*i, &[]),
                Unit::Keyed(obs) => (obs[0], &obs[1..]),
            };
            match result {
                // A unit skipped by cancellation: the triggering failure
                // is recorded in another slot, and the whole outcome is
                // discarded on the error path — nothing to fold in.
                Ok(None) => {}
                Ok(Some(value)) => {
                    let (eps, tier) = match value {
                        UnitValue::Answered {
                            eps,
                            tier: BoundTier::ClosedForm,
                            ..
                        } => {
                            // Tier 0 judgments (and their folded
                            // duplicates) are their own accounting
                            // category — the cache was never consulted
                            // for the answer.
                            tier_counts.closed_form += 1 + followers.len();
                            (eps, BoundTier::ClosedForm)
                        }
                        UnitValue::Answered {
                            eps,
                            tier,
                            iterations,
                            profile,
                        } => {
                            sdp_solves += 1;
                            ip_iterations += iterations;
                            solver_profile.add(&profile);
                            match tier {
                                BoundTier::WarmStarted => tier_counts.warm += 1,
                                _ => tier_counts.cold += 1,
                            }
                            // Followers replay the sequential accounting:
                            // the first occurrence paid the certificate,
                            // the rest are cache hits deduped against the
                            // solve in flight.
                            cache_hits += followers.len();
                            inflight_dedup += followers.len();
                            h.cache().note_follower_hits(followers.len());
                            h.cache().note_inflight_dedup(followers.len());
                            (eps, tier)
                        }
                        UnitValue::CacheHit(eps, tier) => {
                            cache_hits += 1 + followers.len();
                            h.cache().note_follower_hits(followers.len());
                            (eps, tier)
                        }
                        UnitValue::Joined(eps, tier) => {
                            cache_hits += 1 + followers.len();
                            inflight_dedup += 1 + followers.len();
                            h.cache().note_follower_hits(followers.len());
                            h.cache().note_inflight_dedup(followers.len());
                            (eps, tier)
                        }
                    };
                    epsilons[first] = eps;
                    tiers[first] = tier;
                    for &i in followers {
                        epsilons[i] = eps;
                        tiers[i] = tier;
                    }
                }
                Err(e) => {
                    if failure.as_ref().map_or(true, |(i, _)| first < *i) {
                        failure = Some((first, e));
                    }
                }
            }
        }
        if let Some((_, e)) = failure {
            return Err(e);
        }
        note_engine_totals(h, tier_counts, ip_iterations);
        Ok(SolveOutcome {
            epsilons,
            tiers,
            sdp_solves,
            cache_hits,
            inflight_dedup,
            tier_counts,
            ip_iterations,
            solver_profile,
            solve_workers: out.participants,
            elapsed: out.elapsed,
        })
    }
}
