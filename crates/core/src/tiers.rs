//! The tiered bound engine's vocabulary: which tier answered a judgment,
//! what a request allows, and the counters that flow into reports,
//! `--json` output, and the server's `/metrics`.
//!
//! A per-gate `(ρ̂, δ)`-diamond judgment can be answered three ways, tried
//! in order of decreasing cheapness (see `docs/PERFORMANCE.md` for the
//! decision tree and `docs/SOUNDNESS.md` for why each is sound):
//!
//! * **Tier 0 — closed form** ([`BoundTier::ClosedForm`]): the noisy
//!   gate's residual channel classifies as Pauli-type
//!   ([`gleipnir_noise::classify_residual`]) and the certified analytic
//!   bound substitutes for the SDP. Zero interior-point iterations; the
//!   answer ignores `(ρ̂, δ)` and is therefore an upper bound on the
//!   constrained optimum by monotonicity.
//! * **Tier 1 — warm-started solve** ([`BoundTier::WarmStarted`]): a
//!   neighboring cache entry (same gate/Kraus, same ρ′ to coarse
//!   precision, nearby effective δ) donates its weak-duality dual vector
//!   as the interior-point starting iterate
//!   ([`gleipnir_sdp::SdpProblem::solve_warm`]). The result carries its
//!   own freshly verified certificate.
//! * **Tier 2 — cold solve** ([`BoundTier::ColdSolve`]): today's full
//!   interior-point solve from the standard cold start.
//!
//! Tiering is **opt-in per request** ([`TierPolicy`], default
//! [`TierPolicy::exact`]): Tier 0 and Tier 1 both change the produced ε at
//! the bit level (sound either way), and the default must preserve the
//! engine's bit-exactness contract (`tests/pipeline_determinism.rs`).
//! With a fixed engine state, tiering is still deterministic: warm-start
//! donors are chosen by a sequential pre-dispatch probe over the cache as
//! it stood *before* the request's own solves, with a total order on
//! candidates — so pool size never changes the answer.

use crate::engine::EngineHandle;
use gleipnir_linalg::CMat;
use gleipnir_noise::{classify_residual, Channel};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a single bound was produced (carried by
/// [`DiamondResult`](crate::DiamondResult) and the cache's certificates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundTier {
    /// Certified analytic closed form (Pauli-type residual channel).
    ClosedForm,
    /// Interior-point solve warm-started from a neighboring dual.
    WarmStarted,
    /// Interior-point solve from the standard cold start.
    ColdSolve,
}

impl BoundTier {
    /// A stable machine-readable tier name.
    pub fn name(&self) -> &'static str {
        match self {
            BoundTier::ClosedForm => "closed_form",
            BoundTier::WarmStarted => "warm",
            BoundTier::ColdSolve => "cold",
        }
    }
}

/// Which tiers a request may use (see the module docs). The default is
/// [`TierPolicy::exact`] — cold solves only, preserving the engine's
/// bit-exactness contract; [`TierPolicy::fast`] enables everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierPolicy {
    /// Allow Tier 0 closed-form answers for Pauli-type channels.
    pub closed_form: bool,
    /// Allow Tier 1 warm starts from neighboring cached duals.
    pub warm_start: bool,
}

impl TierPolicy {
    /// Cold solves only (the default): bit-identical to the pre-tiering
    /// engine.
    pub fn exact() -> Self {
        TierPolicy::default()
    }

    /// All tiers enabled: closed forms where provable, warm starts where a
    /// neighbor exists, cold solves otherwise.
    pub fn fast() -> Self {
        TierPolicy {
            closed_form: true,
            warm_start: true,
        }
    }

    /// Whether this policy is the exact (all-off) one.
    pub fn is_exact(&self) -> bool {
        !self.closed_form && !self.warm_start
    }
}

/// Per-request tier accounting: how many gate judgments each tier
/// answered. Flows into [`Report`](crate::Report), the CLI's `--json`
/// output, and the server's `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Judgments answered by the Tier 0 closed form (including duplicates
    /// folded onto one classification).
    pub closed_form: usize,
    /// SDPs solved with a Tier 1 warm start.
    pub warm: usize,
    /// SDPs solved cold (Tier 2).
    pub cold: usize,
}

impl TierCounts {
    /// Total judgments the tiers answered (cache hits excluded).
    pub fn total(&self) -> usize {
        self.closed_form + self.warm + self.cold
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: TierCounts) {
        self.closed_form += other.closed_form;
        self.warm += other.warm;
        self.cold += other.cold;
    }
}

/// Engine-lifetime tier totals (a [`TierCounts`] plus cumulative
/// interior-point iteration work), served by
/// [`Engine::tier_stats`](crate::Engine::tier_stats) and the server's
/// `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Judgments answered by the closed form.
    pub closed_form: usize,
    /// Warm-started SDP solves.
    pub warm: usize,
    /// Cold SDP solves.
    pub cold: usize,
    /// Interior-point iterations spent across all solves (warm + cold) —
    /// the currency the tiers save.
    pub ip_iterations: usize,
}

/// The atomics behind [`TierStats`] (relaxed: advisory counters only).
#[derive(Debug, Default)]
pub(crate) struct TierTotals {
    closed_form: AtomicUsize,
    warm: AtomicUsize,
    cold: AtomicUsize,
    ip_iterations: AtomicUsize,
}

impl TierTotals {
    pub(crate) fn note(&self, counts: TierCounts, ip_iterations: usize) {
        let add = |a: &AtomicUsize, n: usize| {
            if n > 0 {
                a.fetch_add(n, Ordering::Relaxed);
            }
        };
        add(&self.closed_form, counts.closed_form);
        add(&self.warm, counts.warm);
        add(&self.cold, counts.cold);
        add(&self.ip_iterations, ip_iterations);
    }

    pub(crate) fn snapshot(&self) -> TierStats {
        TierStats {
            closed_form: self.closed_form.load(Ordering::Relaxed),
            warm: self.warm.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            ip_iterations: self.ip_iterations.load(Ordering::Relaxed),
        }
    }
}

/// The Tier 0 gate answer: the certified closed-form upper bound on
/// `½‖Ũ − U‖⋄` when the noisy gate's residual channel is Pauli-type,
/// `None` otherwise. Sound for any `(ρ̂, δ)` constraint by monotonicity
/// (the constrained diamond norm never exceeds the unconstrained one).
pub(crate) fn closed_form_gate_bound(ideal: &CMat, noisy: &Channel) -> Option<f64> {
    classify_residual(ideal, noisy.kraus()).closed_form_diamond_bound()
}

/// Convenience used by the solve stage: records a finished stage's tier
/// work in the engine-lifetime totals.
pub(crate) fn note_engine_totals(h: &EngineHandle, counts: TierCounts, ip_iterations: usize) {
    h.shared.tiers.note(counts, ip_iterations);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Certificate;
    use crate::{AnalysisRequest, Engine, Method, StateAwareReport};
    use gleipnir_circuit::Gate;
    use gleipnir_noise::NoiseModel;
    use std::sync::Arc;

    /// A small non-Pauli workload (amplitude damping forces the SDP
    /// tiers) at the given δ quantization and policy.
    fn run(engine: &Engine, quantum: f64, tiers: TierPolicy) -> StateAwareReport {
        let program = {
            let mut b = gleipnir_circuit::ProgramBuilder::new(4);
            for q in 0..4 {
                b.h(q);
            }
            for q in 0..3 {
                b.rzz(q, q + 1, 0.8);
            }
            for q in 0..4 {
                b.rx(q, 0.6);
            }
            b.build()
        };
        let request = AnalysisRequest::builder(program)
            .noise(NoiseModel::uniform_amplitude_damping(1e-3))
            .method(Method::StateAware { mps_width: 2 })
            .delta_quantum(quantum)
            .tiering(tiers)
            .build()
            .unwrap();
        engine
            .analyze(&request)
            .unwrap()
            .into_state_aware()
            .unwrap()
    }

    /// Seeds an engine with certificates at quantum 1e-6 — the donors a
    /// re-bucketed (1.1e-6) request warm-starts from.
    fn seeded_engine() -> Engine {
        let engine = Engine::new();
        let seeded = run(&engine, 1e-6, TierPolicy::exact());
        assert!(seeded.sdp_solves() > 0);
        engine
    }

    fn warm_only() -> TierPolicy {
        TierPolicy {
            closed_form: false,
            warm_start: true,
        }
    }

    /// Overwrites every cached certificate's dual vector via `mutate`,
    /// keeping keys (and the neighbor index) intact.
    fn corrupt_duals(engine: &Engine, mutate: impl Fn(usize, &[f64]) -> Vec<f64>) {
        for (i, (key, cert)) in engine.sdp_cache().export().into_iter().enumerate() {
            engine.sdp_cache().insert(
                key,
                Certificate {
                    dual: Arc::new(mutate(i, &cert.dual)),
                    ..cert
                },
            );
        }
    }

    /// A corrupted or mismatched donor dual must degrade to a cold solve
    /// with the **bit-exact** cold ε — never a wrong bound. (The positive
    /// control — intact donors produce genuine warm starts — is asserted
    /// first, so the degradation is attributable to the corruption.)
    #[test]
    fn corrupted_neighbor_duals_degrade_to_bit_exact_cold_solves() {
        // Oracle: the re-bucketed request solved on a fresh engine (all
        // cold — its certificates live under the other quantum's keys).
        let oracle = run(&seeded_engine(), 1.1e-6, TierPolicy::exact());
        let oracle_bits = oracle.error_bound().to_bits();
        assert_eq!(oracle.tier_counts().warm, 0);

        // Positive control: intact donors warm-start every solve and
        // reproduce the bound to within solver slop.
        let control = run(&seeded_engine(), 1.1e-6, warm_only());
        assert_eq!(control.tier_counts().warm, control.sdp_solves());
        assert!(control.tier_counts().warm > 0);
        assert!((control.error_bound() - oracle.error_bound()).abs() < 1e-6);

        // Corruptions: wrong length, non-finite entries, emptied out.
        let corruptions: [(&str, fn(usize, &[f64]) -> Vec<f64>); 3] = [
            ("truncated", |_, d| d[..1.min(d.len())].to_vec()),
            ("non-finite", |_, d| vec![f64::NAN; d.len()]),
            ("emptied", |_, _| Vec::new()),
        ];
        for (name, mutate) in corruptions {
            let engine = seeded_engine();
            corrupt_duals(&engine, mutate);
            let report = run(&engine, 1.1e-6, warm_only());
            assert_eq!(
                report.tier_counts().warm,
                0,
                "{name}: a garbage donor must not count as a warm start"
            );
            assert_eq!(report.tier_counts().cold, report.sdp_solves(), "{name}");
            assert_eq!(
                report.error_bound().to_bits(),
                oracle_bits,
                "{name}: the fallback must be the bit-exact cold solve"
            );
        }
    }

    /// Mixed corruption: some donors intact, some garbage — each unit
    /// independently warm-starts or falls back, and the bound stays
    /// certified.
    #[test]
    fn partially_corrupted_donors_split_between_warm_and_cold() {
        let engine = seeded_engine();
        corrupt_duals(&engine, |i, d| {
            if i % 2 == 0 {
                d.to_vec()
            } else {
                vec![f64::INFINITY; d.len()]
            }
        });
        let report = run(&engine, 1.1e-6, warm_only());
        let t = report.tier_counts();
        assert_eq!(t.warm + t.cold, report.sdp_solves());
        assert!(t.warm > 0, "intact donors must still be used");
        assert!(t.cold > 0, "corrupted donors must fall back");
        let oracle = run(&seeded_engine(), 1.1e-6, TierPolicy::exact());
        assert!((report.error_bound() - oracle.error_bound()).abs() < 1e-6);
    }

    #[test]
    fn policy_constructors() {
        assert!(TierPolicy::exact().is_exact());
        assert!(!TierPolicy::fast().is_exact());
        assert_eq!(TierPolicy::default(), TierPolicy::exact());
    }

    #[test]
    fn closed_form_applies_to_pauli_noise_only() {
        let pauli = Channel::bit_flip(1e-3).after_unitary(&Gate::H.matrix());
        let bound = closed_form_gate_bound(&Gate::H.matrix(), &pauli).expect("Pauli closed form");
        assert!((bound - 1e-3).abs() < 1e-9);

        let damp = Channel::amplitude_damping(0.2).after_unitary(&Gate::H.matrix());
        assert!(closed_form_gate_bound(&Gate::H.matrix(), &damp).is_none());
    }

    #[test]
    fn counts_accumulate() {
        let mut a = TierCounts {
            closed_form: 1,
            warm: 2,
            cold: 3,
        };
        a.add(TierCounts {
            closed_form: 10,
            warm: 0,
            cold: 1,
        });
        assert_eq!(a.total(), 17);
        let totals = TierTotals::default();
        totals.note(a, 42);
        let snap = totals.snapshot();
        assert_eq!(snap.closed_form, 11);
        assert_eq!(snap.warm, 2);
        assert_eq!(snap.cold, 4);
        assert_eq!(snap.ip_iterations, 42);
    }
}
