//! Analysis requests: one validated value unifying program, input state,
//! noise model, method, and solver knobs.
//!
//! [`AnalysisRequest::builder`] is the only way to construct a request, and
//! [`AnalysisRequestBuilder::build`] validates the whole combination up
//! front (width agreement, method configuration, input normalizability), so
//! an [`crate::Engine`] never has to re-discover configuration mistakes
//! mid-analysis — bad configs fail fast with
//! [`AnalysisError::InvalidConfig`] instead of panicking.

use crate::{AdaptiveConfig, AnalysisError, TierPolicy};
use gleipnir_circuit::Program;
use gleipnir_linalg::{c64, CMat, C64};
use gleipnir_mps::{Mps, MpsConfig};
use gleipnir_noise::NoiseModel;
use gleipnir_sdp::SolverOptions;
use gleipnir_sim::BasisState;

/// The input state of an analysis, generalizing the old `BasisState`-only
/// entry point.
#[derive(Clone, Debug)]
pub enum InputState {
    /// A computational basis state.
    Basis(BasisState),
    /// A product of single-qubit pure states, one `[α, β]` amplitude pair
    /// (for `α|0⟩ + β|1⟩`) per qubit. Pairs are normalized at use; a pair
    /// with (near-)zero norm fails request validation.
    Product(Vec<[C64; 2]>),
    /// An explicit MPS — e.g. the output of a previous circuit, carried
    /// over with its accumulated truncation error `δ` as input slack.
    Mps(Box<Mps>),
}

impl InputState {
    /// The all-zeros basis state on `n` qubits (the default input).
    pub fn zeros(n: usize) -> Self {
        InputState::Basis(BasisState::zeros(n))
    }

    /// A basis state from MSB-first bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        InputState::Basis(BasisState::from_bits(bits))
    }

    /// A product state from per-qubit `[α, β]` amplitude pairs.
    pub fn product(qubit_states: Vec<[C64; 2]>) -> Self {
        InputState::Product(qubit_states)
    }

    /// The uniform-superposition product state `|+⟩^⊗n`.
    pub fn plus(n: usize) -> Self {
        let a = c64(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        InputState::Product(vec![[a, a]; n])
    }

    /// An explicit MPS input.
    pub fn mps(state: Mps) -> Self {
        InputState::Mps(Box::new(state))
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        match self {
            InputState::Basis(b) => b.n_qubits(),
            InputState::Product(qs) => qs.len(),
            InputState::Mps(m) => m.n_qubits(),
        }
    }

    /// The basis state, if this input is one.
    pub(crate) fn as_basis(&self) -> Option<&BasisState> {
        match self {
            InputState::Basis(b) => Some(b),
            _ => None,
        }
    }

    /// Validation shared by every method: the state must be constructible.
    pub(crate) fn validate(&self) -> Result<(), AnalysisError> {
        if self.n_qubits() == 0 {
            return Err(AnalysisError::InvalidConfig(
                "input state must have at least one qubit".into(),
            ));
        }
        if let InputState::Product(qs) = self {
            for (q, [a, b]) in qs.iter().enumerate() {
                let norm2 = a.norm_sqr() + b.norm_sqr();
                if !norm2.is_finite() || norm2 < 1e-24 {
                    return Err(AnalysisError::InvalidConfig(format!(
                        "product input for qubit {q} is not normalizable (|α|²+|β|² = {norm2:e})"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Materializes the input as an MPS with the given bond-dimension
    /// budget.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::InvalidConfig`] if the state fails validation.
    pub(crate) fn build_mps(&self, width: usize) -> Result<Mps, AnalysisError> {
        self.validate()?;
        let config = MpsConfig::with_width(width);
        Ok(match self {
            InputState::Basis(b) => Mps::basis_state(b.bits(), config),
            InputState::Product(qs) => {
                let mut mps = Mps::zero_state(qs.len(), config);
                for (q, [a, b]) in qs.iter().enumerate() {
                    let norm = (a.norm_sqr() + b.norm_sqr()).sqrt();
                    let (a, b) = (a.scale(1.0 / norm), b.scale(1.0 / norm));
                    // The unitary sending |0⟩ ↦ α|0⟩ + β|1⟩ (columns are
                    // orthonormal because (α, β) is normalized).
                    let u = CMat::from_rows(&[vec![a, -b.conj()], vec![b, a.conj()]]);
                    mps.apply_matrix(&u, &[q]);
                }
                mps
            }
            InputState::Mps(m) => m.as_ref().clone().with_max_bond(width),
        })
    }
}

impl From<BasisState> for InputState {
    fn from(b: BasisState) -> Self {
        InputState::Basis(b)
    }
}

impl From<&BasisState> for InputState {
    fn from(b: &BasisState) -> Self {
        InputState::Basis(b.clone())
    }
}

impl From<Mps> for InputState {
    fn from(m: Mps) -> Self {
        InputState::mps(m)
    }
}

/// The analysis method a request selects.
#[derive(Clone, Debug)]
pub enum Method {
    /// Gleipnir's state-aware `(ρ̂, δ)`-diamond analysis at a fixed MPS
    /// width (the paper's Fig. 4 pipeline).
    StateAware {
        /// MPS bond-dimension budget `w` (Fig. 14's knob).
        mps_width: usize,
    },
    /// The adaptive width search: doubles `w` until the bound stops
    /// improving (§1's adjustable-precision promise).
    Adaptive(AdaptiveConfig),
    /// The unconstrained worst case: diamond norms summed over all gates,
    /// ignoring the input state (§2.3).
    WorstCase,
    /// LQR \[24\] with full-simulation predicates — exact but exponential
    /// in qubits (Table 2's "timed out" baseline).
    LqrFullSim,
}

impl Method {
    /// A stable machine-readable method name (used by CLI JSON output).
    pub fn name(&self) -> &'static str {
        match self {
            Method::StateAware { .. } => "state_aware",
            Method::Adaptive(_) => "adaptive",
            Method::WorstCase => "worst_case",
            Method::LqrFullSim => "lqr_full_sim",
        }
    }

    fn validate(&self) -> Result<(), AnalysisError> {
        match self {
            Method::StateAware { mps_width } if *mps_width == 0 => Err(
                AnalysisError::InvalidConfig("MPS width must be positive".into()),
            ),
            Method::Adaptive(cfg) => cfg.validate(),
            _ => Ok(()),
        }
    }
}

impl Default for Method {
    /// The paper's §7.1 configuration: state-aware at `w = 128`.
    fn default() -> Self {
        Method::StateAware { mps_width: 128 }
    }
}

/// A validated analysis request: program + input + noise + method + solver
/// knobs, ready for [`crate::Engine::analyze`].
#[derive(Clone, Debug)]
pub struct AnalysisRequest {
    program: Program,
    input: InputState,
    noise: NoiseModel,
    method: Method,
    solver_options: Option<SolverOptions>,
    cache: bool,
    delta_quantum: f64,
    tiers: TierPolicy,
}

impl AnalysisRequest {
    /// Starts building a request for the given program. Defaults: all-zeros
    /// basis input, [`NoiseModel::Noiseless`], [`Method::default`], the
    /// engine's solver options, caching on, δ bucket `1e-6`, and the exact
    /// tier policy (cold SDP solves only).
    pub fn builder(program: Program) -> AnalysisRequestBuilder {
        AnalysisRequestBuilder {
            input: None,
            noise: NoiseModel::Noiseless,
            method: Method::default(),
            solver_options: None,
            cache: true,
            delta_quantum: 1e-6,
            tiers: TierPolicy::exact(),
            program,
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The input state.
    pub fn input(&self) -> &InputState {
        &self.input
    }

    /// The noise model `ω`.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The selected analysis method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// Per-request solver options (None = use the engine's).
    pub fn solver_options(&self) -> Option<SolverOptions> {
        self.solver_options
    }

    /// Whether this request participates in the engine's shared SDP cache.
    pub fn cache_enabled(&self) -> bool {
        self.cache
    }

    /// δ bucket width for sound cache reuse: lookups round δ *up* to the
    /// next bucket edge, so a cached ε certifies the exact judgment by the
    /// Weaken rule.
    pub fn delta_quantum(&self) -> f64 {
        self.delta_quantum
    }

    /// Which tiers of the bound engine this request may use (default
    /// [`TierPolicy::exact`] — cold solves only, bit-identical to the
    /// pre-tiering engine).
    pub fn tier_policy(&self) -> TierPolicy {
        self.tiers
    }

    /// This request with its tier policy forced to [`TierPolicy::exact`] —
    /// what an anytime refinement runs, so the refined ε is bit-identical
    /// to a cold exact-policy analysis of the same request regardless of
    /// the tiering the caller asked for.
    pub(crate) fn exact_clone(&self) -> AnalysisRequest {
        let mut exact = self.clone();
        exact.tiers = TierPolicy::exact();
        exact
    }
}

/// Builder for [`AnalysisRequest`]; see [`AnalysisRequest::builder`].
#[derive(Clone, Debug)]
pub struct AnalysisRequestBuilder {
    program: Program,
    input: Option<InputState>,
    noise: NoiseModel,
    method: Method,
    solver_options: Option<SolverOptions>,
    cache: bool,
    delta_quantum: f64,
    tiers: TierPolicy,
}

impl AnalysisRequestBuilder {
    /// Sets the input state (anything `Into<InputState>`, e.g. a
    /// [`BasisState`] or [`Mps`]). Default: all-zeros basis state.
    pub fn input(mut self, input: impl Into<InputState>) -> Self {
        self.input = Some(input.into());
        self
    }

    /// Sets the noise model. Default: noiseless.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the analysis method. Default: state-aware at `w = 128`.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Overrides the engine's solver options for this request.
    pub fn solver_options(mut self, opts: SolverOptions) -> Self {
        self.solver_options = Some(opts);
        self
    }

    /// Enables or disables participation in the engine's shared SDP cache
    /// (on by default; disabling solves every judgment at its exact δ).
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache = enabled;
        self
    }

    /// Sets the δ bucket width used for sound cache reuse (default `1e-6`).
    pub fn delta_quantum(mut self, q: f64) -> Self {
        self.delta_quantum = q;
        self
    }

    /// Selects the bound-engine tiers this request may use (default
    /// [`TierPolicy::exact`]). [`TierPolicy::fast`] answers Pauli-type
    /// channels with the certified closed form and warm-starts the
    /// remaining SDPs from neighboring cached duals; every tier's answer
    /// stays a sound certified upper bound, but the produced ε may differ
    /// at the bit level from an exact-policy run.
    pub fn tiering(mut self, tiers: TierPolicy) -> Self {
        self.tiers = tiers;
        self
    }

    /// Validates the combination and produces the request.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::WidthMismatch`] if the input and program widths
    /// disagree; [`AnalysisError::InvalidConfig`] for a zero MPS width, an
    /// inverted adaptive width range, a non-positive δ bucket, a
    /// non-normalizable product input, or a non-basis input to the
    /// LQR-full-sim baseline.
    pub fn build(self) -> Result<AnalysisRequest, AnalysisError> {
        let input = self
            .input
            .unwrap_or_else(|| InputState::zeros(self.program.n_qubits()));
        if input.n_qubits() != self.program.n_qubits() {
            return Err(AnalysisError::WidthMismatch {
                input: input.n_qubits(),
                program: self.program.n_qubits(),
            });
        }
        input.validate()?;
        self.method.validate()?;
        if !self.delta_quantum.is_finite() || self.delta_quantum <= 0.0 {
            return Err(AnalysisError::InvalidConfig(format!(
                "delta quantum must be a positive finite number, got {}",
                self.delta_quantum
            )));
        }
        if matches!(self.method, Method::LqrFullSim) && input.as_basis().is_none() {
            return Err(AnalysisError::InvalidConfig(
                "the LQR-full-sim baseline requires a basis input state".into(),
            ));
        }
        Ok(AnalysisRequest {
            program: self.program,
            input,
            noise: self.noise,
            method: self.method,
            solver_options: self.solver_options,
            cache: self.cache,
            delta_quantum: self.delta_quantum,
            tiers: self.tiers,
        })
    }
}
