//! Deterministic test support for the scheduler and anytime paths.
//!
//! The interleaving tests in `tests/anytime_soundness.rs` must pin
//! concurrency orderings *exactly* — "token polled mid-solve" is only a
//! meaningful test if the poll provably happens while the refinement is
//! between computing its result and publishing it. Sleeps can't prove
//! that; a rendezvous can. [`ScriptedGate`] is that rendezvous: one side
//! arrives and blocks until released, the other waits for the arrival,
//! performs its observations, then releases. No timing assumptions, no
//! flakes.

use std::sync::{Condvar, Mutex, PoisonError};

/// A two-phase rendezvous between a test thread and a scheduled job.
///
/// Protocol: the job calls [`arrive`](ScriptedGate::arrive) then
/// [`wait_released`](ScriptedGate::wait_released); the test calls
/// [`wait_for_arrival`](ScriptedGate::wait_for_arrival), observes
/// whatever state the pause exposes, then
/// [`release`](ScriptedGate::release)s the job. Both waits are
/// unbounded — deadlock (surfaced by the test timeout) is the failure
/// mode, never a silently-passed race.
#[derive(Debug, Default)]
pub struct ScriptedGate {
    state: Mutex<GateState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    arrived: bool,
    released: bool,
}

impl ScriptedGate {
    /// A fresh gate (not arrived, not released).
    pub fn new() -> ScriptedGate {
        ScriptedGate::default()
    }

    /// Job side: signals arrival at the gate.
    pub fn arrive(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.arrived = true;
        self.cond.notify_all();
    }

    /// Test side: blocks until the job has arrived at the gate.
    pub fn wait_for_arrival(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !state.arrived {
            state = self
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Test side: releases the job to continue past the gate.
    pub fn release(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.released = true;
        self.cond.notify_all();
    }

    /// Job side: blocks until the test has released the gate.
    pub fn wait_released(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !state.released {
            state = self
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn gate_rendezvous_orders_both_sides() {
        let gate = Arc::new(ScriptedGate::new());
        let job_gate = Arc::clone(&gate);
        let job = std::thread::spawn(move || {
            job_gate.arrive();
            job_gate.wait_released();
            42
        });
        gate.wait_for_arrival();
        // The job is now provably parked between arrive and release.
        gate.release();
        assert_eq!(job.join().expect("job thread"), 42);
    }
}
