//! Baseline analyses the paper compares against (Table 2):
//!
//! * [`Method::WorstCase`](crate::Method::WorstCase) — the unconstrained
//!   diamond norm summed over all gates (§2.3's worst-case analysis; for
//!   the paper's bit-flip model this is exactly `gate_count × p`);
//! * [`Method::LqrFullSim`](crate::Method::LqrFullSim) — LQR [24]
//!   instantiated with the best predicate obtainable from *full
//!   simulation*: the exact intermediate state is computed with the dense
//!   density-matrix simulator and each gate is bounded by the
//!   `(ρ_exact, 0)`-diamond norm. Exponential in qubits — the paper
//!   reports it timing out beyond 10 qubits.
//!
//! Worst-case certificates live in the owning engine's shared cache (an
//! unconstrained diamond norm depends only on the gate, its noise channel,
//! and the solver options), so a batch of worst-case requests over related
//! programs solves each distinct `(gate, channel)` pair once.

use crate::diamond::rho_delta_diamond;
use crate::engine::{self, EngineHandle};
use crate::request::AnalysisRequest;
use crate::tiers::{closed_form_gate_bound, TierCounts};
use crate::{unconstrained_diamond, AnalysisError};
use gleipnir_circuit::{Gate, Program};
use gleipnir_linalg::CMat;
use gleipnir_noise::NoiseModel;
use gleipnir_sdp::SolverOptions;
use gleipnir_sim::{BasisState, DensityMatrix};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The worst-case (unconstrained diamond norm) analysis report.
#[derive(Clone, Debug)]
pub struct WorstCaseReport {
    /// The summed bound (not clamped; trace-distance semantics cap at 1).
    pub total: f64,
    /// Number of gates analyzed.
    pub gate_count: usize,
    /// Distinct (gate, channel) SDPs solved (the rest were cache hits or
    /// closed forms).
    pub sdp_solves: usize,
    /// Gate bounds answered from the engine's shared cache (including
    /// repeats within this program).
    pub cache_hits: usize,
    /// How the bound engine's tiers answered the gates. Worst case is the
    /// one method where Tier 0 is *lossless*: the unconstrained diamond
    /// norm is exactly what the closed form certifies, so under
    /// [`crate::TierPolicy::fast`] every Pauli-type gate skips its SDP
    /// with no extra looseness. (Tier 1 does not apply — unconstrained
    /// problems have no δ neighborhood to ride.)
    pub tier_counts: TierCounts,
    /// Interior-point iterations the analysis's SDP solves spent.
    pub ip_iterations: usize,
    /// Aggregated per-phase solver timings across the analysis's SDP
    /// solves (all-zero when every gate was closed-form or cached).
    pub solver_profile: gleipnir_sdp::SolverProfile,
    /// Wall-clock time of the analysis.
    pub elapsed: Duration,
}

impl WorstCaseReport {
    /// The bound clamped to the trace-distance range `[0, 1]` (the form
    /// quoted in the paper's §7.2).
    pub fn clamped(&self) -> f64 {
        self.total.min(1.0)
    }
}

/// The LQR-with-full-simulation baseline report.
#[derive(Clone, Debug)]
pub struct LqrReport {
    /// The summed per-gate `(ρ_exact, 0)`-diamond bounds.
    pub bound: f64,
    /// Number of gates analyzed (each one SDP solve; exact predicates are
    /// never cached).
    pub gate_count: usize,
    /// Wall-clock time of the analysis.
    pub elapsed: Duration,
}

/// Sums the unconstrained diamond norms of every noisy gate in the program
/// (branch bodies included — each gate's worst case is counted once, which
/// upper-bounds the per-path sum the logic would produce).
pub(crate) fn run_worst_case(
    h: &EngineHandle,
    request: &AnalysisRequest,
) -> Result<WorstCaseReport, AnalysisError> {
    let start = Instant::now();
    let opts = h.resolve_options(request);
    let shared = request.cache_enabled().then(|| h.cache());
    let noise = request.noise();

    // A per-run memo always dedups repeats inside this program; the
    // engine's shared cache (when enabled) additionally carries bounds
    // across requests.
    let tiers = request.tier_policy();
    // Local memo values remember how they were produced: a repeated
    // closed-form gate counts as closed form again (mirroring the solve
    // stage's follower accounting), a repeated solved/shared value as a
    // cache hit — so `gate_count = sdp_solves + cache_hits + closed_form`
    // holds here too.
    let mut local: HashMap<Vec<u64>, (f64, bool)> = HashMap::new();
    let mut total = 0.0;
    let mut gate_count = 0usize;
    let mut solves = 0usize;
    let mut cache_hits = 0usize;
    let mut tier_counts = TierCounts::default();
    let mut ip_iterations = 0usize;
    let mut solver_profile = gleipnir_sdp::SolverProfile::default();
    let mut err: Option<AnalysisError> = None;
    request.program().body().for_each_gate(&mut |g| {
        if err.is_some() {
            return;
        }
        gate_count += 1;
        let noisy = noise.noisy_gate(&g.gate, &g.qubits);
        let key = engine::key_unconstrained(&g.gate.matrix(), noisy.kraus(), &opts);
        if let Some(&(eps, analytic)) = local.get(&key) {
            if analytic {
                tier_counts.closed_form += 1;
            } else {
                cache_hits += 1;
            }
            total += eps;
            return;
        }
        if let Some(eps) = shared.and_then(|c| c.get(&key)) {
            cache_hits += 1;
            local.insert(key, (eps, false));
            total += eps;
            return;
        }
        // Tier 0: for the unconstrained norm the closed form is lossless
        // (it certifies exactly this quantity); never cached, like the
        // solve stage.
        if tiers.closed_form {
            if let Some(eps) = closed_form_gate_bound(&g.gate.matrix(), &noisy) {
                tier_counts.closed_form += 1;
                local.insert(key, (eps, true));
                total += eps;
                return;
            }
        }
        match unconstrained_diamond(&g.gate.matrix(), &noisy, &opts) {
            Ok(r) => {
                solves += 1;
                tier_counts.cold += 1;
                ip_iterations += r.iterations;
                solver_profile.add(&r.profile);
                if let Some(c) = shared {
                    c.insert(
                        key.clone(),
                        crate::engine::Certificate {
                            eps: r.bound,
                            dim: g.gate.matrix().rows() as u32,
                            n_kraus: noisy.kraus().len() as u32,
                            dual: std::sync::Arc::new(r.dual),
                            tier: r.tier,
                        },
                    );
                }
                local.insert(key, (r.bound, false));
                total += r.bound;
            }
            Err(e) => err = Some(e.into()),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    h.shared.tiers.note(tier_counts, ip_iterations);
    Ok(WorstCaseReport {
        total,
        gate_count,
        sdp_solves: solves,
        cache_hits,
        tier_counts,
        ip_iterations,
        solver_profile,
        elapsed: start.elapsed(),
    })
}

/// LQR with a full-simulation predicate: exact intermediate states from the
/// dense density-matrix simulator, each gate bounded by the
/// `(ρ_exact_local, 0)`-diamond norm.
///
/// Only straight-line programs with basis inputs are supported (the paper's
/// Table 2 benchmarks are straight-line), and the register is limited to 12
/// qubits — beyond that the `4ⁿ` density matrix is the very blow-up the
/// paper's "timed out" column demonstrates.
pub(crate) fn run_lqr_full_sim(
    request: &AnalysisRequest,
    opts: &SolverOptions,
) -> Result<LqrReport, AnalysisError> {
    let input = request.input().as_basis().ok_or_else(|| {
        AnalysisError::Unsupported("LQR-full-sim baseline requires a basis input state".into())
    })?;
    let start = Instant::now();
    let bound = lqr_full_sim_impl(request.program(), input, request.noise(), opts)?;
    Ok(LqrReport {
        bound,
        gate_count: request.program().gate_count(),
        elapsed: start.elapsed(),
    })
}

fn lqr_full_sim_impl(
    program: &Program,
    input: &BasisState,
    noise: &NoiseModel,
    opts: &SolverOptions,
) -> Result<f64, AnalysisError> {
    if input.n_qubits() != program.n_qubits() {
        return Err(AnalysisError::WidthMismatch {
            input: input.n_qubits(),
            program: program.n_qubits(),
        });
    }
    if program.n_qubits() > 12 {
        return Err(AnalysisError::Unsupported(format!(
            "full simulation of {} qubits (the baseline the paper reports as timing out)",
            program.n_qubits()
        )));
    }
    let gates = program.straight_line_gates().ok_or_else(|| {
        AnalysisError::Unsupported("LQR-full-sim baseline handles straight-line programs".into())
    })?;

    let mut rho = DensityMatrix::from_basis(input);
    let mut total = 0.0;
    for g in gates {
        let qubits: Vec<usize> = g.qubits.iter().map(|q| q.0).collect();
        let rho_prime = exact_local_density(&rho, &qubits);
        let noisy = noise.noisy_gate(&g.gate, &g.qubits);
        let r = rho_delta_diamond(&g.gate.matrix(), &noisy, &rho_prime, 0.0, opts)?;
        total += r.bound;
        rho.apply_gate(&g.gate, &g.qubits);
    }
    Ok(total)
}

/// The exact reduced density matrix on `qubits` in operand order.
fn exact_local_density(rho: &DensityMatrix, qubits: &[usize]) -> CMat {
    match qubits {
        [q] => rho.local_density(&[*q]),
        [a, b] => {
            let keep = [*a.min(b), *a.max(b)];
            let ordered = rho.local_density(&keep);
            if a < b {
                ordered
            } else {
                let sw = Gate::Swap.matrix();
                sw.mul_mat(&ordered).mul_mat(&sw)
            }
        }
        _ => unreachable!("gates have arity 1 or 2"),
    }
}

/// One-shot worst-case analysis, kept as a shim over a private engine.
///
/// # Errors
///
/// [`AnalysisError`] if an SDP fails.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::analyze` with `Method::WorstCase` (see README's migration table)"
)]
pub fn worst_case_bound(
    program: &Program,
    noise: &NoiseModel,
    opts: &SolverOptions,
) -> Result<WorstCaseReport, AnalysisError> {
    let engine = crate::Engine::with_options(*opts)?;
    let request = AnalysisRequest::builder(program.clone())
        .noise(noise.clone())
        .method(crate::Method::WorstCase)
        .build()?;
    run_worst_case(&engine.handle(), &request)
}

/// One-shot LQR-full-sim analysis, kept as a shim.
///
/// # Errors
///
/// [`AnalysisError::Unsupported`] for branching programs or oversized
/// registers, or SDP failures.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::analyze` with `Method::LqrFullSim` (see README's migration table)"
)]
pub fn lqr_full_sim_bound(
    program: &Program,
    input: &BasisState,
    noise: &NoiseModel,
    opts: &SolverOptions,
) -> Result<f64, AnalysisError> {
    lqr_full_sim_impl(program, input, noise, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisRequest, Engine, Method, Report};
    use gleipnir_circuit::ProgramBuilder;

    fn worst_case(program: &Program, noise: &NoiseModel) -> WorstCaseReport {
        let engine = Engine::new();
        let request = AnalysisRequest::builder(program.clone())
            .noise(noise.clone())
            .method(Method::WorstCase)
            .build()
            .unwrap();
        match engine.analyze(&request).unwrap() {
            Report::WorstCase(r) => r,
            other => panic!("expected worst-case report, got {}", other.method_name()),
        }
    }

    fn lqr(
        program: &Program,
        input: &BasisState,
        noise: &NoiseModel,
    ) -> Result<LqrReport, AnalysisError> {
        let engine = Engine::new();
        let request = AnalysisRequest::builder(program.clone())
            .input(input)
            .noise(noise.clone())
            .method(Method::LqrFullSim)
            .build()?;
        match engine.analyze(&request)? {
            Report::LqrFullSim(r) => Ok(r),
            other => panic!("expected LQR report, got {}", other.method_name()),
        }
    }

    fn state_aware_uncached(program: &Program, input: &BasisState, noise: &NoiseModel) -> f64 {
        let engine = Engine::new();
        let request = AnalysisRequest::builder(program.clone())
            .input(input)
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: 16 })
            .cache(false)
            .build()
            .unwrap();
        engine.analyze(&request).unwrap().error_bound()
    }

    #[test]
    fn worst_case_is_gate_count_times_p() {
        // The paper's closed form for the bit-flip model.
        let p = 1e-4;
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).cnot(1, 2).rx(0, 0.3).rzz(0, 2, 0.9);
        let report = worst_case(&b.build(), &NoiseModel::uniform_bit_flip(p));
        assert_eq!(report.gate_count, 5);
        assert!(
            (report.total - 5.0 * p).abs() < 5.0 * p * 1e-3,
            "{}",
            report.total
        );
        // Only a few distinct (gate, channel) pairs were solved.
        assert!(report.sdp_solves <= 5);
    }

    #[test]
    fn worst_case_fast_policy_answers_pauli_gates_analytically() {
        // Worst case is exactly the unconstrained norm the Tier 0 closed
        // form certifies, so under the fast policy a Pauli noise model
        // needs zero SDPs — and leaves no trace in the shared cache.
        let p = 1e-4;
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).cnot(1, 2).rx(0, 0.3).rzz(0, 2, 0.9);
        let engine = Engine::new();
        let request = AnalysisRequest::builder(b.build())
            .noise(NoiseModel::uniform_bit_flip(p))
            .method(Method::WorstCase)
            .tiering(crate::TierPolicy::fast())
            .build()
            .unwrap();
        let report = match engine.analyze(&request).unwrap() {
            Report::WorstCase(r) => r,
            other => panic!("expected worst-case report, got {}", other.method_name()),
        };
        assert_eq!(report.sdp_solves, 0);
        assert_eq!(report.ip_iterations, 0);
        assert_eq!(report.tier_counts.closed_form, report.gate_count);
        assert!(
            (report.total - 5.0 * p).abs() < 5.0 * p * 1e-3,
            "{}",
            report.total
        );
        assert_eq!(
            report.sdp_solves + report.cache_hits + report.tier_counts.closed_form,
            report.gate_count
        );
        assert_eq!(
            engine.cache_stats().entries,
            0,
            "closed forms are never cached"
        );
        assert_eq!(engine.tier_stats().closed_form, report.gate_count);
    }

    #[test]
    fn worst_case_clamps_at_one() {
        let mut b = ProgramBuilder::new(1);
        for _ in 0..30 {
            b.x(0);
        }
        let report = worst_case(&b.build(), &NoiseModel::uniform_bit_flip(0.2));
        assert!(report.total > 1.0);
        assert_eq!(report.clamped(), 1.0);
        // 29 of the 30 identical gates came from the cache.
        assert_eq!(report.sdp_solves, 1);
        assert_eq!(report.cache_hits, 29);
    }

    #[test]
    fn lqr_full_sim_matches_gleipnir_on_small_programs() {
        // The paper's §7.1 observation: for small programs Gleipnir's bounds
        // equal the full-simulation LQR bounds (the MPS is exact there).
        let mut b = ProgramBuilder::new(3);
        b.h(0).cnot(0, 1).rx(2, 0.8).rzz(1, 2, 0.5).cnot(0, 2);
        let p = b.build();
        let noise = NoiseModel::uniform_bit_flip(1e-4);
        let input = BasisState::zeros(3);
        let lqr = lqr(&p, &input, &noise).unwrap();
        let gleipnir = state_aware_uncached(&p, &input, &noise);
        assert!(
            (gleipnir - lqr.bound).abs() < 1e-6,
            "gleipnir {gleipnir} vs lqr {}",
            lqr.bound
        );
        assert_eq!(lqr.gate_count, 5);
    }

    #[test]
    fn gleipnir_bound_never_exceeds_worst_case() {
        let mut b = ProgramBuilder::new(4);
        b.h(0).h(1).cnot(0, 1).cnot(2, 3).rx(3, 1.0).rzz(1, 2, 0.6);
        let p = b.build();
        let noise = NoiseModel::uniform_bit_flip(1e-3);
        let worst = worst_case(&p, &noise);
        let engine = Engine::new();
        let request = AnalysisRequest::builder(p.clone())
            .noise(noise.clone())
            .method(Method::StateAware { mps_width: 8 })
            .build()
            .unwrap();
        let gleipnir = engine.analyze(&request).unwrap().error_bound();
        assert!(
            gleipnir <= worst.total + 1e-7,
            "{gleipnir} > {}",
            worst.total
        );
    }

    #[test]
    fn lqr_rejects_branching_and_large_programs() {
        let mut b = ProgramBuilder::new(2);
        b.if_measure(0, |_| {}, |_| {});
        let err = lqr(&b.build(), &BasisState::zeros(2), &NoiseModel::Noiseless).unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)));

        let big = ProgramBuilder::new(13).build();
        let err = lqr(&big, &BasisState::zeros(13), &NoiseModel::Noiseless).unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)));
    }
}
