//! The long-lived analysis engine: one instance, many analyses.
//!
//! [`Engine`] is the unified entry point for every analysis method
//! (state-aware, adaptive, worst-case, LQR-full-sim). It owns a
//! **content-addressed SDP bound cache shared across requests, methods, and
//! MPS widths**: a per-gate certificate is keyed by the exact content of the
//! SDP it certifies — gate matrix, noisy-channel Kraus operators, quantized
//! local density ρ′, δ bucket, and solver options — so an adaptive sweep's
//! second width, a repeated request, or a sibling request in a batch all
//! reuse certificates the engine already paid for. Cache reuse is sound by
//! the Weaken rule: entries are solved at a δ rounded *up* to the bucket
//! edge with ρ′ perturbed only within the extra slack (see
//! [`crate::AnalysisRequest::delta_quantum`]).
//!
//! The engine is thread-safe (`&Engine` can be shared freely);
//! [`Engine::analyze_batch`] fans requests out across `std::thread` workers
//! and returns per-request `Result`s — a failing or panicking request never
//! sinks its siblings.

use crate::adaptive::run_adaptive;
use crate::baseline::{run_lqr_full_sim, run_worst_case};
use crate::logic::run_state_aware;
use crate::report::Report;
use crate::request::{AnalysisRequest, Method};
use crate::AnalysisError;
use gleipnir_linalg::CMat;
use gleipnir_sdp::SolverOptions;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Number of independent cache shards; keeps lock contention low when batch
/// workers hammer the cache concurrently.
const CACHE_SHARDS: usize = 16;

/// Locks a mutex, recovering from poisoning.
///
/// The cache only ever holds fully-written `(key, ε)` pairs — a worker that
/// panicked mid-analysis cannot leave a torn entry behind — so a poisoned
/// shard is safe to keep using. This is what keeps one panicking batch
/// request from sinking its siblings.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The engine's shared, content-addressed SDP bound cache.
pub(crate) struct SdpCache {
    shards: Vec<Mutex<HashMap<Vec<u64>, f64>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SdpCache {
    fn new() -> Self {
        SdpCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &[u64]) -> &Mutex<HashMap<Vec<u64>, f64>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// Looks up a certified bound by content address.
    pub(crate) fn get(&self, key: &[u64]) -> Option<f64> {
        let found = lock(self.shard(key)).get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a certified bound under its content address.
    pub(crate) fn insert(&self, key: Vec<u64>, eps: f64) {
        lock(self.shard(&key)).insert(key, eps);
    }

    fn entries(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            lock(s).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Cache-key tag for ρ̂-constrained `(ρ̂, δ)`-diamond SDPs.
const KEY_RHO_DELTA: u64 = 1;
/// Cache-key tag for unconstrained diamond SDPs (worst-case analysis).
const KEY_UNCONSTRAINED: u64 = 0;
/// Separator between heterogeneous key segments.
const KEY_SEP: u64 = u64::MAX;

fn push_mat(key: &mut Vec<u64>, m: &CMat) {
    for z in m.as_slice() {
        key.push(z.re.to_bits());
        key.push(z.im.to_bits());
    }
}

fn push_opts(key: &mut Vec<u64>, opts: &SolverOptions) {
    key.push(opts.max_iterations as u64);
    key.push(opts.tolerance.to_bits());
}

/// Content address of a `(ρ̂, δ)`-diamond SDP: ideal gate, noisy Kraus
/// operators, quantized ρ′, and solver options, plus the **effective δ**
/// the certificate was solved at (bucket index *and* bucket width — the
/// cache is engine-wide, and requests may differ in `delta_quantum`, so a
/// bare bucket integer would let certificates solved for a smaller δ
/// unsoundly answer judgments with a larger one).
pub(crate) fn key_rho_delta(
    gate: &CMat,
    kraus: &[CMat],
    rho_q: &CMat,
    bucket: u64,
    delta_quantum: f64,
    opts: &SolverOptions,
) -> Vec<u64> {
    let mut key = vec![KEY_RHO_DELTA];
    push_mat(&mut key, gate);
    key.push(KEY_SEP);
    for k in kraus {
        push_mat(&mut key, k);
    }
    key.push(KEY_SEP);
    push_mat(&mut key, rho_q);
    key.push(bucket);
    key.push(delta_quantum.to_bits());
    push_opts(&mut key, opts);
    key
}

/// Content address of an unconstrained diamond SDP.
pub(crate) fn key_unconstrained(gate: &CMat, kraus: &[CMat], opts: &SolverOptions) -> Vec<u64> {
    let mut key = vec![KEY_UNCONSTRAINED];
    push_mat(&mut key, gate);
    key.push(KEY_SEP);
    for k in kraus {
        push_mat(&mut key, k);
    }
    push_opts(&mut key, opts);
    key
}

/// A snapshot of the engine's cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (across all requests so far).
    pub hits: usize,
    /// Lookups that missed and required an SDP solve.
    pub misses: usize,
    /// Certificates currently stored.
    pub entries: usize,
}

/// The outcome of [`Engine::analyze_batch_detailed`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request results, in request order.
    pub results: Vec<Result<Report, AnalysisError>>,
    /// Distinct worker threads that processed at least one request.
    pub worker_threads: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

/// The long-lived, thread-safe analysis engine (see the module docs).
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
/// use gleipnir_core::{AnalysisRequest, Engine, Method};
/// use gleipnir_noise::NoiseModel;
///
/// let engine = Engine::new();
/// let mut b = ProgramBuilder::new(2);
/// b.h(0).cnot(0, 1);
/// let request = AnalysisRequest::builder(b.build())
///     .noise(NoiseModel::uniform_bit_flip(1e-4))
///     .method(Method::StateAware { mps_width: 8 })
///     .build()?;
/// let report = engine.analyze(&request)?;
/// assert!(report.error_bound() > 0.0);
/// assert!(report.error_bound() < 2e-4);
/// # Ok::<(), gleipnir_core::AnalysisError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    cache: SdpCache,
    options: SolverOptions,
}

impl std::fmt::Debug for SdpCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdpCache")
            .field("entries", &self.entries())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with default solver options.
    pub fn new() -> Self {
        Self::with_options(SolverOptions::default())
    }

    /// An engine whose requests default to the given solver options
    /// (overridable per request via
    /// [`crate::AnalysisRequestBuilder::solver_options`]).
    pub fn with_options(options: SolverOptions) -> Self {
        Engine {
            cache: SdpCache::new(),
            options,
        }
    }

    /// The engine-level default solver options.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// A snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
            entries: self.cache.entries(),
        }
    }

    /// Drops every cached certificate and resets the counters.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The solver options a request resolves to.
    pub(crate) fn resolve_options(&self, request: &AnalysisRequest) -> SolverOptions {
        request.solver_options().unwrap_or(self.options)
    }

    /// The shared cache, if the request opted into caching.
    pub(crate) fn cache_for(&self, request: &AnalysisRequest) -> Option<&SdpCache> {
        request.cache_enabled().then_some(&self.cache)
    }

    /// Runs one analysis request, dispatching on its [`Method`].
    ///
    /// # Errors
    ///
    /// [`AnalysisError`] on width mismatch, unsupported features, or SDP
    /// failure. (Requests are validated at build time, so configuration
    /// errors surface earlier, from [`crate::AnalysisRequestBuilder::build`].)
    pub fn analyze(&self, request: &AnalysisRequest) -> Result<Report, AnalysisError> {
        let opts = self.resolve_options(request);
        match request.method() {
            Method::StateAware { mps_width } => {
                let mps = request.input().build_mps(*mps_width)?;
                run_state_aware(
                    request.program(),
                    mps,
                    request.noise(),
                    &opts,
                    self.cache_for(request),
                    request.delta_quantum(),
                )
                .map(Report::StateAware)
            }
            Method::Adaptive(cfg) => run_adaptive(self, request, cfg).map(Report::Adaptive),
            Method::WorstCase => run_worst_case(self, request).map(Report::WorstCase),
            Method::LqrFullSim => run_lqr_full_sim(request, &opts).map(Report::LqrFullSim),
        }
    }

    /// [`Engine::analyze`] with panics converted to
    /// [`AnalysisError::Panicked`] so batch siblings keep running.
    fn analyze_guarded(&self, request: &AnalysisRequest) -> Result<Report, AnalysisError> {
        panic::catch_unwind(AssertUnwindSafe(|| self.analyze(request))).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "analysis panicked".into());
            Err(AnalysisError::Panicked(msg))
        })
    }

    /// Analyzes a batch of requests across `std::thread` workers, returning
    /// one `Result` per request (in request order). A failing or panicking
    /// request does not affect its siblings, and all workers share the
    /// engine's SDP cache.
    pub fn analyze_batch(
        &self,
        requests: &[AnalysisRequest],
    ) -> Vec<Result<Report, AnalysisError>> {
        self.analyze_batch_detailed(requests).results
    }

    /// [`Engine::analyze_batch`] plus batch-level bookkeeping (worker-thread
    /// count and wall-clock time).
    pub fn analyze_batch_detailed(&self, requests: &[AnalysisRequest]) -> BatchOutcome {
        let start = Instant::now();
        if requests.is_empty() {
            return BatchOutcome {
                results: Vec::new(),
                worker_threads: 0,
                elapsed: start.elapsed(),
            };
        }
        // At least two workers whenever there are two requests: the point
        // of a batch is concurrency, and the work is CPU-bound SDP solving
        // that never blocks on IO.
        let parallelism = thread::available_parallelism().map_or(2, |n| n.get());
        let workers = requests.len().min(parallelism.max(2));

        let mut slots: Vec<Option<Result<Report, AnalysisError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut worker_threads = 0usize;
        thread::scope(|scope| {
            // Deterministic round-robin partition: every worker owns the
            // requests with `index % workers == worker`, so each spawned
            // thread processes at least one request. Workers get the same
            // 8 MiB stack a main thread has: the logic walk recurses once
            // per program statement, and a long program that analyzes fine
            // on the main thread must not abort a worker (stack overflow
            // cannot be caught) on the 2 MiB spawn default.
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    thread::Builder::new()
                        .name(format!("gleipnir-batch-{w}"))
                        .stack_size(8 * 1024 * 1024)
                        .spawn_scoped(scope, move || {
                            requests
                                .iter()
                                .enumerate()
                                .skip(w)
                                .step_by(workers)
                                .map(|(i, req)| (i, self.analyze_guarded(req)))
                                .collect::<Vec<_>>()
                        })
                        .expect("spawn batch worker thread")
                })
                .collect();
            for handle in handles {
                // `analyze_guarded` catches panics, so a join failure is
                // unreachable short of a worker abort; degrade gracefully.
                let part = handle.join().unwrap_or_default();
                if !part.is_empty() {
                    worker_threads += 1;
                }
                for (i, result) in part {
                    slots[i] = Some(result);
                }
            }
        });
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| Err(AnalysisError::Panicked("batch worker died".into())))
            })
            .collect();
        BatchOutcome {
            results,
            worker_threads,
            elapsed: start.elapsed(),
        }
    }
}
