//! The long-lived analysis engine: one instance, many analyses.
//!
//! [`Engine`] is the unified entry point for every analysis method
//! (state-aware, adaptive, worst-case, LQR-full-sim). It owns two
//! process-lifetime resources:
//!
//! * a **content-addressed SDP bound cache shared across requests,
//!   methods, and MPS widths**: a per-gate certificate is keyed by the
//!   exact content of the SDP it certifies — gate matrix, noisy-channel
//!   Kraus operators, quantized local density ρ′, δ bucket, and solver
//!   options — so an adaptive sweep's second width, a repeated request, or
//!   a sibling request in a batch all reuse certificates the engine
//!   already paid for. Cache reuse is sound by the Weaken rule: entries
//!   are solved at a δ rounded *up* to the bucket edge with ρ′ perturbed
//!   only within the extra slack (see
//!   [`crate::AnalysisRequest::delta_quantum`]). The cache also performs
//!   **in-flight deduplication**: two obligations with the same key —
//!   whether from one request's solve stage or from concurrent batch
//!   siblings — trigger one SDP solve and one insert
//!   ([`CacheStats::inflight_dedup`] counts the piggybackers);
//!
//! * a **work-stealing worker pool** (see [`crate::pool`]) sized by
//!   [`EngineOptions::threads`] / the `GLEIPNIR_THREADS` env var. The pool
//!   serves *both* levels of parallelism: a single request's solve stage
//!   fans its per-gate SDP obligations over it, and
//!   [`Engine::analyze_batch`] fans whole requests over the same threads —
//!   so one request saturates the machine and a batch never
//!   oversubscribes it.
//!
//! The engine is thread-safe (`&Engine` can be shared freely);
//! [`Engine::analyze_batch`] returns per-request `Result`s — a failing or
//! panicking request never sinks its siblings.

use crate::adaptive::run_adaptive;
use crate::baseline::{run_lqr_full_sim, run_worst_case};
use crate::diamond::DiamondError;
use crate::logic::run_state_aware;
// `lock` recovers poisoned mutexes: the cache only ever holds
// fully-written `(key, ε)` pairs — a worker that panicked mid-analysis
// cannot leave a torn entry behind — so a poisoned shard is safe to keep
// using. This is what keeps one panicking batch request from sinking its
// siblings.
use crate::pool::{lock, run_indexed, PoolHandle, PriorityClass, SchedulerDepths, WorkerPool};
use crate::refine::{
    compute_first_answer, AnytimeAnswer, RefineStats, RefineStatus, RefineToken, RefinementRegistry,
};
use crate::report::Report;
use crate::request::{AnalysisRequest, Method};
use crate::testkit::ScriptedGate;
use crate::tiers::{BoundTier, TierStats, TierTotals};
use crate::AnalysisError;
use gleipnir_linalg::CMat;
use gleipnir_sdp::{SdpError, SolverOptions};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Number of independent cache shards; keeps lock contention low when
/// workers hammer the cache concurrently.
const CACHE_SHARDS: usize = 16;

/// A rendezvous for one in-flight SDP solve: the leading thread fills the
/// result, every joining thread waits on it.
pub(crate) struct InflightSlot {
    result: Mutex<Option<Result<(f64, BoundTier), DiamondError>>>,
    ready: Condvar,
    /// Whether the lead is guaranteed to produce a cold (not warm-started)
    /// certificate. Exact-policy lookups may only join cold leads — a
    /// warm-started dual's ε bits are not bit-reproducible.
    cold: bool,
}

impl InflightSlot {
    fn new(cold: bool) -> Self {
        InflightSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            cold,
        }
    }

    /// Blocks until the leading thread completes (or abandons) the solve.
    /// Progress is guaranteed: a lead is only ever held by a thread
    /// actively solving, and [`LeadGuard`] fills the slot even on panic.
    pub(crate) fn wait(&self) -> Result<(f64, BoundTier), DiamondError> {
        let mut slot = lock(&self.result);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Proof that the holder won the race to solve a key. Must be resolved via
/// [`LeadGuard::complete`]; dropping it (a panic unwinding through the
/// solve) completes the lead with an error so joiners never hang.
pub(crate) struct LeadGuard<'a> {
    cache: &'a SdpCache,
    key: Option<Vec<u64>>,
}

impl LeadGuard<'_> {
    /// Publishes the solve's outcome: inserts the certificate into the
    /// cache on success, wakes every joiner either way.
    pub(crate) fn complete(mut self, result: Result<Certificate, DiamondError>) {
        let key = self.key.take().expect("lead completed once");
        self.cache.finish_lead(key, result);
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.cache.finish_lead(
                key,
                Err(DiamondError::Solver(SdpError::Numerical(
                    "in-flight SDP solve abandoned by a panicking worker".into(),
                ))),
            );
        }
    }
}

/// The outcome of an in-flight-aware cache lookup.
pub(crate) enum Lookup<'a> {
    /// A finished certificate answered the judgment (ε plus the tier that
    /// produced it).
    Hit(f64, BoundTier),
    /// Another thread is solving this key right now; wait on the slot.
    Join(Arc<InflightSlot>),
    /// The caller won the lead: solve, then [`LeadGuard::complete`].
    Lead(LeadGuard<'a>),
    /// The key is in flight under a possibly-warm lead the caller may not
    /// trust (exact policy): solve privately, publish nothing. Rare race
    /// path — only reachable when fast- and exact-policy requests overlap
    /// on one key.
    Bypass,
}

/// A cached, re-verifiable SDP certificate: the certified bound ε plus the
/// dual vector proving it and the dimensions needed to re-parse the entry's
/// content address back into an SDP. `dim`/`n_kraus`/`dual` exist for the
/// persistent store ([`crate::persist`]): a loaded entry is only trusted
/// after its dual vector re-certifies ε against the rebuilt problem.
#[derive(Clone, Debug)]
pub(crate) struct Certificate {
    /// The certified diamond-norm upper bound.
    pub eps: f64,
    /// Ideal-gate dimension `d` (the key stores matrices as flat bit
    /// streams; without `d` they cannot be re-parsed).
    pub dim: u32,
    /// Number of Kraus operators in the noisy channel.
    pub n_kraus: u32,
    /// The weak-duality dual vector `y` behind `eps`.
    pub dual: Arc<Vec<f64>>,
    /// Which tier produced `eps` (loaded store entries count as cold — the
    /// solve that originally paid for them was one).
    pub tier: BoundTier,
}

/// The engine's shared, content-addressed SDP bound cache with in-flight
/// solve deduplication.
pub(crate) struct SdpCache {
    shards: Vec<Mutex<HashMap<Vec<u64>, Certificate>>>,
    inflight: Mutex<HashMap<Vec<u64>, Arc<InflightSlot>>>,
    /// Tier-1 warm-start index: coarse neighbor key (ρ′ rounded to 1e-4,
    /// δ coordinates zeroed) → the full keys of every stored certificate
    /// matching it. [`SdpCache::nearest_dual`] searches one coarse bucket
    /// instead of the whole store.
    neighbors: Mutex<HashMap<Vec<u64>, Vec<Vec<u64>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    inflight_dedup: AtomicUsize,
    /// Monotonic count of `insert` calls — a cheap change signal the
    /// persistence layer uses to skip whole-cache exports when nothing
    /// new could possibly need writing.
    inserts: AtomicUsize,
}

/// How far (in multiples of the queried δ bucket width) a stored
/// certificate's effective δ may sit from the queried one and still donate
/// its dual as a warm start. Beyond this the dual is too stale to help.
const WARM_NEIGHBOR_WINDOW_BUCKETS: f64 = 8.0;

/// Expected word count of a `(ρ̂, δ)` content address (see
/// [`key_rho_delta`]); the warm-start index only trusts keys whose layout
/// it can parse.
fn rho_delta_key_len(dim: usize, n_kraus: usize) -> usize {
    let dd2 = 2 * dim * dim;
    1 + dd2 + 1 + n_kraus * dd2 + 1 + dd2 + 4
}

/// The coarse neighbor key of a `(ρ̂, δ)` content address: ρ′ rounded to
/// 1e-4 per component (so judgments whose quantized ρ′ differ only in the
/// fine digits collide) and the `(bucket, quantum)` δ coordinates zeroed
/// (δ proximity is *searched* by [`SdpCache::nearest_dual`], not matched).
/// `None` when the key is not a structurally valid `(ρ̂, δ)` address.
fn warm_neighbor_coarse_key(key: &[u64], dim: usize, n_kraus: usize) -> Option<Vec<u64>> {
    if key.first() != Some(&KEY_RHO_DELTA) || !(dim == 2 || dim == 4) || n_kraus == 0 {
        return None;
    }
    if key.len() != rho_delta_key_len(dim, n_kraus) {
        return None;
    }
    let dd2 = 2 * dim * dim;
    let mut coarse = key.to_vec();
    let rho_start = key.len() - 4 - dd2;
    for w in &mut coarse[rho_start..rho_start + dd2] {
        let v = f64::from_bits(*w);
        if !v.is_finite() {
            return None;
        }
        let c = (v * 1e4).round() / 1e4;
        // Canonicalize −0.0 so it collides with +0.0.
        *w = (if c == 0.0 { 0.0 } else { c }).to_bits();
    }
    let len = coarse.len();
    coarse[len - 4] = 0;
    coarse[len - 3] = 0;
    Some(coarse)
}

/// The effective δ a `(ρ̂, δ)` key certifies: `bucket · quantum`.
fn key_delta_eff(key: &[u64]) -> Option<f64> {
    if key.len() < 4 {
        return None;
    }
    let bucket = key[key.len() - 4];
    let quantum = f64::from_bits(key[key.len() - 3]);
    let delta = bucket as f64 * quantum;
    delta.is_finite().then_some(delta)
}

impl SdpCache {
    fn new() -> Self {
        SdpCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            inflight: Mutex::new(HashMap::new()),
            neighbors: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            inflight_dedup: AtomicUsize::new(0),
            inserts: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &[u64]) -> &Mutex<HashMap<Vec<u64>, Certificate>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// Looks up a certified bound by content address.
    pub(crate) fn get(&self, key: &[u64]) -> Option<f64> {
        let found = lock(self.shard(key)).get(key).map(|c| c.eps);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a certificate under its content address (and, for `(ρ̂, δ)`
    /// certificates carrying a dual vector, registers it in the Tier-1
    /// warm-start neighbor index).
    pub(crate) fn insert(&self, key: Vec<u64>, cert: Certificate) {
        let coarse = (!cert.dual.is_empty())
            .then(|| warm_neighbor_coarse_key(&key, cert.dim as usize, cert.n_kraus as usize))
            .flatten();
        let full = coarse.as_ref().map(|_| key.clone());
        lock(self.shard(&key)).insert(key, cert);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let (Some(coarse), Some(full)) = (coarse, full) {
            let mut map = lock(&self.neighbors);
            let list = map.entry(coarse).or_default();
            if !list.contains(&full) {
                list.push(full);
            }
        }
    }

    /// Tier-1 probe: the best stored dual among the key's **neighbors** —
    /// certificates for the same gate/Kraus/solver-options whose quantized
    /// ρ′ agrees to coarse (1e-4) precision and whose effective δ lies
    /// within [`WARM_NEIGHBOR_WINDOW_BUCKETS`] bucket widths of the
    /// queried one (adjacent δ buckets, re-bucketed quanta, and fine-digit
    /// ρ′ drift all qualify). The exact key itself never matches — that
    /// would be a plain cache hit.
    ///
    /// Deterministic by construction: candidates are ranked by
    /// `(|Δδ_eff|, key)` — a total order over the candidate *set*, which
    /// for a fixed prior cache state does not depend on insertion order or
    /// thread scheduling. No counter side effects.
    pub(crate) fn nearest_dual(
        &self,
        key: &[u64],
        dim: u32,
        n_kraus: u32,
    ) -> Option<Arc<Vec<f64>>> {
        let coarse = warm_neighbor_coarse_key(key, dim as usize, n_kraus as usize)?;
        let query_delta = key_delta_eff(key)?;
        let quantum = f64::from_bits(key[key.len() - 3]);
        if !(quantum.is_finite() && quantum > 0.0) {
            return None;
        }
        let window = WARM_NEIGHBOR_WINDOW_BUCKETS * quantum;
        // Rank under the index lock and clone only the winning key — the
        // candidate lists hold full content addresses (hundreds of words
        // each), and this probe runs once per keyed unit on the
        // sequential dispatch path.
        let donor: Vec<u64> = {
            let map = lock(&self.neighbors);
            let candidates = map.get(&coarse)?;
            let mut best: Option<(f64, &Vec<u64>)> = None;
            for cand in candidates {
                if cand.as_slice() == key {
                    continue;
                }
                let Some(delta) = key_delta_eff(cand) else {
                    continue;
                };
                let dist = (delta - query_delta).abs();
                if dist > window {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bd, bk)) => dist < *bd || (dist == *bd && cand < *bk),
                };
                if better {
                    best = Some((dist, cand));
                }
            }
            best?.1.clone()
        };
        lock(self.shard(&donor))
            .get(&donor)
            .filter(|c| !c.dual.is_empty())
            .map(|c| Arc::clone(&c.dual))
    }

    /// The monotonic insert counter (see the field docs).
    pub(crate) fn insert_count(&self) -> usize {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Clones out every stored `(key, certificate)` pair — the persistence
    /// layer's export hook. Shards are locked one at a time, so concurrent
    /// analyses are only ever briefly blocked on a single shard.
    pub(crate) fn export(&self) -> Vec<(Vec<u64>, Certificate)> {
        self.shards
            .iter()
            .flat_map(|s| {
                lock(s)
                    .iter()
                    .map(|(k, c)| (k.clone(), c.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Whether a certificate for this key is already present (no counter
    /// side effects — used by import paths).
    pub(crate) fn contains(&self, key: &[u64]) -> bool {
        lock(self.shard(key)).contains_key(key)
    }

    /// Side-effect-free peek at a finished **cold** certificate's ε — the
    /// anytime first answer's cache source. Deliberately narrower than
    /// [`SdpCache::get`] on every axis the anytime soundness contract
    /// cares about: no hit/miss counting (an anytime probe must not
    /// perturb the pinned counter fixtures), no in-flight interaction
    /// (first answers never join or lead a solve), and warm-started
    /// certificates are invisible — a warm ε may sit *below* the cold
    /// exact ε, which would break "every intermediate answer ≥ the final
    /// refined ε" (SOUNDNESS.md obligation 8).
    pub(crate) fn peek_cold(&self, key: &[u64]) -> Option<f64> {
        lock(self.shard(key))
            .get(key)
            .filter(|c| c.tier == BoundTier::ColdSolve)
            .map(|c| c.eps)
    }

    /// In-flight-aware lookup: a finished certificate wins; otherwise the
    /// caller either joins the thread already solving this key or becomes
    /// the lead itself. Lock order is inflight-map → shard, and
    /// [`SdpCache::finish_lead`] never holds both, so the nesting is safe.
    ///
    /// `accept_warm` is the caller's tier trust: an exact-policy request
    /// (`accept_warm == false`) never accepts a warm-produced certificate's
    /// ε bits — a stored [`BoundTier::WarmStarted`] entry is treated as a
    /// miss and re-led cold (the re-solve's insert overwrites the warm
    /// entry), and an in-flight possibly-warm lead is [`Lookup::Bypass`]ed.
    /// `lead_cold` declares what the caller would produce *if it leads*
    /// (no warm-start dual in hand ⇒ cold), which is what later arrivals'
    /// join decisions key off.
    pub(crate) fn lookup_or_lead(
        &self,
        key: &[u64],
        accept_warm: bool,
        lead_cold: bool,
    ) -> Lookup<'_> {
        let usable = |c: &Certificate| accept_warm || c.tier != BoundTier::WarmStarted;
        // Fast path: a bare shard probe, no global lock. Certificates are
        // only ever added (outside `clear_cache`), so a hit here is final —
        // this keeps the warm-cache path as parallel as the 16-way
        // sharding intends.
        if let Some((eps, tier)) = lock(self.shard(key))
            .get(key)
            .filter(|c| usable(c))
            .map(|c| (c.eps, c.tier))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Hit(eps, tier);
        }
        let mut inflight = lock(&self.inflight);
        // Re-probe *under* the in-flight lock: a lead inserts into the
        // cache before removing its in-flight entry, so a racer that
        // missed the fast probe sees the key in at least one of the two
        // maps here.
        if let Some((eps, tier)) = lock(self.shard(key))
            .get(key)
            .filter(|c| usable(c))
            .map(|c| (c.eps, c.tier))
        {
            drop(inflight);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Hit(eps, tier);
        }
        match inflight.entry(key.to_vec()) {
            Entry::Occupied(e) => {
                if !accept_warm && !e.get().cold {
                    drop(inflight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Bypass;
                }
                let slot = Arc::clone(e.get());
                drop(inflight);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.inflight_dedup.fetch_add(1, Ordering::Relaxed);
                Lookup::Join(slot)
            }
            Entry::Vacant(v) => {
                v.insert(Arc::new(InflightSlot::new(lead_cold)));
                drop(inflight);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Lead(LeadGuard {
                    cache: self,
                    key: Some(key.to_vec()),
                })
            }
        }
    }

    fn finish_lead(&self, key: Vec<u64>, result: Result<Certificate, DiamondError>) {
        let published = result
            .as_ref()
            .map(|c| (c.eps, c.tier))
            .map_err(Clone::clone);
        if let Ok(cert) = result {
            self.insert(key.clone(), cert);
        }
        let slot = lock(&self.inflight).remove(&key);
        if let Some(slot) = slot {
            *lock(&slot.result) = Some(published);
            slot.ready.notify_all();
        }
    }

    /// Counts judgments answered without their own lookup — the duplicate
    /// obligations a solve stage folded onto a single representative.
    pub(crate) fn note_follower_hits(&self, n: usize) {
        if n > 0 {
            self.hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts judgments deduplicated against an in-flight solve rather
    /// than a finished certificate.
    pub(crate) fn note_inflight_dedup(&self, n: usize) {
        if n > 0 {
            self.inflight_dedup.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn entries(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            lock(s).clear();
        }
        lock(&self.neighbors).clear();
        // The in-flight map is deliberately left alone: clearing it would
        // orphan threads waiting on a slot. Leads complete and remove
        // their own entries.
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inflight_dedup.store(0, Ordering::Relaxed);
    }
}

/// Cache-key tag for ρ̂-constrained `(ρ̂, δ)`-diamond SDPs.
pub(crate) const KEY_RHO_DELTA: u64 = 1;
/// Cache-key tag for unconstrained diamond SDPs (worst-case analysis).
pub(crate) const KEY_UNCONSTRAINED: u64 = 0;
/// Separator between heterogeneous key segments.
pub(crate) const KEY_SEP: u64 = u64::MAX;

fn push_mat(key: &mut Vec<u64>, m: &CMat) {
    for z in m.as_slice() {
        key.push(z.re.to_bits());
        key.push(z.im.to_bits());
    }
}

fn push_opts(key: &mut Vec<u64>, opts: &SolverOptions) {
    key.push(opts.max_iterations as u64);
    key.push(opts.tolerance.to_bits());
}

/// Content address of a `(ρ̂, δ)`-diamond SDP: ideal gate, noisy Kraus
/// operators, quantized ρ′, and solver options, plus the **effective δ**
/// the certificate was solved at (bucket index *and* bucket width — the
/// cache is engine-wide, and requests may differ in `delta_quantum`, so a
/// bare bucket integer would let certificates solved for a smaller δ
/// unsoundly answer judgments with a larger one).
pub(crate) fn key_rho_delta(
    gate: &CMat,
    kraus: &[CMat],
    rho_q: &CMat,
    bucket: u64,
    delta_quantum: f64,
    opts: &SolverOptions,
) -> Vec<u64> {
    let mut key = vec![KEY_RHO_DELTA];
    push_mat(&mut key, gate);
    key.push(KEY_SEP);
    for k in kraus {
        push_mat(&mut key, k);
    }
    key.push(KEY_SEP);
    push_mat(&mut key, rho_q);
    key.push(bucket);
    key.push(delta_quantum.to_bits());
    push_opts(&mut key, opts);
    key
}

/// Content address of an unconstrained diamond SDP.
pub(crate) fn key_unconstrained(gate: &CMat, kraus: &[CMat], opts: &SolverOptions) -> Vec<u64> {
    let mut key = vec![KEY_UNCONSTRAINED];
    push_mat(&mut key, gate);
    key.push(KEY_SEP);
    for k in kraus {
        push_mat(&mut key, k);
    }
    push_opts(&mut key, opts);
    key
}

/// A snapshot of the engine's cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Judgments answered from a finished certificate (across all requests
    /// so far), including duplicates a solve stage folded together.
    pub hits: usize,
    /// Lookups that missed and required an SDP solve.
    pub misses: usize,
    /// Certificates currently stored.
    pub entries: usize,
    /// Judgments answered by piggybacking on an SDP solve that was already
    /// in flight (same request or a concurrent sibling) instead of
    /// triggering their own. A sub-classification of `hits`.
    pub inflight_dedup: usize,
}

/// The outcome of [`Engine::analyze_batch_detailed`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request results, in request order.
    pub results: Vec<Result<Report, AnalysisError>>,
    /// Distinct threads that processed at least one request (the caller's
    /// thread participates, so this is ≥ 1 for a non-empty batch and at
    /// most `min(batch size, Engine::threads())`).
    pub worker_threads: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

/// Construction options for an [`Engine`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineOptions {
    /// Default solver options for requests that don't override them.
    pub solver: SolverOptions,
    /// Concurrency cap for the engine's worker pool, *including* the
    /// calling thread (`1` = fully sequential). `0` defers to the
    /// `GLEIPNIR_THREADS` env var, and failing that to
    /// `available_parallelism()` (at least 2).
    pub threads: usize,
}

impl From<SolverOptions> for EngineOptions {
    fn from(solver: SolverOptions) -> Self {
        EngineOptions { solver, threads: 0 }
    }
}

/// Parses a `GLEIPNIR_THREADS` value: `Ok(Some(n))` for an explicit
/// positive cap, `Ok(None)` for `0` (= auto), `Err` for anything that
/// doesn't parse (`"four"`, `"-2"`, `""`). Malformed values must never
/// fall through silently: the user asked for a specific concurrency and
/// would otherwise get `available_parallelism()` with no signal.
pub(crate) fn parse_threads_env(value: &str) -> Result<Option<usize>, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "GLEIPNIR_THREADS must be a non-negative integer (0 = auto), got `{value}`"
        )),
    }
}

/// The auto thread cap: `available_parallelism()`, at least 2 so that even
/// a single-core host overlaps a batch's requests (matching the pre-pool
/// behavior).
fn auto_threads() -> usize {
    thread::available_parallelism()
        .map_or(2, |n| n.get())
        .max(2)
}

/// Resolves the configured thread cap: explicit > `GLEIPNIR_THREADS` >
/// [`auto_threads`].
///
/// # Errors
///
/// [`AnalysisError::InvalidConfig`] when the env var is consulted and is
/// malformed.
fn resolve_threads(requested: usize) -> Result<usize, AnalysisError> {
    if requested > 0 {
        return Ok(requested);
    }
    match std::env::var("GLEIPNIR_THREADS") {
        Ok(value) => match parse_threads_env(&value) {
            Ok(Some(n)) => Ok(n),
            Ok(None) => Ok(auto_threads()),
            Err(msg) => Err(AnalysisError::InvalidConfig(msg)),
        },
        Err(_) => Ok(auto_threads()),
    }
}

/// The engine state shared with (and outliving) pool jobs.
pub(crate) struct EngineShared {
    pub(crate) cache: SdpCache,
    pub(crate) options: SolverOptions,
    /// Engine-lifetime tier totals (per-tier answer counts + cumulative
    /// interior-point iterations), surfaced by [`Engine::tier_stats`] and
    /// the server's `/metrics`.
    pub(crate) tiers: TierTotals,
    /// The anytime refinement registry: token → in-flight/completed exact
    /// re-analysis (see [`crate::refine`]).
    pub(crate) refines: RefinementRegistry,
}

/// A cheap, clonable, `'static` handle to the engine — what analysis
/// stages and pool jobs work against. Holds the pool only weakly so a
/// queued job can never be the one to drop (and join) the pool.
#[derive(Clone)]
pub(crate) struct EngineHandle {
    pub(crate) shared: Arc<EngineShared>,
    pub(crate) pool: PoolHandle,
    /// The scheduling class this handle's solve stages submit pool work
    /// under — interactive for direct `analyze` calls, batch for batch
    /// fan-out, refinement for anytime background re-analyses.
    pub(crate) class: PriorityClass,
}

impl EngineHandle {
    /// The solver options a request resolves to.
    pub(crate) fn resolve_options(&self, request: &AnalysisRequest) -> SolverOptions {
        request.solver_options().unwrap_or(self.shared.options)
    }

    /// The engine's shared SDP cache (per-request participation is decided
    /// by [`AnalysisRequest::cache_enabled`]).
    pub(crate) fn cache(&self) -> &SdpCache {
        &self.shared.cache
    }
}

/// Runs one analysis request against an engine handle, dispatching on its
/// [`Method`]. The free-function form (rather than a method on [`Engine`])
/// lets pool workers run batch requests without holding the engine itself.
pub(crate) fn analyze_request(
    h: &EngineHandle,
    request: &AnalysisRequest,
) -> Result<Report, AnalysisError> {
    let opts = h.resolve_options(request);
    match request.method() {
        Method::StateAware { mps_width } => {
            let mps_t0 = gleipnir_telemetry::now_ns();
            let mps = request.input().build_mps(*mps_width)?;
            if let Some(ctx) = gleipnir_telemetry::active() {
                gleipnir_telemetry::record_span(
                    ctx,
                    gleipnir_telemetry::SpanName::Mps,
                    gleipnir_telemetry::next_span_id(),
                    mps_t0,
                    gleipnir_telemetry::now_ns(),
                    0,
                    0,
                    0,
                );
            }
            run_state_aware(
                h,
                request.program(),
                mps,
                request.noise(),
                &opts,
                request.cache_enabled(),
                request.delta_quantum(),
                request.tier_policy(),
            )
            .map(Report::StateAware)
        }
        Method::Adaptive(cfg) => run_adaptive(h, request, cfg).map(Report::Adaptive),
        Method::WorstCase => run_worst_case(h, request).map(Report::WorstCase),
        Method::LqrFullSim => run_lqr_full_sim(request, &opts).map(Report::LqrFullSim),
    }
}

/// The long-lived, thread-safe analysis engine (see the module docs).
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
/// use gleipnir_core::{AnalysisRequest, Engine, Method};
/// use gleipnir_noise::NoiseModel;
///
/// let engine = Engine::new();
/// let mut b = ProgramBuilder::new(2);
/// b.h(0).cnot(0, 1);
/// let request = AnalysisRequest::builder(b.build())
///     .noise(NoiseModel::uniform_bit_flip(1e-4))
///     .method(Method::StateAware { mps_width: 8 })
///     .build()?;
/// let report = engine.analyze(&request)?;
/// assert!(report.error_bound() > 0.0);
/// assert!(report.error_bound() < 2e-4);
/// # Ok::<(), gleipnir_core::AnalysisError>(())
/// ```
pub struct Engine {
    shared: Arc<EngineShared>,
    pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cache", &self.shared.cache)
            .field("options", &self.shared.options)
            .field("threads", &self.pool.threads())
            .finish()
    }
}

impl std::fmt::Debug for SdpCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdpCache")
            .field("entries", &self.entries())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field(
                "inflight_dedup",
                &self.inflight_dedup.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with default solver options and an auto-sized pool.
    ///
    /// Infallible by design (it backs [`Default`]): when `GLEIPNIR_THREADS`
    /// is malformed it warns **once** on stderr and falls back to
    /// [`available_parallelism`](thread::available_parallelism). Use
    /// [`Engine::with_options`] to surface the malformed env var as an
    /// error instead.
    pub fn new() -> Self {
        match Self::with_options(EngineOptions::default()) {
            Ok(engine) => engine,
            Err(err) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!("gleipnir: {err}; falling back to available parallelism");
                });
                Self::build(SolverOptions::default(), auto_threads())
            }
        }
    }

    fn build(solver: SolverOptions, threads: usize) -> Self {
        Engine {
            shared: Arc::new(EngineShared {
                cache: SdpCache::new(),
                options: solver,
                tiers: TierTotals::default(),
                refines: RefinementRegistry::default(),
            }),
            pool: Arc::new(WorkerPool::new(threads)),
        }
    }

    /// An engine built from [`EngineOptions`] (a bare [`SolverOptions`]
    /// also converts, keeping the pool auto-sized): per-request solver
    /// defaults plus the worker-pool thread cap.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::InvalidConfig`] when `threads` is 0 (= defer to the
    /// environment) and `GLEIPNIR_THREADS` is set but malformed (e.g.
    /// `"four"` or `"-2"`) — a requested concurrency cap is configuration,
    /// and silently ignoring it would hand the user a different pool size
    /// than the one they asked for.
    pub fn with_options(options: impl Into<EngineOptions>) -> Result<Self, AnalysisError> {
        let options = options.into();
        Ok(Self::build(
            options.solver,
            resolve_threads(options.threads)?,
        ))
    }

    /// The engine-level default solver options.
    pub fn options(&self) -> &SolverOptions {
        &self.shared.options
    }

    /// The resolved concurrency cap: how many threads (including a calling
    /// thread) may analyze simultaneously.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// A snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.shared.cache.hits.load(Ordering::Relaxed),
            misses: self.shared.cache.misses.load(Ordering::Relaxed),
            entries: self.shared.cache.entries(),
            inflight_dedup: self.shared.cache.inflight_dedup.load(Ordering::Relaxed),
        }
    }

    /// Engine-lifetime tier totals: how many judgments each tier of the
    /// bound engine answered, and the interior-point iterations spent
    /// (see [`crate::TierPolicy`] — with the default exact policy
    /// everything lands in `cold`).
    pub fn tier_stats(&self) -> TierStats {
        self.shared.tiers.snapshot()
    }

    /// Drops every cached certificate and resets the counters.
    pub fn clear_cache(&self) {
        self.shared.cache.clear();
    }

    /// The shared SDP cache (for the persistence layer's export/import).
    pub(crate) fn sdp_cache(&self) -> &SdpCache {
        &self.shared.cache
    }

    /// The handle analysis stages and pool jobs run against. Direct
    /// `analyze` calls run in the interactive class.
    pub(crate) fn handle(&self) -> EngineHandle {
        self.handle_with_class(PriorityClass::Interactive)
    }

    /// A handle whose solve-stage pool submissions carry `class`.
    pub(crate) fn handle_with_class(&self, class: PriorityClass) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
            pool: PoolHandle::new(&self.pool),
            class,
        }
    }

    /// Runs one analysis request, dispatching on its [`Method`]. The
    /// request's solve stage fans per-gate SDP obligations over the
    /// engine's worker pool — a single request already uses every
    /// configured thread.
    ///
    /// # Errors
    ///
    /// [`AnalysisError`] on width mismatch, unsupported features, or SDP
    /// failure. (Requests are validated at build time, so configuration
    /// errors surface earlier, from [`crate::AnalysisRequestBuilder::build`].)
    pub fn analyze(&self, request: &AnalysisRequest) -> Result<Report, AnalysisError> {
        analyze_request(&self.handle(), request)
    }

    /// Analyzes a batch of requests across the engine's worker pool,
    /// returning one `Result` per request (in request order). A failing or
    /// panicking request does not affect its siblings, and all workers
    /// share the engine's SDP cache and in-flight dedup.
    pub fn analyze_batch(
        &self,
        requests: &[AnalysisRequest],
    ) -> Vec<Result<Report, AnalysisError>> {
        self.analyze_batch_detailed(requests).results
    }

    /// [`Engine::analyze_batch`] plus batch-level bookkeeping: the number
    /// of threads that *actually processed* at least one request (not the
    /// number spawned) and the wall-clock time.
    pub fn analyze_batch_detailed(&self, requests: &[AnalysisRequest]) -> BatchOutcome {
        let start = Instant::now();
        if requests.is_empty() {
            return BatchOutcome {
                results: Vec::new(),
                worker_threads: 0,
                elapsed: start.elapsed(),
            };
        }
        // Requests are cloned into an Arc so pool workers can outlive the
        // borrow; panics inside a request become that request's
        // `AnalysisError::Panicked` (converted by the task set).
        let requests: Arc<Vec<AnalysisRequest>> = Arc::new(requests.to_vec());
        let h = self.handle_with_class(PriorityClass::Batch);
        let task_h = h.clone();
        let out = run_indexed(&h.pool, PriorityClass::Batch, requests.len(), move |i| {
            analyze_request(&task_h, &requests[i])
        });
        BatchOutcome {
            results: out.results,
            worker_threads: out.participants,
            elapsed: start.elapsed(),
        }
    }

    /// Anytime analysis: returns **immediately** with the best
    /// currently-certified upper bound on ε (finished cold certificates,
    /// Tier-0 closed forms, or the trivial bound 1 — no SDP is solved)
    /// plus a [`RefineToken`], while the exact analysis runs in the
    /// background on the worker pool's refinement class. Poll the token
    /// with [`Engine::refinement`] / [`Engine::wait_refinement`] for the
    /// tightened ε.
    ///
    /// Soundness (SOUNDNESS.md obligation 8): the first bound is a
    /// certified upper bound on the refined ε, and the refinement runs the
    /// request under [`crate::TierPolicy::exact`] — its ε is bit-identical
    /// to a cold exact-policy [`Engine::analyze`] of the same request.
    /// Nothing on the first-answer path writes the cache, enters the
    /// in-flight dedup protocol, or perturbs the cache counters.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::InvalidConfig`] for non-state-aware requests
    /// (anytime refinement is defined over the state-aware proof system),
    /// or any planning error the full analysis would also hit.
    pub fn analyze_anytime(
        &self,
        request: &AnalysisRequest,
    ) -> Result<AnytimeAnswer, AnalysisError> {
        let start = Instant::now();
        let h = self.handle();
        let (first_bound, sources) = compute_first_answer(&h, request)?;
        let (token, entry) = self.shared.refines.register();
        let exact = request.exact_clone();
        let refine_h = self.handle_with_class(PriorityClass::Refinement);
        let job_h = refine_h.clone();
        self.shared.refines.submit(
            &refine_h,
            Box::new(move || {
                let result = analyze_request(&job_h, &exact);
                job_h.shared.refines.publish(token, &entry, result);
            }),
        );
        Ok(AnytimeAnswer {
            token,
            first_bound,
            first_elapsed: start.elapsed(),
            sources,
        })
    }

    /// The current state of an anytime refinement: `None` for a token this
    /// engine never minted (or evicted long after completion), otherwise
    /// the [`RefineStatus`]. Terminal states are served repeatedly.
    pub fn refinement(&self, token: RefineToken) -> Option<RefineStatus> {
        self.shared.refines.get(token).map(|e| e.status())
    }

    /// Long-poll form of [`Engine::refinement`]: blocks until the
    /// refinement reaches a terminal state or `timeout` elapses, returning
    /// the state at that moment (`Pending` on timeout).
    pub fn wait_refinement(&self, token: RefineToken, timeout: Duration) -> Option<RefineStatus> {
        self.shared.refines.get(token).map(|e| e.wait(timeout))
    }

    /// Engine-lifetime refinement counters.
    pub fn refine_stats(&self) -> RefineStats {
        self.shared.refines.stats()
    }

    /// Current per-class backlog of the engine's worker pool (queued jobs
    /// not yet claimed by a worker).
    pub fn scheduler_depths(&self) -> SchedulerDepths {
        self.pool.depths()
    }

    /// **Test support.** Scripted-refinement mode: while on, refinement
    /// jobs queue inside the engine instead of the worker pool and run
    /// only when [`Engine::run_next_refinement`] is called — giving the
    /// deterministic scheduler harness full control over the interleaving
    /// of submission, polling, and completion. No production effect when
    /// left off (the default).
    pub fn set_scripted_refinements(&self, on: bool) {
        self.shared.refines.set_scripted(on);
    }

    /// **Test support.** Runs the oldest queued scripted refinement on the
    /// calling thread; `false` when none are queued.
    pub fn run_next_refinement(&self) -> bool {
        self.shared.refines.run_next()
    }

    /// **Test support.** Scripted refinements queued and not yet run.
    pub fn pending_refinements(&self) -> usize {
        self.shared.refines.queued()
    }

    /// **Test support.** Arms a one-shot [`ScriptedGate`]: the next
    /// refinement to finish computing parks at the gate *before* its
    /// result becomes visible, so a test can provably poll the `Pending`
    /// state mid-solve, then release the gate and observe completion.
    pub fn hold_next_refinement(&self) -> Arc<ScriptedGate> {
        let gate = Arc::new(ScriptedGate::new());
        self.shared.refines.arm_hold(Arc::clone(&gate));
        gate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal test certificate (empty dual vector — the cache itself
    /// never inspects certificate internals).
    fn cert(eps: f64) -> Certificate {
        Certificate {
            eps,
            dim: 2,
            n_kraus: 1,
            dual: Arc::new(Vec::new()),
            tier: BoundTier::ColdSolve,
        }
    }

    #[test]
    fn thread_cap_resolution_prefers_explicit() {
        assert_eq!(resolve_threads(3).unwrap(), 3);
        assert_eq!(resolve_threads(1).unwrap(), 1);
        // Auto mode is at least 2 (or whatever the env var pins — in
        // either case nonzero).
        assert!(resolve_threads(0).unwrap() >= 1);
    }

    #[test]
    fn threads_env_parsing_is_strict() {
        assert_eq!(parse_threads_env("4"), Ok(Some(4)));
        assert_eq!(parse_threads_env(" 8 "), Ok(Some(8)));
        assert_eq!(parse_threads_env("0"), Ok(None));
        for bad in ["four", "-2", "", "1.5", "2x"] {
            let err = parse_threads_env(bad).unwrap_err();
            assert!(err.contains("GLEIPNIR_THREADS"), "{bad}: {err}");
        }
    }

    /// Probe body for [`malformed_threads_env_is_invalid_config`]: only
    /// asserts when *this process* was launched with a malformed
    /// `GLEIPNIR_THREADS` (the parent test spawns such a child). Run
    /// normally, the env is clean and the probe is a no-op — so no test in
    /// this binary ever mutates the process environment.
    #[test]
    fn env_probe_malformed_threads() {
        match std::env::var("GLEIPNIR_THREADS") {
            Ok(value) if parse_threads_env(&value).is_err() => {
                let deferred = Engine::with_options(EngineOptions {
                    solver: SolverOptions::default(),
                    threads: 0,
                });
                assert!(
                    matches!(
                        deferred,
                        Err(AnalysisError::InvalidConfig(ref msg)) if msg.contains(&value)
                    ),
                    "malformed env must surface as InvalidConfig, got {deferred:?}"
                );
                // An explicit cap never consults the env var.
                let explicit = Engine::with_options(EngineOptions {
                    solver: SolverOptions::default(),
                    threads: 2,
                });
                assert_eq!(explicit.unwrap().threads(), 2);
                // `Engine::new` stays infallible: it warns and falls back.
                assert!(Engine::new().threads() >= 2);
            }
            _ => {}
        }
    }

    /// Re-runs [`env_probe_malformed_threads`] in a child process whose
    /// environment carries `GLEIPNIR_THREADS=four` from birth — the
    /// process env is global state, and `set_var` in a multithreaded test
    /// binary would race every other test that builds an engine.
    #[test]
    fn malformed_threads_env_is_invalid_config() {
        let exe = std::env::current_exe().expect("test binary path");
        let output = std::process::Command::new(exe)
            .args(["engine::tests::env_probe_malformed_threads", "--exact"])
            .env("GLEIPNIR_THREADS", "four")
            .output()
            .expect("spawn probe child");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "probe failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        // Guard against the filter silently matching nothing (e.g. after a
        // rename): the child must have actually run the probe.
        assert!(
            stdout.contains("1 passed"),
            "probe did not run in the child:\n{stdout}"
        );
    }

    #[test]
    fn engine_reports_its_thread_cap() {
        let engine = Engine::with_options(EngineOptions {
            solver: SolverOptions::default(),
            threads: 3,
        })
        .unwrap();
        assert_eq!(engine.threads(), 3);
        let sequential = Engine::with_options(EngineOptions {
            solver: SolverOptions::default(),
            threads: 1,
        })
        .unwrap();
        assert_eq!(sequential.threads(), 1);
    }

    /// A structurally valid `(ρ̂, δ)` key for the identity gate with one
    /// identity Kraus operator, at the given ρ′ and δ bucket.
    fn rho_delta_key(rho_diag: [f64; 2], bucket: u64, quantum: f64) -> Vec<u64> {
        let gate = CMat::identity(2);
        let kraus = vec![CMat::identity(2)];
        let rho = CMat::diag_real(&rho_diag);
        key_rho_delta(
            &gate,
            &kraus,
            &rho,
            bucket,
            quantum,
            &SolverOptions::default(),
        )
    }

    fn cert_with_dual(eps: f64, dual: Vec<f64>) -> Certificate {
        Certificate {
            eps,
            dim: 2,
            n_kraus: 1,
            dual: Arc::new(dual),
            tier: BoundTier::ColdSolve,
        }
    }

    #[test]
    fn nearest_dual_finds_adjacent_bucket() {
        let cache = SdpCache::new();
        let donor_key = rho_delta_key([1.0, 0.0], 5, 1e-6);
        cache.insert(donor_key, cert_with_dual(0.5, vec![1.0, 2.0]));
        let query = rho_delta_key([1.0, 0.0], 6, 1e-6);
        let dual = cache.nearest_dual(&query, 2, 1).expect("adjacent bucket");
        assert_eq!(*dual, vec![1.0, 2.0]);
    }

    #[test]
    fn nearest_dual_prefers_the_closest_bucket() {
        let cache = SdpCache::new();
        cache.insert(
            rho_delta_key([1.0, 0.0], 3, 1e-6),
            cert_with_dual(0.5, vec![3.0]),
        );
        cache.insert(
            rho_delta_key([1.0, 0.0], 9, 1e-6),
            cert_with_dual(0.5, vec![9.0]),
        );
        let query = rho_delta_key([1.0, 0.0], 8, 1e-6);
        let dual = cache.nearest_dual(&query, 2, 1).expect("neighbor in range");
        assert_eq!(*dual, vec![9.0], "bucket 9 is closer to 8 than bucket 3");
    }

    #[test]
    fn nearest_dual_ignores_far_buckets_and_self() {
        let cache = SdpCache::new();
        cache.insert(
            rho_delta_key([1.0, 0.0], 5, 1e-6),
            cert_with_dual(0.5, vec![1.0]),
        );
        // Beyond the window: no donor.
        let far = rho_delta_key([1.0, 0.0], 5 + 100, 1e-6);
        assert!(cache.nearest_dual(&far, 2, 1).is_none());
        // The exact key is a cache hit's job, not a neighbor.
        let same = rho_delta_key([1.0, 0.0], 5, 1e-6);
        assert!(cache.nearest_dual(&same, 2, 1).is_none());
    }

    #[test]
    fn nearest_dual_tolerates_fine_rho_drift_but_not_coarse() {
        let cache = SdpCache::new();
        cache.insert(
            rho_delta_key([1.0, 0.0], 5, 1e-6),
            cert_with_dual(0.5, vec![7.0]),
        );
        // ρ′ differing below the 1e-4 coarsening still matches…
        let fine = rho_delta_key([1.0 - 3e-8, 3e-8], 5 + 1, 1e-6);
        assert!(cache.nearest_dual(&fine, 2, 1).is_some());
        // …a coarsely different ρ′ does not.
        let coarse = rho_delta_key([0.9, 0.1], 5 + 1, 1e-6);
        assert!(cache.nearest_dual(&coarse, 2, 1).is_none());
    }

    #[test]
    fn nearest_dual_matches_across_quanta_by_delta_eff() {
        // bucket 10 at quantum 1e-6 (δ_eff = 1e-5) should serve a query at
        // bucket 9 with quantum 1.1e-6 (δ_eff = 9.9e-6): different keys,
        // nearly identical judgments.
        let cache = SdpCache::new();
        cache.insert(
            rho_delta_key([1.0, 0.0], 10, 1e-6),
            cert_with_dual(0.5, vec![4.0]),
        );
        let query = rho_delta_key([1.0, 0.0], 9, 1.1e-6);
        assert!(cache.nearest_dual(&query, 2, 1).is_some());
    }

    #[test]
    fn dual_less_certificates_never_donate() {
        let cache = SdpCache::new();
        cache.insert(rho_delta_key([1.0, 0.0], 5, 1e-6), cert(0.5));
        let query = rho_delta_key([1.0, 0.0], 6, 1e-6);
        assert!(cache.nearest_dual(&query, 2, 1).is_none());
    }

    #[test]
    fn inflight_lookup_leads_then_hits() {
        let cache = SdpCache::new();
        let key = vec![1u64, 2, 3];
        match cache.lookup_or_lead(&key, true, true) {
            Lookup::Lead(guard) => guard.complete(Ok(cert(0.5))),
            _ => panic!("fresh key must be a lead"),
        }
        match cache.lookup_or_lead(&key, true, true) {
            Lookup::Hit(eps, tier) => {
                assert_eq!(eps, 0.5);
                assert_eq!(tier, BoundTier::ColdSolve);
            }
            _ => panic!("completed lead must be a hit"),
        }
        assert_eq!(cache.inflight.lock().unwrap().len(), 0, "entry removed");
    }

    #[test]
    fn abandoned_lead_unblocks_joiners_with_an_error() {
        let cache = Arc::new(SdpCache::new());
        let key = vec![9u64];
        let guard = match cache.lookup_or_lead(&key, true, true) {
            Lookup::Lead(g) => g,
            _ => panic!("fresh key must be a lead"),
        };
        let joiner = match cache.lookup_or_lead(&key, true, true) {
            Lookup::Join(slot) => slot,
            _ => panic!("second lookup must join the in-flight solve"),
        };
        drop(guard); // simulates a panic unwinding through the solve
        assert!(joiner.wait().is_err(), "joiner must observe the failure");
        // The failed key is not cached; the next lookup leads again.
        assert!(matches!(
            cache.lookup_or_lead(&key, true, true),
            Lookup::Lead(_)
        ));
    }

    #[test]
    fn concurrent_leads_share_one_solve() {
        let cache = Arc::new(SdpCache::new());
        let key = vec![7u64, 7];
        let guard = match cache.lookup_or_lead(&key, true, true) {
            Lookup::Lead(g) => g,
            _ => panic!("lead"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            let key = key.clone();
            std::thread::spawn(move || match cache.lookup_or_lead(&key, true, true) {
                Lookup::Join(slot) => slot.wait().map(|(eps, _)| eps),
                Lookup::Hit(eps, _) => Ok(eps),
                Lookup::Lead(_) | Lookup::Bypass => panic!("only one lead per key"),
            })
        };
        guard.complete(Ok(cert(0.25)));
        assert_eq!(waiter.join().unwrap().unwrap(), 0.25);
        assert_eq!(cache.get(&key), Some(0.25));
    }

    /// A warm-produced certificate (non-empty dual, `WarmStarted` tier).
    fn warm_cert(eps: f64) -> Certificate {
        Certificate {
            eps,
            dim: 2,
            n_kraus: 1,
            dual: Arc::new(vec![1.0]),
            tier: BoundTier::WarmStarted,
        }
    }

    #[test]
    fn exact_lookups_never_hit_warm_certificates() {
        let cache = SdpCache::new();
        let key = rho_delta_key([1.0, 0.0], 5, 1e-6);
        cache.insert(key.clone(), warm_cert(0.7));
        // A fast-policy lookup accepts the warm entry…
        match cache.lookup_or_lead(&key, true, false) {
            Lookup::Hit(eps, tier) => {
                assert_eq!(eps, 0.7);
                assert_eq!(tier, BoundTier::WarmStarted);
            }
            _ => panic!("fast policy must accept a warm certificate"),
        }
        // …an exact-policy lookup re-leads a cold solve instead.
        match cache.lookup_or_lead(&key, false, true) {
            Lookup::Lead(guard) => guard.complete(Ok(cert(0.69))),
            _ => panic!("exact policy must re-lead past a warm certificate"),
        }
        // The cold re-solve overwrote the warm entry for everyone.
        match cache.lookup_or_lead(&key, false, true) {
            Lookup::Hit(eps, tier) => {
                assert_eq!(eps, 0.69);
                assert_eq!(tier, BoundTier::ColdSolve);
            }
            _ => panic!("cold re-solve must be a hit"),
        };
    }

    #[test]
    fn exact_lookups_bypass_warm_inflight_leads() {
        let cache = SdpCache::new();
        let key = vec![3u64, 1, 4];
        // A fast-policy lead with a warm-start dual in hand (cold = false).
        let guard = match cache.lookup_or_lead(&key, true, false) {
            Lookup::Lead(g) => g,
            _ => panic!("fresh key must be a lead"),
        };
        // An exact-policy arrival may not join it…
        assert!(matches!(
            cache.lookup_or_lead(&key, false, true),
            Lookup::Bypass
        ));
        // …but a fast-policy arrival may.
        assert!(matches!(
            cache.lookup_or_lead(&key, true, false),
            Lookup::Join(_)
        ));
        guard.complete(Ok(warm_cert(0.5)));
    }
}
