//! Adaptive width selection — the paper's §1 promise operationalized:
//! "one may adjust the approximation precision by varying the size of the
//! MPS such that tighter error bounds can be computed using greater
//! computational resources".
//!
//! [`Method::Adaptive`](crate::Method::Adaptive) doubles the MPS width
//! until the bound's relative improvement drops below a threshold (the
//! "marginal returns beyond a certain size" of Fig. 14) or a width cap is
//! hit, returning the tightest report together with the trajectory.
//!
//! Every width runs against the owning [`Engine`](crate::Engine)'s shared
//! SDP cache, so certificates paid for at width `w` are reused at `2w` —
//! early-circuit judgments (where the narrow MPS is still exact) are
//! identical across widths and hit the cache immediately.
//!
//! The sweep rides the plan/solve/assemble pipeline and reuses its stage
//! split across widths: while width `w`'s SDP obligations solve on the
//! engine's worker pool, the calling thread already *plans* width `2w`
//! (the cheap sequential MPS pass), so the next width's obligations are
//! ready the moment the stopping rule says "continue" — and when width `w`
//! is saturated (δ ≈ 0, every wider plan would be identical), no wider
//! plan is computed at all. The speculative plan is discarded unread if
//! the sweep stops, so error behavior and the per-width reports match the
//! unpipelined sweep exactly.

use crate::engine::EngineHandle;
use crate::logic::{assemble_report, StateAwareReport};
use crate::plan::{plan_program, Plan};
use crate::request::AnalysisRequest;
use crate::solve::spawn_solve;
use crate::AnalysisError;
use std::time::{Duration, Instant};

/// Configuration for [`Method::Adaptive`](crate::Method::Adaptive).
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Starting MPS width (default 2).
    pub start_width: usize,
    /// Hard width cap (default 128, the paper's largest size).
    pub max_width: usize,
    /// Stop when the bound improves by less than this relative amount per
    /// doubling (default 0.02 = 2%).
    pub min_relative_improvement: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            start_width: 2,
            max_width: 128,
            min_relative_improvement: 0.02,
        }
    }
}

impl AdaptiveConfig {
    /// Checks the width range and improvement threshold.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::InvalidConfig`] on a zero start width, an inverted
    /// width range, or a non-finite improvement threshold.
    pub fn validate(&self) -> Result<(), AnalysisError> {
        if self.start_width < 1 {
            return Err(AnalysisError::InvalidConfig(
                "adaptive start width must be positive".into(),
            ));
        }
        if self.max_width < self.start_width {
            return Err(AnalysisError::InvalidConfig(format!(
                "adaptive width cap {} is below start width {}",
                self.max_width, self.start_width
            )));
        }
        if !self.min_relative_improvement.is_finite() {
            return Err(AnalysisError::InvalidConfig(
                "adaptive improvement threshold must be finite".into(),
            ));
        }
        Ok(())
    }
}

/// One step of the adaptive trajectory.
#[derive(Clone, Debug)]
pub struct AdaptiveStep {
    /// MPS width used.
    pub width: usize,
    /// The certified bound at this width.
    pub bound: f64,
    /// The MPS truncation error at this width.
    pub tn_delta: f64,
    /// SDPs actually solved at this width.
    pub sdp_solves: usize,
    /// Gate judgments answered from the engine's shared cache at this
    /// width (nonzero from the second width on: certificates cross widths).
    pub cache_hits: usize,
    /// Of `cache_hits`, judgments deduplicated against an in-flight SDP
    /// solve rather than a finished certificate.
    pub inflight_dedup: usize,
    /// How the bound engine's tiers answered this width's judgments
    /// (under [`crate::TierPolicy::fast`], later widths warm-start from
    /// the earlier widths' certificates wherever δ drifted a bucket).
    pub tier_counts: crate::TierCounts,
    /// Interior-point iterations spent at this width.
    pub ip_iterations: usize,
    /// Aggregated per-phase solver timings for this width's solves.
    pub solver_profile: gleipnir_sdp::SolverProfile,
}

/// The adaptive analysis outcome.
#[derive(Clone, Debug)]
pub struct AdaptiveReport {
    /// The report at the final (best) width.
    pub report: StateAwareReport,
    /// The width the search settled on.
    pub width: usize,
    /// The bound at each width tried, in order.
    pub trajectory: Vec<AdaptiveStep>,
    /// Wall-clock time of the whole search.
    pub elapsed: std::time::Duration,
}

/// Widths whose plan leaves δ below this are *saturated*: the MPS never
/// truncated, every wider plan is identical, so the sweep stops (and the
/// plan-ahead pass skips planning wider widths entirely).
const SATURATION_DELTA: f64 = 1e-12;

/// Doubles the MPS width until the bound stops improving meaningfully.
///
/// Because every width yields a *sound* bound, the minimum over the
/// trajectory is sound too; the returned report is the one achieving it.
///
/// Pipelined: each width's SDP obligations are dispatched to the pool,
/// and the next width is planned on the calling thread *while they
/// solve* (see the module docs). Solve stages of successive widths never
/// overlap, so width `2w` sees exactly the certificates width `w` paid
/// for — the same cache state as a fully sequential sweep.
pub(crate) fn run_adaptive(
    h: &EngineHandle,
    request: &AnalysisRequest,
    config: &AdaptiveConfig,
) -> Result<AdaptiveReport, AnalysisError> {
    config.validate()?;
    let start = Instant::now();
    let opts = h.resolve_options(request);

    let make_plan = |width: usize| -> Result<(Plan, Duration), AnalysisError> {
        let t0 = Instant::now();
        let mps = request.input().build_mps(width)?;
        let plan = plan_program(
            request.program(),
            mps,
            request.noise(),
            &opts,
            request.cache_enabled(),
            request.delta_quantum(),
        )?;
        Ok((plan, t0.elapsed()))
    };

    let mut width = config.start_width;
    let mut best: Option<(usize, StateAwareReport)> = None;
    let mut trajectory = Vec::new();
    let mut planned = make_plan(width)?;

    loop {
        let (plan, plan_elapsed) = planned;
        let Plan {
            skeleton,
            obligations,
            final_delta,
            mps_width,
        } = plan;
        let saturated = final_delta < SATURATION_DELTA;
        let pending = spawn_solve(h, obligations, opts, request.tier_policy());
        // Plan-ahead overlap: while this width's SDPs solve on the pool,
        // speculatively plan the next width (unless this one is already
        // saturated or capped — then every wider plan would be identical
        // or unused). A planning error is deferred: it only surfaces if
        // the stopping rule actually asks for the wider width, so the
        // speculation cannot change observable behavior.
        let next = if !saturated && width < config.max_width {
            let next_width = (width * 2).min(config.max_width);
            Some((next_width, make_plan(next_width)))
        } else {
            None
        };
        let solved = pending.join(h)?;
        let report = assemble_report(skeleton, final_delta, mps_width, solved, plan_elapsed);
        trajectory.push(AdaptiveStep {
            width,
            bound: report.error_bound(),
            tn_delta: report.tn_delta(),
            sdp_solves: report.sdp_solves(),
            cache_hits: report.cache_hits(),
            inflight_dedup: report.inflight_dedup(),
            tier_counts: report.tier_counts(),
            ip_iterations: report.ip_iterations(),
            solver_profile: report.solver_profile(),
        });
        let improved_enough = match &best {
            None => true,
            Some((_, prev)) => {
                let prev_bound = prev.error_bound();
                prev_bound > 0.0
                    && (prev_bound - report.error_bound()) / prev_bound
                        >= config.min_relative_improvement
            }
        };
        let is_better = best
            .as_ref()
            .map_or(true, |(_, prev)| report.error_bound() < prev.error_bound());
        if is_better {
            best = Some((width, report));
        }
        // Stop when saturated (δ already ~0 means wider cannot help), the
        // improvement stalled, or the cap is reached.
        if saturated || !improved_enough || width >= config.max_width {
            break;
        }
        let (next_width, next_plan) = next.expect("continuing sweep always plans ahead");
        width = next_width;
        planned = next_plan?;
    }

    let (width, report) = best.expect("at least one analysis ran");
    Ok(AdaptiveReport {
        report,
        width,
        trajectory,
        elapsed: start.elapsed(),
    })
}

/// One-shot adaptive analysis, kept as a shim over a private
/// [`Engine`](crate::Engine) — the fresh engine discards the cross-width
/// certificates a long-lived engine would keep.
///
/// # Errors
///
/// [`AnalysisError::InvalidConfig`] on a bad `config` (this used to panic),
/// and any error from the underlying analyses.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::analyze` with `Method::Adaptive` (see README's migration table)"
)]
pub fn analyze_adaptive(
    program: &gleipnir_circuit::Program,
    input: &gleipnir_sim::BasisState,
    noise: &gleipnir_noise::NoiseModel,
    config: &AdaptiveConfig,
) -> Result<AdaptiveReport, AnalysisError> {
    let engine = crate::Engine::new();
    let request = AnalysisRequest::builder(program.clone())
        .input(input)
        .noise(noise.clone())
        .method(crate::Method::Adaptive(config.clone()))
        .build()?;
    engine
        .analyze(&request)?
        .into_adaptive()
        .ok_or_else(|| AnalysisError::Unsupported("adaptive report expected".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisRequest, Engine, Method};
    use gleipnir_circuit::{Program, ProgramBuilder};
    use gleipnir_noise::NoiseModel;
    use gleipnir_sim::BasisState;

    fn adaptive(
        program: &Program,
        noise: &NoiseModel,
        cfg: AdaptiveConfig,
    ) -> Result<AdaptiveReport, AnalysisError> {
        let engine = Engine::new();
        let request = AnalysisRequest::builder(program.clone())
            .noise(noise.clone())
            .method(Method::Adaptive(cfg))
            .build()?;
        Ok(engine
            .analyze(&request)?
            .into_adaptive()
            .expect("adaptive report"))
    }

    fn entangling_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new(n);
        for q in 0..n {
            b.h(q);
        }
        for layer in 0..3 {
            for q in 0..n - 1 {
                b.rzz(q, q + 1, 0.9 + 0.1 * layer as f64);
            }
            for q in 0..n {
                b.rx(q, 0.7);
            }
        }
        b.build()
    }

    #[test]
    fn saturates_early_on_product_circuits() {
        let mut b = ProgramBuilder::new(4);
        b.h(0).h(1).h(2).h(3);
        let out = adaptive(
            &b.build(),
            &NoiseModel::uniform_bit_flip(1e-4),
            AdaptiveConfig::default(),
        )
        .unwrap();
        assert_eq!(out.trajectory.len(), 1, "product state is exact at w = 2");
        assert_eq!(out.width, 2);
    }

    #[test]
    fn grows_width_on_entangling_circuits() {
        let program = entangling_program(6);
        let cfg = AdaptiveConfig {
            start_width: 1,
            max_width: 16,
            min_relative_improvement: 0.001,
        };
        let out = adaptive(&program, &NoiseModel::uniform_bit_flip(1e-3), cfg).unwrap();
        assert!(out.trajectory.len() > 1, "should have tried several widths");
        assert!(out.width > 1);
        // The selected bound is the minimum of the trajectory.
        let min = out
            .trajectory
            .iter()
            .map(|s| s.bound)
            .fold(f64::INFINITY, f64::min);
        assert!((out.report.error_bound() - min).abs() < 1e-12);
    }

    #[test]
    fn respects_width_cap() {
        let program = entangling_program(6);
        let cfg = AdaptiveConfig {
            start_width: 1,
            max_width: 4,
            min_relative_improvement: 0.0,
        };
        let out = adaptive(&program, &NoiseModel::uniform_bit_flip(1e-3), cfg).unwrap();
        assert!(out.trajectory.iter().all(|s| s.width <= 4));
    }

    #[test]
    fn bad_config_is_an_error_not_a_panic() {
        let program = entangling_program(4);
        let cfg = AdaptiveConfig {
            start_width: 8,
            max_width: 4,
            min_relative_improvement: 0.0,
        };
        let err = adaptive(&program, &NoiseModel::Noiseless, cfg).unwrap_err();
        assert!(matches!(err, AnalysisError::InvalidConfig(_)), "{err}");

        let cfg = AdaptiveConfig {
            start_width: 0,
            max_width: 4,
            min_relative_improvement: 0.0,
        };
        let err = adaptive(&program, &NoiseModel::Noiseless, cfg).unwrap_err();
        assert!(matches!(err, AnalysisError::InvalidConfig(_)), "{err}");

        // The deprecated one-shot entry point reports the same error
        // instead of panicking.
        #[allow(deprecated)]
        let err = analyze_adaptive(
            &program,
            &BasisState::zeros(4),
            &NoiseModel::Noiseless,
            &AdaptiveConfig {
                start_width: 0,
                max_width: 4,
                min_relative_improvement: 0.0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::InvalidConfig(_)), "{err}");
    }
}
