//! Adaptive width selection — the paper's §1 promise operationalized:
//! "one may adjust the approximation precision by varying the size of the
//! MPS such that tighter error bounds can be computed using greater
//! computational resources".
//!
//! [`analyze_adaptive`] doubles the MPS width until the bound's relative
//! improvement drops below a threshold (the "marginal returns beyond a
//! certain size" of Fig. 14) or a width cap is hit, returning the tightest
//! report together with the trajectory.

use crate::{AnalysisError, Analyzer, AnalyzerConfig, Report};
use gleipnir_circuit::Program;
use gleipnir_noise::NoiseModel;
use gleipnir_sim::BasisState;

/// Configuration for [`analyze_adaptive`].
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Starting MPS width (default 2).
    pub start_width: usize,
    /// Hard width cap (default 128, the paper's largest size).
    pub max_width: usize,
    /// Stop when the bound improves by less than this relative amount per
    /// doubling (default 0.02 = 2%).
    pub min_relative_improvement: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            start_width: 2,
            max_width: 128,
            min_relative_improvement: 0.02,
        }
    }
}

/// One step of the adaptive trajectory.
#[derive(Clone, Debug)]
pub struct AdaptiveStep {
    /// MPS width used.
    pub width: usize,
    /// The certified bound at this width.
    pub bound: f64,
    /// The MPS truncation error at this width.
    pub tn_delta: f64,
}

/// The adaptive analysis outcome.
#[derive(Clone, Debug)]
pub struct AdaptiveReport {
    /// The report at the final (best) width.
    pub report: Report,
    /// The width the search settled on.
    pub width: usize,
    /// The bound at each width tried, in order.
    pub trajectory: Vec<AdaptiveStep>,
}

/// Doubles the MPS width until the bound stops improving meaningfully.
///
/// Because every width yields a *sound* bound, the minimum over the
/// trajectory is sound too; the returned report is the one achieving it.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying analyses.
///
/// # Examples
///
/// ```
/// use gleipnir_circuit::ProgramBuilder;
/// use gleipnir_core::{analyze_adaptive, AdaptiveConfig};
/// use gleipnir_noise::NoiseModel;
/// use gleipnir_sim::BasisState;
///
/// let mut b = ProgramBuilder::new(3);
/// b.h(0).cnot(0, 1).cnot(1, 2);
/// let out = analyze_adaptive(
///     &b.build(),
///     &BasisState::zeros(3),
///     &NoiseModel::uniform_bit_flip(1e-4),
///     &AdaptiveConfig::default(),
/// )?;
/// // A 3-qubit GHZ saturates at tiny widths.
/// assert!(out.width <= 8);
/// # Ok::<(), gleipnir_core::AnalysisError>(())
/// ```
pub fn analyze_adaptive(
    program: &Program,
    input: &BasisState,
    noise: &NoiseModel,
    config: &AdaptiveConfig,
) -> Result<AdaptiveReport, AnalysisError> {
    assert!(config.start_width >= 1, "start width must be positive");
    assert!(
        config.max_width >= config.start_width,
        "width cap below start"
    );
    let mut width = config.start_width;
    let mut best: Option<(usize, Report)> = None;
    let mut trajectory = Vec::new();

    loop {
        let analyzer = Analyzer::new(AnalyzerConfig::with_mps_width(width));
        let report = analyzer.analyze(program, input, noise)?;
        trajectory.push(AdaptiveStep {
            width,
            bound: report.error_bound(),
            tn_delta: report.tn_delta(),
        });
        let improved_enough = match &best {
            None => true,
            Some((_, prev)) => {
                let prev_bound = prev.error_bound();
                prev_bound > 0.0
                    && (prev_bound - report.error_bound()) / prev_bound
                        >= config.min_relative_improvement
            }
        };
        let is_better = best
            .as_ref()
            .map_or(true, |(_, prev)| report.error_bound() < prev.error_bound());
        if is_better {
            best = Some((width, report));
        }
        // Stop when saturated (δ already ~0 means wider cannot help), the
        // improvement stalled, or the cap is reached.
        let saturated = trajectory.last().expect("non-empty").tn_delta < 1e-12;
        if saturated || !improved_enough || width >= config.max_width {
            break;
        }
        width = (width * 2).min(config.max_width);
    }

    let (width, report) = best.expect("at least one analysis ran");
    Ok(AdaptiveReport {
        report,
        width,
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gleipnir_circuit::ProgramBuilder;

    fn entangling_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new(n);
        for q in 0..n {
            b.h(q);
        }
        for layer in 0..3 {
            for q in 0..n - 1 {
                b.rzz(q, q + 1, 0.9 + 0.1 * layer as f64);
            }
            for q in 0..n {
                b.rx(q, 0.7);
            }
        }
        b.build()
    }

    #[test]
    fn saturates_early_on_product_circuits() {
        let mut b = ProgramBuilder::new(4);
        b.h(0).h(1).h(2).h(3);
        let out = analyze_adaptive(
            &b.build(),
            &BasisState::zeros(4),
            &NoiseModel::uniform_bit_flip(1e-4),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert_eq!(out.trajectory.len(), 1, "product state is exact at w = 2");
        assert_eq!(out.width, 2);
    }

    #[test]
    fn grows_width_on_entangling_circuits() {
        let program = entangling_program(6);
        let cfg = AdaptiveConfig {
            start_width: 1,
            max_width: 16,
            min_relative_improvement: 0.001,
        };
        let out = analyze_adaptive(
            &program,
            &BasisState::zeros(6),
            &NoiseModel::uniform_bit_flip(1e-3),
            &cfg,
        )
        .unwrap();
        assert!(out.trajectory.len() > 1, "should have tried several widths");
        assert!(out.width > 1);
        // The selected bound is the minimum of the trajectory.
        let min = out
            .trajectory
            .iter()
            .map(|s| s.bound)
            .fold(f64::INFINITY, f64::min);
        assert!((out.report.error_bound() - min).abs() < 1e-12);
    }

    #[test]
    fn respects_width_cap() {
        let program = entangling_program(6);
        let cfg = AdaptiveConfig {
            start_width: 1,
            max_width: 4,
            min_relative_improvement: 0.0,
        };
        let out = analyze_adaptive(
            &program,
            &BasisState::zeros(6),
            &NoiseModel::uniform_bit_flip(1e-3),
            &cfg,
        )
        .unwrap();
        assert!(out.trajectory.iter().all(|s| s.width <= 4));
    }
}
