//! The unified error hierarchy every analysis entry point converges on.
//!
//! All engine methods — state-aware, adaptive, worst-case, LQR-full-sim,
//! and batch — report failures as [`AnalysisError`]; derivation re-checking
//! reports [`ReplayError`]. Both implement [`std::error::Error`] so they
//! compose with `?` and `Box<dyn Error>` call sites.

use crate::diamond::DiamondError;
use std::fmt;

/// Errors from building or running an analysis.
#[derive(Debug)]
pub enum AnalysisError {
    /// Input width and program register width disagree.
    WidthMismatch {
        /// Input state width.
        input: usize,
        /// Program register width.
        program: usize,
    },
    /// A diamond-norm SDP failed.
    Diamond(DiamondError),
    /// A feature the requested analysis cannot handle.
    Unsupported(String),
    /// A request or method configuration failed validation (zero MPS width,
    /// inverted adaptive width range, non-normalizable product input, …).
    InvalidConfig(String),
    /// The analysis panicked; batch workers catch the panic so sibling
    /// requests keep running, and surface it as this variant.
    Panicked(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::WidthMismatch { input, program } => {
                write!(f, "input has {input} qubits but program has {program}")
            }
            AnalysisError::Diamond(e) => write!(f, "{e}"),
            AnalysisError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            AnalysisError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            AnalysisError::Panicked(msg) => write!(f, "analysis panicked: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Diamond(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiamondError> for AnalysisError {
    fn from(e: DiamondError) -> Self {
        AnalysisError::Diamond(e)
    }
}

/// Errors from re-checking a derivation against fresh SDP solves
/// ([`crate::StateAwareReport::replay`]).
#[derive(Debug)]
pub enum ReplayError {
    /// The fresh SDP solve for a Gate node failed outright.
    Sdp {
        /// The gate whose judgment was being re-checked (display form).
        gate: String,
        /// The underlying diamond-norm error.
        source: DiamondError,
    },
    /// A Gate node's stored ε could not be reproduced from its judgment.
    NotReproducible {
        /// The gate whose judgment failed (display form).
        gate: String,
        /// The ε the derivation claims.
        claimed: f64,
        /// The ε a fresh solve of the stored judgment produced.
        fresh: f64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Sdp { gate, source } => {
                write!(f, "replay SDP for gate {gate} failed: {source}")
            }
            ReplayError::NotReproducible {
                gate,
                claimed,
                fresh,
            } => write!(
                f,
                "gate {gate} bound {claimed:.3e} not reproducible (fresh {fresh:.3e})"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Sdp { source, .. } => Some(source),
            ReplayError::NotReproducible { .. } => None,
        }
    }
}
