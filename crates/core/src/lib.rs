//! # gleipnir-core
//!
//! The paper's primary contribution: the **`(ρ̂, δ)`-diamond norm** (§6) and
//! the **lightweight quantum error logic** (§4), assembled into the Fig. 4
//! pipeline behind one long-lived entry point, [`Engine`]:
//!
//! 1. the MPS approximator computes `TN(ρ₀, P) = (ρ̂, δ)` adaptively
//!    (`gleipnir-mps`),
//! 2. each noisy gate's error is certified by a constant-size SDP for
//!    `‖Ũ_ω − U‖_(ρ̂,δ)` ([`rho_delta_diamond`], solved by `gleipnir-sdp`
//!    with a weak-duality soundness certificate),
//! 3. the error logic combines the per-gate bounds through the
//!    Skip/Gate/Seq/Weaken/Meas rules into a whole-program judgment
//!    `(ρ̂, δ) ⊢ P̃_ω ≤ ε`, materialized as a replayable [`Derivation`].
//!
//! An [`Engine`] serves any number of [`AnalysisRequest`]s — state-aware at
//! a fixed MPS width, adaptive over widths, the worst-case and
//! LQR-full-sim baselines of the paper's evaluation (selected by
//! [`Method`]), or whole batches fanned out across threads
//! ([`Engine::analyze_batch`]) — and every per-gate SDP certificate it pays
//! for lands in one shared, content-addressed cache that later requests,
//! widths, and batch siblings reuse.
//!
//! ## Example
//!
//! ```
//! use gleipnir_circuit::ProgramBuilder;
//! use gleipnir_core::{AnalysisRequest, Engine, Method};
//! use gleipnir_noise::NoiseModel;
//!
//! // A layer of Hadamards: every output is |+⟩, invisible to bit flips.
//! let mut b = ProgramBuilder::new(3);
//! b.h(0).h(1).h(2);
//! let program = b.build();
//! let noise = NoiseModel::uniform_bit_flip(1e-4);
//!
//! let engine = Engine::new();
//! let report = engine.analyze(
//!     &AnalysisRequest::builder(program.clone())
//!         .noise(noise.clone())
//!         .method(Method::StateAware { mps_width: 8 })
//!         .build()?,
//! )?;
//! let worst = engine.analyze(
//!     &AnalysisRequest::builder(program)
//!         .noise(noise)
//!         .method(Method::WorstCase)
//!         .build()?,
//! )?;
//!
//! // State-aware analysis beats the worst case by orders of magnitude here.
//! assert!(report.error_bound() < 0.1 * worst.error_bound());
//! # Ok::<(), gleipnir_core::AnalysisError>(())
//! ```

#![warn(missing_docs)]

mod adaptive;
mod assemble;
mod baseline;
mod diamond;
mod diff;
mod engine;
mod error;
pub mod jsonfmt;
mod logic;
mod persist;
mod plan;
mod pool;
mod refine;
mod report;
mod request;
mod solve;
pub mod testkit;
mod tiers;

pub use adaptive::{AdaptiveConfig, AdaptiveReport, AdaptiveStep};
pub use baseline::{LqrReport, WorstCaseReport};
pub use diamond::{
    embed_choi, q_lambda_diamond, rho_delta_diamond, sampled_diamond_lower_bound,
    unconstrained_diamond, DiamondError, DiamondResult,
};
pub use diff::{ChangeReason, DiffReport, GateChange};
pub use engine::{BatchOutcome, CacheStats, Engine, EngineOptions};
pub use error::{AnalysisError, ReplayError};
pub use logic::{Derivation, StageTimings, StateAwareReport};
pub use persist::{import_sync, CertStore, LoadStats, SyncStats};
pub use pool::{PriorityClass, SchedulerDepths};
pub use refine::{
    AnytimeAnswer, AnytimeSources, QuotaPermit, RefineStats, RefineStatus, RefineToken,
    TenantQuotas,
};
pub use report::Report;
pub use request::{AnalysisRequest, AnalysisRequestBuilder, InputState, Method};
pub use tiers::{BoundTier, TierCounts, TierPolicy, TierStats};

// Pre-`Engine` one-shot entry points, kept as deprecated shims for
// migration (see README's "migrating from `Analyzer`" table).
#[allow(deprecated)]
pub use adaptive::analyze_adaptive;
#[allow(deprecated)]
pub use baseline::{lqr_full_sim_bound, worst_case_bound};
#[allow(deprecated)]
pub use logic::{Analyzer, AnalyzerConfig};
