//! # gleipnir-core
//!
//! The paper's primary contribution: the **`(ρ̂, δ)`-diamond norm** (§6) and
//! the **lightweight quantum error logic** (§4), assembled into the Fig. 4
//! pipeline by [`Analyzer`]:
//!
//! 1. the MPS approximator computes `TN(ρ₀, P) = (ρ̂, δ)` adaptively
//!    (`gleipnir-mps`),
//! 2. each noisy gate's error is certified by a constant-size SDP for
//!    `‖Ũ_ω − U‖_(ρ̂,δ)` ([`rho_delta_diamond`], solved by `gleipnir-sdp`
//!    with a weak-duality soundness certificate),
//! 3. the error logic combines the per-gate bounds through the
//!    Skip/Gate/Seq/Weaken/Meas rules into a whole-program judgment
//!    `(ρ̂, δ) ⊢ P̃_ω ≤ ε`, materialized as a replayable [`Derivation`].
//!
//! Baselines for the paper's evaluation live in the same crate:
//! [`worst_case_bound`] (unconstrained diamond norms) and
//! [`lqr_full_sim_bound`] (LQR with full simulation).
//!
//! ## Example
//!
//! ```
//! use gleipnir_circuit::ProgramBuilder;
//! use gleipnir_core::{worst_case_bound, Analyzer, AnalyzerConfig};
//! use gleipnir_noise::NoiseModel;
//! use gleipnir_sdp::SolverOptions;
//! use gleipnir_sim::BasisState;
//!
//! // A layer of Hadamards: every output is |+⟩, invisible to bit flips.
//! let mut b = ProgramBuilder::new(3);
//! b.h(0).h(1).h(2);
//! let program = b.build();
//! let noise = NoiseModel::uniform_bit_flip(1e-4);
//!
//! let report = Analyzer::new(AnalyzerConfig::with_mps_width(8))
//!     .analyze(&program, &BasisState::zeros(3), &noise)?;
//! let worst = worst_case_bound(&program, &noise, &SolverOptions::default())?;
//!
//! // State-aware analysis beats the worst case by orders of magnitude here.
//! assert!(report.error_bound() < 0.1 * worst.total);
//! # Ok::<(), gleipnir_core::AnalysisError>(())
//! ```

#![warn(missing_docs)]

mod adaptive;
mod baseline;
mod diamond;
mod logic;

pub use adaptive::{analyze_adaptive, AdaptiveConfig, AdaptiveReport, AdaptiveStep};
pub use baseline::{lqr_full_sim_bound, worst_case_bound, WorstCaseReport};
pub use diamond::{
    embed_choi, q_lambda_diamond, rho_delta_diamond, sampled_diamond_lower_bound,
    unconstrained_diamond, DiamondError, DiamondResult,
};
pub use logic::{AnalysisError, Analyzer, AnalyzerConfig, Derivation, Report};
